//! Property-based tests over the core data structures and the
//! end-to-end pipeline, using randomly generated programs and access
//! patterns.

use grp::compiler::{analyze, AnalysisConfig};
use grp::core::{run_trace, Scheme, SimConfig};
use grp::cpu::{HintSet, RefId, Trace};
use grp::ir::build::*;
use grp::ir::interp::Interpreter;
use grp::ir::{ElemTy, HintMap, ProgramBuilder};
use grp::mem::{Addr, BlockAddr, Cache, CacheConfig, HeapRange, InsertPriority, Memory};
use grp_testkit::proptest;
use grp_testkit::proptest::prelude::*;

fn heap() -> HeapRange {
    HeapRange {
        start: Addr(0x10_0000),
        end: Addr(0x4000_0000),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache never loses blocks it holds except through eviction, and
    /// occupancy never exceeds capacity.
    #[test]
    fn cache_occupancy_bounded(ops in proptest::collection::vec((0u64..4096, any::<bool>()), 1..400)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 16 * 1024, ways: 4 });
        let capacity = 16 * 1024 / 64;
        for (blk, write) in ops {
            let b = BlockAddr(blk);
            if c.access(b, write) == grp::mem::LookupResult::Miss {
                c.fill(b, InsertPriority::Mru, false, write);
                prop_assert!(c.contains(b), "fill makes the block resident");
            }
            prop_assert!(c.resident_lines() <= capacity);
        }
    }

    /// Prefetch-marked lines are conserved: every prefetch fill is later
    /// counted useful, useless, or still-resident.
    #[test]
    fn prefetch_accounting_conserved(ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300)) {
        let mut c = Cache::new(CacheConfig { size_bytes: 8 * 1024, ways: 2 });
        let mut fills = 0u64;
        for (blk, is_pf) in ops {
            let b = BlockAddr(blk);
            if is_pf {
                if !c.contains(b) {
                    c.fill(b, InsertPriority::Lru, true, false);
                    fills += 1;
                }
            } else if c.access(b, false) == grp::mem::LookupResult::Miss {
                c.fill(b, InsertPriority::Mru, false, false);
            }
        }
        let s = c.stats();
        prop_assert_eq!(
            fills,
            s.useful_prefetches + s.useless_prefetches + c.resident_unused_prefetches()
        );
    }

    /// Replaying any load/store mix is causal: cycles at least cover the
    /// retire bandwidth, and every scheme commits the same instructions.
    #[test]
    fn replay_is_causal_and_scheme_invariant(
        refs in proptest::collection::vec((0u64..1u64 << 22, any::<bool>(), 0u32..12), 1..300)
    ) {
        let mut t = Trace::new();
        for (off, is_store, gap) in &refs {
            let a = Addr(0x10_0000 + (off & !7));
            if *is_store {
                t.push_store(a, 8, RefId(1), HintSet::none());
            } else {
                t.push_load(a, 8, RefId(0), HintSet::none().with_spatial(), None);
            }
            t.push_compute(*gap);
        }
        t.finish();
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let base = run_trace(&t, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let grp = run_trace(&t, &mem, heap(), Scheme::GrpVar, &cfg);
        let min_cycles = t.instructions() / cfg.window.width;
        prop_assert!(base.cycles >= min_cycles);
        prop_assert!(grp.cycles >= min_cycles);
        prop_assert_eq!(base.instructions, t.instructions());
        prop_assert_eq!(grp.instructions, t.instructions());
        // Prefetching must not slow a trace beyond the prioritizer bound.
        prop_assert!(grp.cycles <= base.cycles * 13 / 10);
    }

    /// Randomly-shaped affine loop nests interpret successfully, produce
    /// the statically-predictable number of loads, and every derived
    /// spatial hint corresponds to a real site.
    #[test]
    fn random_affine_nests_compile_and_run(
        n1 in 1i64..24,
        n2 in 1i64..24,
        stride in 1i64..4,
        use_2d in any::<bool>(),
    ) {
        let mut pb = ProgramBuilder::new("gen");
        let a = pb.array("a", ElemTy::F64, &[(n1 * 4) as u64, (n2 * 4) as u64]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let idx2: Vec<_> = if use_2d {
            vec![var(i), mul(c(stride), var(j))]
        } else {
            vec![c(0), add(var(i), var(j))]
        };
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(n1),
            1,
            vec![for_(
                j,
                c(0),
                c(n2),
                1,
                vec![assign(s, add(var(s), load(arr(a, idx2))))],
            )],
        )]);
        let hints = analyze(&prog, &AnalysisConfig::default());
        let mut mem = Memory::new();
        let mut bind = prog.bindings();
        bind.bind_array(a, Addr(0x100_0000));
        let trace = Interpreter::new(&prog, &bind, &hints).run(&mut mem).unwrap();
        prop_assert_eq!(trace.loads(), (n1 * n2) as u64);
        // Simulate it too: must not panic and must retire everything.
        let r = run_trace(&trace, &mem, heap(), Scheme::GrpVar, &SimConfig::paper());
        prop_assert_eq!(r.instructions, trace.instructions());
    }

    /// Linked lists of arbitrary layout traverse correctly under the
    /// recursive-pointer pipeline.
    #[test]
    fn random_list_layouts_traverse(perm in proptest::collection::vec(0usize..64, 2..64)) {
        // Deduplicate to build a node order.
        let mut order: Vec<usize> = Vec::new();
        for p in perm {
            if !order.contains(&p) {
                order.push(p);
            }
        }
        let mut pb = ProgramBuilder::new("list");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![
                grp::ir::types::field("next", ElemTy::ptr_to(sid)),
                grp::ir::types::field("v", ElemTy::I64),
            ],
        );
        let head = pb.var("head");
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            assign(p, var(head)),
            while_(
                ne(var(p), c(0)),
                vec![
                    assign(s, add(var(s), load(fld(var(p), node, grp::ir::FieldId(1))))),
                    assign(p, load(fld(var(p), node, grp::ir::FieldId(0)))),
                ],
            ),
        ]);
        let mut mem = Memory::new();
        let slab = Addr(0x100_0000);
        let addrs: Vec<Addr> = order.iter().map(|k| slab.offset(*k as i64 * 64)).collect();
        for w in addrs.windows(2) {
            mem.write_u64(w[0], w[1].0);
        }
        mem.write_u64(*addrs.last().unwrap(), 0);
        let mut bind = prog.bindings();
        bind.bind_var(head, addrs[0].0 as i64);
        let hints = analyze(&prog, &AnalysisConfig::default());
        let trace = Interpreter::new(&prog, &bind, &hints).run(&mut mem).unwrap();
        prop_assert_eq!(trace.loads() as usize, 2 * addrs.len());
        let r = run_trace(&trace, &mem, heap(), Scheme::GrpVar, &SimConfig::paper());
        prop_assert!(r.cycles > 0);
    }

    /// The hint map grows safely for arbitrary site ids and the hint bits
    /// round-trip.
    #[test]
    fn hint_map_round_trips(ids in proptest::collection::vec(0u32..10_000, 1..100)) {
        let mut m = HintMap::empty();
        for id in &ids {
            m.add_spatial(RefId(*id));
        }
        for id in &ids {
            prop_assert!(m.hint(RefId(*id)).spatial());
        }
    }
}

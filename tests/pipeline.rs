//! Pipeline consistency tests: the compiler's static view, the
//! interpreter's dynamic trace, and the simulator's accounting must agree.

use grp::compiler::{analyze, census, AnalysisConfig};
use grp::core::{Scheme, SimConfig};
use grp::cpu::TraceEvent;
use grp::workloads::{all, by_name, Scale};

#[test]
fn trace_hints_match_static_hint_map() {
    for w in all() {
        let b = w.build(Scale::Test);
        let hints = analyze(&b.program, &AnalysisConfig::default());
        let (trace, _) = b.trace(Some(&AnalysisConfig::default()));
        for ev in trace.events() {
            if let TraceEvent::Load { ref_id, hints: h, .. } = ev {
                assert_eq!(
                    *h,
                    hints.hint(*ref_id),
                    "{}: dynamic hint mismatch at site {:?}",
                    w.name,
                    ref_id
                );
            }
        }
    }
}

#[test]
fn indirect_events_only_when_compiler_derived_them() {
    for w in all() {
        let b = w.build(Scale::Test);
        let hints = analyze(&b.program, &AnalysisConfig::default());
        let (trace, _) = b.trace(Some(&AnalysisConfig::default()));
        let has_events = trace
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::IndirectPrefetch { .. }));
        let has_directives = hints.indirect_count() > 0;
        assert_eq!(
            has_events, has_directives,
            "{}: indirect events vs directives disagree",
            w.name
        );
    }
}

#[test]
fn loop_bound_events_only_under_varsize() {
    for w in all() {
        let b = w.build(Scale::Test);
        let (fix_trace, _) = b.trace(Some(&AnalysisConfig::grp_fix()));
        assert!(
            !fix_trace
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::SetLoopBound(_))),
            "{}: GRP/Fix trace must carry no loop bounds",
            w.name
        );
    }
}

#[test]
fn census_is_consistent_with_hint_map() {
    for w in all() {
        let b = w.build(Scale::Test);
        let hints = analyze(&b.program, &AnalysisConfig::default());
        let cs = census(&b.program, &hints);
        assert_eq!(cs.mem_refs, b.program.num_refs);
        assert!(cs.spatial <= cs.mem_refs);
        assert!(cs.hinted() <= cs.mem_refs);
        assert_eq!(cs.indirect as usize, hints.indirect_count());
        assert!(
            cs.recursive <= cs.pointer + cs.recursive,
            "recursive sites are pointer-family sites"
        );
    }
}

#[test]
fn attribution_totals_match_l2_misses() {
    for name in ["swim", "mcf", "bzip2"] {
        let b = by_name(name).unwrap().build(Scale::Test);
        let r = b.run(Scheme::NoPrefetch, &SimConfig::paper());
        let attributed: u64 = r.attribution.counts().iter().sum();
        assert_eq!(
            attributed, r.l2.demand_misses,
            "{name}: every L2 demand miss is attributed to a site"
        );
    }
}

#[test]
fn traffic_ledger_balances() {
    // Demand fetches can never exceed L2 demand misses (merges reduce
    // them), and every useful prefetch corresponds to an issued one.
    for w in all() {
        let b = w.build(Scale::Test);
        let r = b.run(Scheme::GrpVar, &SimConfig::paper());
        assert!(r.traffic.demand_blocks <= r.l2.demand_misses);
        assert_eq!(r.traffic.prefetch_blocks, r.prefetches_issued);
        assert!(
            r.l2.useful_prefetches + r.l2.useless_prefetches + r.resident_unused_prefetches
                <= r.prefetches_issued,
            "{}: prefetch accounting overflows issues",
            w.name
        );
    }
}

#[test]
fn conservative_marks_subset_of_default_marks_subset_of_aggressive() {
    for w in all() {
        let b = w.build(Scale::Test);
        let cons = census(&b.program, &b.hints(&AnalysisConfig::conservative()));
        let def = census(&b.program, &b.hints(&AnalysisConfig::default()));
        let aggr = census(&b.program, &b.hints(&AnalysisConfig::aggressive()));
        assert!(
            cons.spatial <= def.spatial && def.spatial <= aggr.spatial,
            "{}: policy monotonicity violated ({} / {} / {})",
            w.name,
            cons.spatial,
            def.spatial,
            aggr.spatial
        );
    }
}

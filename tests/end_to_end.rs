//! Cross-crate integration tests: the paper's headline claims must hold
//! end to end (workload → compiler → interpreter → timing simulation) at
//! test scale.

use grp::core::{geomean, Scheme, SimConfig};
use grp::workloads::{all, by_name, Scale};

fn cfg() -> SimConfig {
    SimConfig::paper()
}

#[test]
fn suite_geomeans_reproduce_table1_ordering() {
    // Table 1's shape: stride < GRP ≈ SRP on speedup; GRP ≪ SRP on traffic.
    let mut speedup = std::collections::HashMap::new();
    let mut traffic = std::collections::HashMap::new();
    let schemes = [Scheme::Stride, Scheme::Srp, Scheme::GrpFix, Scheme::GrpVar];
    let mut acc: std::collections::HashMap<Scheme, (Vec<f64>, Vec<f64>)> =
        schemes.iter().map(|s| (*s, (vec![], vec![]))).collect();
    for w in grp::workloads::perf_set() {
        let b = w.build(Scale::Test);
        let base = b.run(Scheme::NoPrefetch, &cfg());
        for s in schemes {
            let r = b.run(s, &cfg());
            let e = acc.get_mut(&s).unwrap();
            e.0.push(r.speedup_vs(&base));
            e.1.push(r.traffic_vs(&base).max(1e-9));
        }
    }
    for s in schemes {
        let (sp, tr) = &acc[&s];
        speedup.insert(s, geomean(sp));
        traffic.insert(s, geomean(tr));
    }
    // Performance: every prefetcher beats none; region schemes beat stride.
    assert!(speedup[&Scheme::Stride] > 1.0);
    assert!(speedup[&Scheme::Srp] > speedup[&Scheme::Stride]);
    assert!(speedup[&Scheme::GrpFix] > speedup[&Scheme::Stride]);
    // GRP lands within a band of SRP's performance…
    assert!(
        speedup[&Scheme::GrpVar] > speedup[&Scheme::Srp] * 0.80,
        "GRP/Var {} vs SRP {}",
        speedup[&Scheme::GrpVar],
        speedup[&Scheme::Srp]
    );
    // …while spending less bandwidth. (The separation grows with problem
    // size; at Test scale the tiny arrays bound how much SRP can waste,
    // so the threshold here is looser than the paper's 1.23 vs 2.80.)
    assert!(
        traffic[&Scheme::GrpVar] < traffic[&Scheme::Srp] * 0.90,
        "GRP/Var traffic {} vs SRP {}",
        traffic[&Scheme::GrpVar],
        traffic[&Scheme::Srp]
    );
    // And GRP/Var never spends more than GRP/Fix.
    assert!(traffic[&Scheme::GrpVar] <= traffic[&Scheme::GrpFix] * 1.02);
}

#[test]
fn perfect_caches_bound_every_benchmark() {
    for w in all() {
        let b = w.build(Scale::Test);
        let base = b.run(Scheme::NoPrefetch, &cfg());
        let l2 = b.run(Scheme::PerfectL2, &cfg());
        let l1 = b.run(Scheme::PerfectL1, &cfg());
        assert!(
            l1.cycles <= l2.cycles && l2.cycles <= base.cycles,
            "{}: ideal ordering violated ({} / {} / {})",
            w.name,
            l1.cycles,
            l2.cycles,
            base.cycles
        );
        assert_eq!(l1.traffic.total_blocks(), 0, "{}: perfect L1 moves no data", w.name);
    }
}

#[test]
fn no_prefetcher_catastrophically_degrades_any_benchmark() {
    // The access prioritizer's core promise (§3.1): aggressive prefetching
    // must not wreck performance even where it cannot help.
    for w in grp::workloads::perf_set() {
        let b = w.build(Scale::Test);
        let base = b.run(Scheme::NoPrefetch, &cfg());
        for s in [Scheme::Stride, Scheme::Srp, Scheme::GrpVar] {
            let r = b.run(s, &cfg());
            assert!(
                r.cycles <= base.cycles * 23 / 20,
                "{} under {s}: {} vs {} cycles",
                w.name,
                r.cycles,
                base.cycles
            );
        }
    }
}

#[test]
fn grp_traffic_stays_close_to_baseline_everywhere() {
    // Table 5: GRP's worst normalized traffic in the paper is ~2×; SRP's
    // is ~25×. Check the suite-wide bound (loose at test scale).
    for w in grp::workloads::perf_set() {
        let b = w.build(Scale::Test);
        let base = b.run(Scheme::NoPrefetch, &cfg());
        let grp = b.run(Scheme::GrpVar, &cfg());
        assert!(
            grp.traffic_vs(&base) < 3.0,
            "{}: GRP traffic {:.2}×",
            w.name,
            grp.traffic_vs(&base)
        );
    }
}

#[test]
fn instructions_are_scheme_invariant() {
    // Committed instruction count depends only on the trace, never on the
    // memory system.
    let b = by_name("mgrid").unwrap().build(Scale::Test);
    let counts: Vec<u64> = [Scheme::NoPrefetch, Scheme::Srp, Scheme::PerfectL1]
        .iter()
        .map(|s| b.run(*s, &cfg()).instructions)
        .collect();
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[0], counts[2]);
}

#[test]
fn srp_plus_pointer_adds_little_over_srp() {
    // §5.2: "Applying SRP and pointer prefetching together gives little
    // benefit and sometimes degrades the performance due to much higher
    // bandwidth consumption."
    let mut degrades = 0;
    for name in ["equake", "mcf", "parser", "twolf", "ammp"] {
        let b = by_name(name).unwrap().build(Scale::Test);
        let srp = b.run(Scheme::Srp, &cfg());
        let both = b.run(Scheme::SrpPointer, &cfg());
        // Never a big win over SRP alone…
        assert!(
            both.cycles * 100 >= srp.cycles * 85,
            "{name}: SRP+ptr wins big ({} vs {})",
            both.cycles,
            srp.cycles
        );
        if both.cycles > srp.cycles {
            degrades += 1;
        }
    }
    // …and it sometimes degrades.
    assert!(degrades >= 1, "no benchmark degraded ({degrades}/5)");
}

#[test]
fn determinism_same_build_same_results() {
    let w = by_name("twolf").unwrap();
    let b1 = w.build(Scale::Test);
    let b2 = w.build(Scale::Test);
    let r1 = b1.run(Scheme::GrpVar, &cfg());
    let r2 = b2.run(Scheme::GrpVar, &cfg());
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.traffic.total_blocks(), r2.traffic.total_blocks());
    assert_eq!(r1.l2.demand_misses, r2.l2.demand_misses);
}

#[test]
fn hinted_traces_differ_only_in_annotations() {
    // Same dynamic reference stream whether or not hints are derived.
    let b = by_name("swim").unwrap().build(Scale::Test);
    let (t_plain, _) = b.trace(None);
    let (t_hinted, _) = b.trace(Some(&grp::compiler::AnalysisConfig::default()));
    assert_eq!(t_plain.loads(), t_hinted.loads());
    assert_eq!(t_plain.stores(), t_hinted.stores());
    // Pseudo-instructions (SetLoopBound / IndirectPrefetch) may differ.
}

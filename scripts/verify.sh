#!/usr/bin/env bash
# Tier-1 verification gate, run fully offline to prove the workspace is
# hermetic: no registry index, no network, no external crates. A clean
# checkout must pass this on a machine with no crates.io access at all.
#
#   scripts/verify.sh            # build + examples + tests, offline
#
# CARGO_NET_OFFLINE plus --offline is belt-and-braces: either alone
# forbids network access; together they also guard against cargo
# wrappers/aliases dropping one of them.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== examples build (offline) =="
cargo build --examples --offline

echo "== benches build (offline) =="
cargo build --benches --offline

echo "== tier-1: test suite (offline) =="
cargo test -q --offline

echo "== hermeticity: no external registry dependencies =="
if grep -rn 'rand\|proptest\|criterion' crates/*/Cargo.toml Cargo.toml; then
    echo "ERROR: external registry dependency found in a manifest" >&2
    exit 1
fi

echo "verify.sh: all gates passed with no registry access"

#!/usr/bin/env bash
# Tier-1 verification gate, run fully offline to prove the workspace is
# hermetic: no registry index, no network, no external crates. A clean
# checkout must pass this on a machine with no crates.io access at all.
#
#   scripts/verify.sh            # build + examples + tests, offline
#
# CARGO_NET_OFFLINE plus --offline is belt-and-braces: either alone
# forbids network access; together they also guard against cargo
# wrappers/aliases dropping one of them.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== tier-1: release build (offline) =="
cargo build --release --offline

echo "== examples build (offline) =="
cargo build --examples --offline

echo "== benches build (offline) =="
cargo build --benches --offline

echo "== tier-1: test suite (offline) =="
cargo test -q --offline

echo "== examples run at test scale (offline) =="
for ex in quickstart pointer_chasing indirect_arrays matrix_stencil traffic_study; do
    echo "  -- $ex"
    cargo run --release -q --offline --example "$ex" -- --scale test > /dev/null
done

# Scratch space for every smoke below, so CI runs never touch the
# committed BENCH_perf.json history.
PERF_TMP="$(mktemp)"
TRACE_TMP="$(mktemp -d)"
trap 'rm -f "$PERF_TMP"; rm -rf "$TRACE_TMP"' EXIT
# The harness expects either a valid trajectory or no file at all, so
# drop mktemp's empty placeholder and let the run create it.
rm -f "$PERF_TMP"

echo "== bench smoke: full suite at test scale + registry export (offline) =="
# --registry-out scrapes the process-global harness registry at exit;
# the exposition must re-validate and carry the fleet families the
# precompute phase recorded through the cell scheduler.
cargo run --release -q --offline -p grp-bench --bin all -- --scale test \
    --registry-out "$TRACE_TMP/all_registry.prom" > /dev/null
cargo run --release -q --offline -p grp-bench --bin check -- \
    --metrics "$TRACE_TMP/all_registry.prom" \
    --metrics-require grp_fleet_cells_total,grp_fleet_runs_total

echo "== perf smoke: harness at test scale (offline) =="
cargo run --release -q --offline -p grp-bench --bin perf -- \
    --scale test --label verify-smoke --out "$PERF_TMP"
cargo run --release -q --offline -p grp-bench --bin perf -- --check "$PERF_TMP"

echo "== packed smoke: packed tier appends a checkable trajectory entry =="
# The packed replay tier must produce a valid trajectory entry (with
# replay_tier recorded) through the same writer as the default path.
PACKED_TMP="$TRACE_TMP/packed_perf.json"
cargo run --release -q --offline -p grp-bench --bin perf -- \
    --scale test --packed --label verify-packed --out "$PACKED_TMP" \
    --trace-cache "$TRACE_TMP/tc" > /dev/null
cargo run --release -q --offline -p grp-bench --bin perf -- --check "$PACKED_TMP"
grep -q '"replay_tier":"packed"' "$PACKED_TMP" || {
    echo "ERROR: packed perf entry does not record its replay tier" >&2
    exit 1
}

echo "== packed identity gate: packed == materialized over the full grid =="
# check --packed phase 0 replays every kernel x scheme cell through
# both tiers (via the trace cache warmed above) and fails on any
# bit-difference; the reduced case count keeps the later phases short.
cargo run --release -q --offline -p grp-bench --bin check -- \
    --packed --trace-cache "$TRACE_TMP/tc" \
    --scale test --cases 2 --seed 0x5eedc4ec00000000 > /dev/null

echo "== trace-cache gate: corrupt + stale entries rebuild, never crash =="
# Flip a byte in the middle of every cached entry, then truncate one
# and plant pure garbage in another: the next packed run must treat
# each as a named miss, rebuild, and still validate — a corrupt cache
# can degrade warmth, never correctness.
for f in "$TRACE_TMP"/tc/*.grpt; do
    printf '\xff' | dd of="$f" bs=1 seek=100 count=1 conv=notrunc status=none
done
first="$(ls "$TRACE_TMP"/tc/*.grpt | head -1)"
head -c 40 "$first" > "$first.tmp" && mv "$first.tmp" "$first"
printf 'not a cache entry' > "$(ls "$TRACE_TMP"/tc/*.grpt | tail -1)"
cargo run --release -q --offline -p grp-bench --bin perf -- \
    --scale test --packed --no-write --trace-cache "$TRACE_TMP/tc" \
    > /dev/null 2> /dev/null
echo "  -- corrupted cache: rebuilt"

echo "== fleet smoke: cell scheduler grid + fleet entry shape (offline) =="
# Shard the full kernel x scheme grid across two workers through the
# work-stealing cell scheduler; --check validates the appended
# fleet-shaped entry (per-worker utilization, queue-wait percentiles,
# per-cell worker attribution). The streamed partial artifact must also
# parse and report a complete grid.
FLEET_TMP="$TRACE_TMP/fleet_perf.json"
cargo run --release -q --offline -p grp-bench --bin perf -- \
    --fleet --scale test --jobs 2 --label verify-fleet --out "$FLEET_TMP" \
    --stream-out "$TRACE_TMP/fleet_cells.json" > /dev/null
cargo run --release -q --offline -p grp-bench --bin perf -- --check "$FLEET_TMP"
grep -q '"complete":216,"total":216' "$TRACE_TMP/fleet_cells.json" || {
    echo "ERROR: streamed fleet artifact is not a complete grid" >&2
    exit 1
}

echo "== serve smoke: stdin batch replies match the serial path =="
# Three-job batch over stdin; --selfcheck re-runs every reply serially
# on a freshly built workload and exits nonzero on any bit-difference,
# so a pass proves the server's scheduled results equal Suite::run.
# --check-replies then re-parses the saved reply stream shape.
SERVE_TMP="$TRACE_TMP/serve.replies"
printf '%s\n' \
    '{"kernel":"gzip","scheme":"SRP","id":1}' \
    '{"kernel":"mcf","scheme":"none","id":2}' \
    '{"kernel":"gzip","scheme":"GRP/Var","id":3}' \
    | cargo run --release -q --offline -p grp-bench --bin serve -- \
        --scale test --jobs 2 --selfcheck > "$SERVE_TMP" 2> /dev/null
cargo run --release -q --offline -p grp-bench --bin serve -- --check-replies "$SERVE_TMP"

echo "== serve gate has teeth: a bad request must be a flagged reply =="
if printf '{"kernel":"gzip","scheme":"not-a-scheme","id":1}\n' \
    | cargo run --release -q --offline -p grp-bench --bin serve -- \
        --scale test 2> /dev/null \
    | cargo run --release -q --offline -p grp-bench --bin serve -- \
        --check-replies /dev/stdin > /dev/null 2>&1; then
    echo "ERROR: serve --check-replies accepted a failed reply" >&2
    exit 1
fi
echo "  -- bad scheme: flagged"

echo "== telemetry smoke: metrics exposition valid, monotone across sessions =="
# One serve process on a unix socket, scraped after each client session:
# the second scrape must re-validate (declared families, histogram
# bucket invariants) and be counter-monotone against the first — the
# same registry accumulating, never resetting. The JSON twin must carry
# its wall-clock in exactly one marked field.
METRICS="$TRACE_TMP/serve_metrics.prom"
SOCK="$TRACE_TMP/serve.sock"
cargo run --release -q --offline -p grp-bench --bin serve -- \
    --scale test --jobs 2 --socket "$SOCK" --metrics-out "$METRICS" \
    2> /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "ERROR: serve socket never appeared" >&2; exit 1; }
send_session() {
    python3 - "$SOCK" "$1" <<'PYEOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.connect(sys.argv[1])
s.sendall(sys.argv[2].encode())
s.shutdown(socket.SHUT_WR)
while True:
    chunk = s.recv(65536)
    if not chunk:
        break
    sys.stdout.write(chunk.decode())
PYEOF
}
send_session $'{"kernel":"gzip","scheme":"SRP","id":1}\n\n' > /dev/null
for _ in $(seq 1 100); do [ -s "$METRICS" ] && break; sleep 0.1; done
cp "$METRICS" "$METRICS.prev"
# Session 2 is a superset (two jobs + an in-band stats probe), so every
# cumulative series must strictly not regress in the second scrape.
send_session $'{"kernel":"gzip","scheme":"SRP","id":2}\n{"kernel":"mcf","scheme":"none","id":3}\n{"stats":true,"id":4}\n\n' \
    > "$TRACE_TMP/serve_stats.replies"
for _ in $(seq 1 100); do
    grep -q 'grp_serve_sessions_total 2' "$METRICS" 2>/dev/null && break
    sleep 0.1
done
kill "$SERVE_PID" 2> /dev/null; wait "$SERVE_PID" 2> /dev/null || true
grep -q '"stats":{' "$TRACE_TMP/serve_stats.replies" || {
    echo "ERROR: serve did not answer the in-band stats probe" >&2
    exit 1
}
cargo run --release -q --offline -p grp-bench --bin check -- \
    --metrics "$METRICS" --metrics-prev "$METRICS.prev" \
    --metrics-require grp_serve_requests_total,grp_serve_batches_total,grp_serve_stats_requests_total,grp_fleet_cells_total
grep -q '"scraped_at_unix_micros":' "$METRICS.json" || {
    echo "ERROR: metrics JSON twin is missing its scrape timestamp" >&2
    exit 1
}

echo "== metrics gate has teeth: a broken exposition must be rejected =="
printf 'orphan_total 3\n' > "$TRACE_TMP/broken.prom"
if cargo run --release -q --offline -p grp-bench --bin check -- \
    --metrics "$TRACE_TMP/broken.prom" > /dev/null 2>&1; then
    echo "ERROR: check --metrics accepted an undeclared sample" >&2
    exit 1
fi
echo "  -- undeclared sample: rejected"

echo "== chaos gate: seeded I/O-fault storm + kill -9 restart (DESIGN.md §15) =="
# Drives the real serve binary as a subprocess: per-round GRP_IOFAULT
# seeds over a shared trace cache, a client vanishing mid-batch, an
# in-band drain, then kill -9 mid-cache-write with a widened publish
# window. The restart must show bit-identical replies, whole
# artifacts, counters monotone across the kill, and zero staging
# litter anywhere in the tree.
cargo run --release -q --offline -p grp-bench --bin check -- \
    --chaos --chaos-rounds 1 --chaos-dir "$TRACE_TMP/chaos"

echo "== chaos gate has teeth: torn renames must fail it =="
# --inject torn-rename publishes half of every staged payload on
# purpose; a gate that cannot catch that is a tautology.
if cargo run --release -q --offline -p grp-bench --bin check -- \
    --chaos --chaos-rounds 1 --inject torn-rename \
    --chaos-dir "$TRACE_TMP/chaos-teeth" > /dev/null 2>&1; then
    echo "ERROR: check --chaos accepted torn artifacts" >&2
    exit 1
fi
echo "  -- torn-rename: caught"

echo "== profile smoke: perf --profile phases cover the wall clock =="
# The binary itself enforces >= 95% serial coverage (nonzero exit
# otherwise); the trajectory entry must embed the breakdown and still
# validate through --check.
PROFILE_TMP="$TRACE_TMP/profile_perf.json"
cargo run --release -q --offline -p grp-bench --bin perf -- \
    --scale test --profile --label verify-profile --out "$PROFILE_TMP" > /dev/null
cargo run --release -q --offline -p grp-bench --bin perf -- --check "$PROFILE_TMP"
grep -q '"profile":{' "$PROFILE_TMP" || {
    echo "ERROR: perf --profile entry does not embed its phase breakdown" >&2
    exit 1
}

echo "== trace smoke: lifecycle artifacts round-trip (offline) =="
# The trace bin self-checks conservation + bit-exact metrics before
# writing; --check re-parses the written artifacts with the in-tree
# JSON reader and re-asserts conservation from the files alone.
cargo run --release -q --offline -p grp-bench --bin trace -- \
    gzip --scale test --trace-out "$TRACE_TMP/gzip" > /dev/null
cargo run --release -q --offline -p grp-bench --bin trace -- \
    --check "$TRACE_TMP/gzip"

echo "== correctness gate: oracle differential + seeded fuzzing (offline) =="
# Fixed seed and a reduced case count keep the smoke fast and fully
# deterministic; the full 64-case default runs the same binary.
cargo run --release -q --offline -p grp-bench --bin check -- \
    --scale test --cases 8 --seed 0x5eedc4ec00000000 > /dev/null

echo "== fault gate: zero-fault identity + builtin sweep + faulted fuzzing =="
# --faults arms the sweep over every builtin fault plan plus seeded
# (access-plan, fault-plan) pair fuzzing; demand correctness, lifecycle
# conservation, and the no-panic contract must all hold under faults.
cargo run --release -q --offline -p grp-bench --bin check -- \
    --scale test --cases 8 --faults --seed 0x5eedc4ec00000000 > /dev/null

echo "== correctness gate has teeth: injected bugs must be caught =="
# Each injection plants a deliberate bug (bad replacement victim /
# unbounded engine queue / dropped fill leaking its MSHR entry);
# the gate must exit nonzero on every one. drop-leak needs no extra
# flags: it auto-enables --faults so the dropped-fill path is exercised.
for inject in mru-evict unbounded-queue drop-leak; do
    if cargo run --release -q --offline -p grp-bench --bin check -- \
        --scale test --cases 2 --inject "$inject" > /dev/null 2>&1; then
        echo "ERROR: check --inject $inject passed but must fail" >&2
        exit 1
    fi
    echo "  -- $inject: caught"
done

echo "== artifact gate: interrupted write must be flagged, not crash =="
# Simulate a process killed mid-write by truncating a copy of the
# committed trajectory; --check must exit nonzero with a readable
# error naming the path instead of panicking.
TRUNC="$TRACE_TMP/BENCH_perf.truncated.json"
head -c 64 BENCH_perf.json > "$TRUNC"
if cargo run --release -q --offline -p grp-bench --bin perf -- \
    --check "$TRUNC" > /dev/null 2>&1; then
    echo "ERROR: perf --check accepted a truncated trajectory" >&2
    exit 1
fi
echo "  -- truncated trajectory: flagged"

echo "== perf trajectory: committed BENCH_perf.json parses =="
if [ ! -f BENCH_perf.json ]; then
    echo "ERROR: BENCH_perf.json missing from repo root" >&2
    exit 1
fi
cargo run --release -q --offline -p grp-bench --bin perf -- --check BENCH_perf.json

echo "== log lint: eprintln! is banned in grp-bench (structured logger only) =="
# Every diagnostic must go through grp_bench::telemetry::log so it
# carries a level, a target, and machine-readable fields. The logger's
# own module doc is the single allowed mention.
if grep -rn 'eprintln!' crates/bench/src --include='*.rs' \
    | grep -v 'telemetry/log\.rs'; then
    echo "ERROR: raw eprintln! found in grp-bench — use telemetry::log" >&2
    exit 1
fi

echo "== hermeticity: no external registry dependencies =="
if grep -rn 'rand\|proptest\|criterion' crates/*/Cargo.toml Cargo.toml; then
    echo "ERROR: external registry dependency found in a manifest" >&2
    exit 1
fi

echo "verify.sh: all gates passed with no registry access"

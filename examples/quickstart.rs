//! Quickstart: run one benchmark under every prefetching scheme.
//!
//! ```text
//! cargo run --release --example quickstart [bench] [--scale test|small|paper]
//! ```

use grp::core::{Scheme, SimConfig};
use grp::workloads::{all, by_name};
use grp_bench::suite::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    // First positional argument, skipping `--scale` and its value.
    let mut positional = None;
    let mut skip = false;
    for a in &args[1..] {
        if skip {
            skip = false;
            continue;
        }
        if a == "--scale" {
            skip = true;
            continue;
        }
        if !a.starts_with("--") {
            positional = Some(a.as_str());
            break;
        }
    }
    let name = positional.unwrap_or("equake");
    let Some(wl) = by_name(name) else {
        eprintln!("unknown benchmark `{name}`; known:");
        for w in all() {
            eprintln!("  {:<8} — {}", w.name, w.description);
        }
        std::process::exit(1);
    };

    println!("benchmark: {} — {} ({scale:?} scale)", wl.name, wl.description);
    let built = wl.build(scale.workload_scale());
    let cfg = SimConfig::paper();

    let base = built.run(Scheme::NoPrefetch, &cfg);
    println!(
        "\n{:<11} {:>10} {:>6} {:>9} {:>9} {:>8} {:>9}",
        "scheme", "cycles", "IPC", "speedup", "L2 miss", "traffic", "accuracy"
    );
    for scheme in [
        Scheme::NoPrefetch,
        Scheme::Stride,
        Scheme::Srp,
        Scheme::GrpFix,
        Scheme::GrpVar,
        Scheme::PerfectL2,
    ] {
        let r = built.run(scheme, &cfg);
        println!(
            "{:<11} {:>10} {:>6.2} {:>8.2}x {:>9} {:>7.2}x {:>8.1}%",
            scheme.label(),
            r.cycles,
            r.ipc(),
            r.speedup_vs(&base),
            r.l2_misses(),
            r.traffic_vs(&base),
            r.accuracy() * 100.0
        );
    }
    println!("\nGRP aims to match SRP's speedup at a fraction of its traffic.");
}

//! Build a linked-list kernel *from scratch* with the IR, let the
//! compiler derive `pointer`/`recursive` hints, and watch the GRP engine
//! chase the chain ahead of the program.
//!
//! ```text
//! cargo run --release --example pointer_chasing [--scale test|small|paper]
//! ```

use grp::compiler::{analyze, census, AnalysisConfig};
use grp_bench::suite::{scale_from_args, SuiteScale};
use grp::core::{run_trace, Scheme, SimConfig};
use grp::ir::build::*;
use grp::ir::interp::Interpreter;
use grp::ir::types::field;
use grp::ir::{ElemTy, FieldId, ProgramBuilder};
use grp::mem::{HeapAllocator, Memory};

fn main() {
    let scale = scale_from_args();
    let node_count: u64 = match scale {
        SuiteScale::Test => 2_000,
        SuiteScale::Small => 30_000,
        SuiteScale::Paper => 120_000,
    };
    // struct node { node *next; i64 payload; } — Figure 6's idiom.
    let mut pb = ProgramBuilder::new("chase");
    let sid = pb.peek_struct_id();
    let node = pb.add_struct(
        "node",
        vec![
            field("next", ElemTy::ptr_to(sid)),
            field("payload", ElemTy::I64),
        ],
    );
    let head = pb.var("head");
    let p = pb.var("p");
    let sum = pb.var("sum");
    let program = pb.finish(vec![
        assign(p, var(head)),
        while_(
            ne(var(p), c(0)),
            vec![
                assign(sum, add(var(sum), load(fld(var(p), node, FieldId(1))))),
                work(12),
                assign(p, load(fld(var(p), node, FieldId(0)))),
            ],
        ),
    ]);

    // The compiler finds the idiom on its own.
    let hints = analyze(&program, &AnalysisConfig::default());
    let cs = census(&program, &hints);
    println!(
        "compiler census: {} refs, {} pointer-hinted, {} recursive",
        cs.mem_refs, cs.pointer, cs.recursive
    );

    // Plant the nodes in allocation order, one per pair of blocks.
    let mut mem = Memory::new();
    let mut heap = HeapAllocator::new(grp::mem::Addr(0x1000_0000));
    heap.set_pad(112);
    let nodes: Vec<_> = (0..node_count).map(|_| heap.alloc(16, 8)).collect();
    for w in nodes.windows(2) {
        mem.write_u64(w[0], w[1].0);
    }
    mem.write_u64(*nodes.last().unwrap(), 0);
    for (k, n) in nodes.iter().enumerate() {
        mem.write_i64(n.offset(8), k as i64);
    }

    let mut bind = program.bindings();
    bind.bind_var(head, nodes[0].0 as i64);
    let mut run_mem = mem.clone();
    let trace = Interpreter::new(&program, &bind, &hints)
        .run(&mut run_mem)
        .expect("kernel runs");
    println!("trace: {} loads over {} nodes\n", trace.loads(), nodes.len());

    let cfg = SimConfig::paper();
    let heap_range = heap.range();
    let base = run_trace(&trace, &run_mem, heap_range, Scheme::NoPrefetch, &cfg);
    for scheme in [Scheme::NoPrefetch, Scheme::GrpPointer, Scheme::GrpVar] {
        let r = run_trace(&trace, &run_mem, heap_range, scheme, &cfg);
        println!(
            "{:<9} cycles={:<9} speedup={:.2}x  prefetches={} (accuracy {:.0}%)",
            scheme.label(),
            r.cycles,
            r.speedup_vs(&base),
            r.prefetches_issued,
            r.accuracy() * 100.0
        );
    }
    println!("\nThe recursive hint lets the engine walk `next` pointers six");
    println!("levels ahead of the load stream — dependent misses overlap.");
}

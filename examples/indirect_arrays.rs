//! The `a[b[i]]` story (§3.3.3): build an indirect-access kernel, show
//! the compiler deriving the indirect-prefetch directive, and compare
//! hint-blind region prefetching with GRP's indirect engine.
//!
//! ```text
//! cargo run --release --example indirect_arrays [--clustered] [--scale test|small|paper]
//! ```
//!
//! By default the index array is a random permutation (the bzip2 case:
//! SRP's regions are nearly pure waste). With `--clustered`, indices
//! advance in runs (the vpr case: SRP keeps up, just less efficiently).

use grp::compiler::{analyze, AnalysisConfig};
use grp::core::{run_trace, Scheme, SimConfig};
use grp::ir::build::*;
use grp::ir::interp::Interpreter;
use grp::ir::{ElemTy, ProgramBuilder};
use grp::mem::{Addr, HeapAllocator, Memory};
use grp_bench::suite::{scale_from_args, SuiteScale};
use grp_testkit::Rng;

fn main() {
    let clustered = std::env::args().any(|a| a == "--clustered");
    let n: i64 = match scale_from_args() {
        SuiteScale::Test => 6_000,
        SuiteScale::Small => 120_000,
        SuiteScale::Paper => 360_000,
    };

    let mut pb = ProgramBuilder::new("indirect");
    let a = pb.array("a", ElemTy::F64, &[(2 * n) as u64]);
    let b = pb.array("b", ElemTy::I32, &[n as u64]);
    let i = pb.var("i");
    let s = pb.var("s");
    let program = pb.finish(vec![for_(
        i,
        c(0),
        c(n),
        1,
        vec![
            assign(s, add(var(s), load(arr(a, vec![load(arr(b, vec![var(i)]))])))),
            work(18),
        ],
    )]);

    let hints = analyze(&program, &AnalysisConfig::default());
    let spec = hints
        .indirect(grp::cpu::RefId(0))
        .expect("compiler derives the indirect directive on b[i]");
    println!(
        "derived indirect directive: target array {:?}, element size {} B",
        spec.target, spec.elem_size
    );

    let mut mem = Memory::new();
    let mut heap = HeapAllocator::new(Addr(0x1000_0000));
    let a_base = heap.alloc_array(2 * n as u64, 8);
    let b_base = heap.alloc_array(n as u64, 4);
    let mut rng = Rng::seed_from_u64(42);
    let mut pos = 0i64;
    for k in 0..n {
        let idx = if clustered {
            pos += rng.gen_range(0..9);
            (pos % (2 * n)) as i32
        } else {
            rng.gen_range(0..2 * n) as i32
        };
        mem.write_i32(b_base.offset(k * 4), idx);
    }
    let mut bind = program.bindings();
    bind.bind_array(a, a_base);
    bind.bind_array(b, b_base);

    let mut run_mem = mem.clone();
    let trace = Interpreter::new(&program, &bind, &hints)
        .run(&mut run_mem)
        .expect("kernel runs");
    println!(
        "index pattern: {} — {} indirect-prefetch instructions in the trace\n",
        if clustered { "clustered" } else { "random permutation" },
        trace
            .events()
            .iter()
            .filter(|e| matches!(e, grp::cpu::TraceEvent::IndirectPrefetch { .. }))
            .count()
    );

    let cfg = SimConfig::paper();
    let heap_range = heap.range();
    let base = run_trace(&trace, &run_mem, heap_range, Scheme::NoPrefetch, &cfg);
    println!("{:<9} {:>9} {:>9} {:>9} {:>9}", "scheme", "cycles", "speedup", "traffic", "accuracy");
    for scheme in [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar] {
        let r = run_trace(&trace, &run_mem, heap_range, scheme, &cfg);
        println!(
            "{:<9} {:>9} {:>8.2}x {:>8.2}x {:>8.1}%",
            scheme.label(),
            r.cycles,
            r.speedup_vs(&base),
            r.traffic_vs(&base),
            r.accuracy() * 100.0
        );
    }
}

//! The performance/traffic frontier: sweep every scheme over the whole
//! benchmark suite and print speedup against traffic — the paper's core
//! argument (Table 1) as a scatter.
//!
//! ```text
//! cargo run --release --example traffic_study [--scale test|small|paper]
//! ```

use grp::core::{geomean, Scheme};
use grp_bench::{suite::scale_from_args, Suite};

fn main() {
    let mut suite = Suite::new(scale_from_args()).verbose();
    let names = suite.perf_names();

    println!("\nsuite geometric means (17 benchmarks):\n");
    println!(
        "{:<10} {:>9} {:>9} {:>14}",
        "scheme", "speedup", "traffic", "speedup/traffic"
    );
    for scheme in [
        Scheme::Stride,
        Scheme::HwPointer,
        Scheme::GrpPointer,
        Scheme::GrpFix,
        Scheme::GrpVar,
        Scheme::Srp,
    ] {
        let mut sp = Vec::new();
        let mut tr = Vec::new();
        for name in &names {
            let base = suite.run(name, Scheme::NoPrefetch);
            let r = suite.run(name, scheme);
            sp.push(r.speedup_vs(&base));
            tr.push(r.traffic_vs(&base).max(1e-9));
        }
        let (s, t) = (geomean(&sp), geomean(&tr));
        println!("{:<10} {:>8.3}x {:>8.2}x {:>13.3}", scheme.label(), s, t, s / t);
        let bar = "#".repeat(((s - 1.0) * 100.0).max(0.0) as usize);
        let tbar = "~".repeat(((t - 1.0) * 20.0).clamp(0.0, 60.0) as usize);
        println!("  perf    |{bar}");
        println!("  traffic |{tbar}");
    }
    println!("\nGRP's claim: SRP-class speedup at a fraction of SRP's traffic.");
}

//! A 2-D stencil written in the IR, compiled under the three §5.4
//! spatial policies — shows how the reuse-distance bound changes what
//! gets marked and what that costs.
//!
//! ```text
//! cargo run --release --example matrix_stencil [--scale test|small|paper]
//! ```

use grp::compiler::{analyze, census, AnalysisConfig, SpatialPolicy};
use grp_bench::suite::{scale_from_args, SuiteScale};
use grp::core::{run_trace, Scheme, SimConfig};
use grp::ir::build::*;
use grp::ir::interp::Interpreter;
use grp::ir::{ElemTy, ProgramBuilder};
use grp::mem::{HeapAllocator, Memory};

fn build(n: i64) -> (grp::ir::Program, grp::ir::Bindings, Memory, grp::mem::HeapRange) {
    let mut pb = ProgramBuilder::new("stencil");
    let a = pb.array("a", ElemTy::F64, &[n as u64, n as u64]);
    let b = pb.array("b", ElemTy::F64, &[n as u64, n as u64]);
    let i = pb.var("i");
    let j = pb.var("j");
    let program = pb.finish(vec![for_(
        i,
        c(1),
        c(n - 1),
        1,
        vec![for_(
            j,
            c(1),
            c(n - 1),
            1,
            vec![
                store(
                    arr(b, vec![var(i), var(j)]),
                    add(
                        add(
                            load(arr(a, vec![var(i), sub(var(j), c(1))])),
                            load(arr(a, vec![var(i), add(var(j), c(1))])),
                        ),
                        add(
                            load(arr(a, vec![sub(var(i), c(1)), var(j)])),
                            load(arr(a, vec![add(var(i), c(1)), var(j)])),
                        ),
                    ),
                ),
                work(6),
            ],
        )],
    )]);
    let mem = Memory::new(); // stencil inputs read as 0.0 — values are irrelevant here
    let mut heap = HeapAllocator::new(grp::mem::Addr(0x1000_0000));
    let mut bind = program.bindings();
    bind.bind_array(a, heap.alloc_array((n * n) as u64, 8));
    bind.bind_array(b, heap.alloc_array((n * n) as u64, 8));
    let range = heap.range();
    (program, bind, mem, range)
}

fn main() {
    let n: i64 = match scale_from_args() {
        SuiteScale::Test => 96,
        SuiteScale::Small => 512,
        SuiteScale::Paper => 1024,
    };
    let (program, bind, mem, heap) = build(n);
    let cfg = SimConfig::paper();

    println!("policy        spatial-marked   cycles     speedup  traffic");
    let mut base_cycles = 0u64;
    let mut base_traffic = 0u64;
    for (label, policy, scheme) in [
        ("none", None, Scheme::NoPrefetch),
        (
            "conservative",
            Some(SpatialPolicy::Conservative),
            Scheme::GrpConservative,
        ),
        ("default", Some(SpatialPolicy::Default), Scheme::GrpVar),
        (
            "aggressive",
            Some(SpatialPolicy::Aggressive),
            Scheme::GrpAggressive,
        ),
    ] {
        let cc = policy.map(|p| AnalysisConfig {
            policy: p,
            ..AnalysisConfig::default()
        });
        let hints = match &cc {
            Some(cfg) => analyze(&program, cfg),
            None => grp::ir::HintMap::empty(),
        };
        let marked = census(&program, &hints).spatial;
        let mut run_mem = mem.clone();
        let trace = Interpreter::new(&program, &bind, &hints)
            .run(&mut run_mem)
            .expect("stencil runs");
        let r = run_trace(&trace, &run_mem, heap, scheme, &cfg);
        if label == "none" {
            base_cycles = r.cycles;
            base_traffic = r.traffic.total_blocks().max(1);
        }
        println!(
            "{:<13} {:>14} {:>9} {:>9.2}x {:>7.2}x",
            label,
            marked,
            r.cycles,
            base_cycles as f64 / r.cycles as f64,
            r.traffic.total_blocks() as f64 / base_traffic as f64,
        );
    }
    println!("\nThe conservative policy only marks innermost-loop reuse; the");
    println!("aggressive one marks everything and pays in traffic (§5.4).");
}

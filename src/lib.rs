//! # grp — Guided Region Prefetching
//!
//! A full-system Rust reproduction of *"Guided Region Prefetching: A
//! Cooperative Hardware/Software Approach"* (Wang, Burger, McKinley,
//! Reinhardt, Weems — ISCA 2003).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`mem`] — memory substrate: functional memory, caches, MSHRs, DRAM.
//! * [`cpu`] — trace-driven out-of-order core timing model.
//! * [`ir`] — loop-structured compiler IR and interpreter.
//! * [`compiler`] — Scale-style analyses generating the GRP hints.
//! * [`core`] — the prefetch engines (stride, SRP, GRP) and the simulator.
//! * [`workloads`] — SPEC CPU2000-style kernels expressed in the IR.
//!
//! # Quickstart
//!
//! ```
//! use grp::core::{Scheme, SimConfig};
//! use grp::workloads::{by_name, Scale};
//!
//! // Build a small workload, compile it (deriving hints), and simulate.
//! let wl = by_name("swim").expect("known workload");
//! let built = wl.build(Scale::Test);
//! let result = built.run(Scheme::GrpVar, &SimConfig::paper());
//! assert!(result.ipc() > 0.0);
//! ```

#![deny(missing_docs)]

pub use grp_compiler as compiler;
pub use grp_core as core;
pub use grp_cpu as cpu;
pub use grp_ir as ir;
pub use grp_mem as mem;
pub use grp_workloads as workloads;

//! Programs: expressions, memory references, statements, declarations.
//!
//! A [`Program`] is one kernel — the unit the Scale compiler would
//! compile and the unit the simulator runs. Static memory reference sites
//! are numbered with [`grp_cpu::RefId`]s (assigned by
//! [`crate::ProgramBuilder::finish`]); loops are numbered with
//! [`LoopId`]s. Hints attach per `RefId`, mirroring per-instruction hints
//! in the paper's binaries.

use grp_cpu::RefId;
use grp_mem::Addr;

use crate::types::{ElemTy, FieldId, StructDecl, StructId};

/// Identifier of a scalar variable (virtual register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

/// Identifier of a declared array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// Identifier of a `for` loop within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoopId(pub u32);

/// Placeholder for ids assigned by [`crate::ProgramBuilder::finish`].
pub(crate) const UNASSIGNED: u32 = u32::MAX;

/// One dimension of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// Extent known at compile time.
    Const(u64),
    /// Extent bound at run time (symbolic to the compiler). The paper's
    /// analyses become conservative for symbolic bounds (§4.1).
    Sym,
}

/// A declared array. C arrays are row-major with the *last* index
/// spatial; workloads express Fortran column-major kernels by reversing
/// their subscript order, which preserves the locality structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Array name (diagnostics).
    pub name: String,
    /// Element type.
    pub elem: ElemTy,
    /// Dimensions, slowest-varying first.
    pub dims: Vec<Dim>,
    /// True when the array lives on the heap (`malloc`ed). Used by the
    /// §4.5 rule marking spatial references to heap arrays of pointers
    /// with the `pointer` hint.
    pub heap: bool,
}

/// Binary arithmetic/logic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition (wrapping on integers).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division truncates; division by zero yields 0).
    Div,
    /// Remainder (by zero yields 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 ↦ 1, nonzero ↦ 0).
    Not,
}

/// Comparison operators; results are integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

/// A static memory reference site.
#[derive(Debug, Clone, PartialEq)]
pub enum MemRef {
    /// `a(i, j, …)` — subscripted reference to a declared array.
    Array {
        /// The array.
        array: ArrayId,
        /// Subscripts, slowest-varying dimension first.
        indices: Vec<Expr>,
        /// Static site id (assigned by the builder).
        ref_id: RefId,
    },
    /// `base[index]` — indexing a pointer value (a heap-array row,
    /// Figure 4's `buf[i][j]` inner access).
    PtrIndex {
        /// Pointer-valued base expression.
        base: Box<Expr>,
        /// Element type of the pointed-to row.
        elem: ElemTy,
        /// Index expression.
        index: Box<Expr>,
        /// Static site id.
        ref_id: RefId,
    },
    /// `p->f` — field access through a structure pointer.
    Field {
        /// Pointer-valued base expression.
        base: Box<Expr>,
        /// The structure type.
        strct: StructId,
        /// The field.
        field: FieldId,
        /// Static site id.
        ref_id: RefId,
    },
    /// `*(T *)(p + offset)` — raw dereference (induction pointers,
    /// Figure 5's `*p`).
    Deref {
        /// Pointer-valued base expression.
        base: Box<Expr>,
        /// Element type loaded/stored.
        elem: ElemTy,
        /// Constant byte offset.
        offset: i64,
        /// Static site id.
        ref_id: RefId,
    },
}

impl MemRef {
    /// The static site id.
    pub fn ref_id(&self) -> RefId {
        match self {
            MemRef::Array { ref_id, .. }
            | MemRef::PtrIndex { ref_id, .. }
            | MemRef::Field { ref_id, .. }
            | MemRef::Deref { ref_id, .. } => *ref_id,
        }
    }

    pub(crate) fn ref_id_mut(&mut self) -> &mut RefId {
        match self {
            MemRef::Array { ref_id, .. }
            | MemRef::PtrIndex { ref_id, .. }
            | MemRef::Field { ref_id, .. }
            | MemRef::Deref { ref_id, .. } => ref_id,
        }
    }
}

/// An expression. Evaluation is side-effect-free except for the loads it
/// performs (which emit trace events).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer constant.
    I64(i64),
    /// Float constant.
    F64(f64),
    /// Read a scalar variable.
    Var(VarId),
    /// Load through a memory reference.
    Load(MemRef),
    /// The base address of a declared array (`&a[0]`), as an integer.
    ArrayBase(ArrayId),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing 0/1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `v = e`.
    Assign(VarId, Expr),
    /// `*ref = e`.
    Store(MemRef, Expr),
    /// `for (iv = lo; iv < hi; iv += step)` — when `step` is negative the
    /// condition is `iv > hi`. `id` is assigned by the builder.
    For {
        /// Loop id (builder-assigned).
        id: LoopId,
        /// Induction variable.
        iv: VarId,
        /// Lower bound (evaluated once at entry).
        lo: Expr,
        /// Upper bound (evaluated once at entry).
        hi: Expr,
        /// Step; must be nonzero.
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `while (cond)`.
    While {
        /// Continuation condition (nonzero = continue).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `n` units of abstract computation (ALU/FP work the kernel
    /// skeleton elides relative to the original benchmark). Purely a
    /// timing annotation: no architectural effect.
    Work(u32),
    /// `if (cond) … else …`.
    If {
        /// Condition (nonzero = then).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
}

/// A complete kernel.
#[derive(Debug, Clone)]
pub struct Program {
    /// Kernel name.
    pub name: String,
    /// Structure declarations.
    pub structs: Vec<StructDecl>,
    /// Array declarations.
    pub arrays: Vec<ArrayDecl>,
    /// Variable names, indexed by [`VarId`] (diagnostics).
    pub var_names: Vec<String>,
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Number of static reference sites ([`RefId`]s `0..num_refs`).
    pub num_refs: u32,
    /// Number of loops ([`LoopId`]s `0..num_loops`).
    pub num_loops: u32,
}

impl Program {
    /// The declaration of `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn array(&self, a: ArrayId) -> &ArrayDecl {
        &self.arrays[a.0 as usize]
    }

    /// The declaration of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn strct(&self, s: StructId) -> &StructDecl {
        &self.structs[s.0 as usize]
    }

    /// Creates an empty binding set sized for this program.
    pub fn bindings(&self) -> Bindings {
        Bindings {
            array_bases: vec![None; self.arrays.len()],
            array_dims: vec![None; self.arrays.len()],
            var_inits: Vec::new(),
        }
    }

    /// Number of scalar variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }
}

/// Runtime bindings for a program: array base addresses, symbolic
/// dimension extents, and initial variable values (how workload setup
/// code passes pointers into the kernel).
#[derive(Debug, Clone)]
pub struct Bindings {
    array_bases: Vec<Option<Addr>>,
    array_dims: Vec<Option<Vec<u64>>>,
    var_inits: Vec<(VarId, i64)>,
}

impl Bindings {
    /// Binds array `a`'s base address.
    pub fn bind_array(&mut self, a: ArrayId, base: Addr) -> &mut Self {
        self.array_bases[a.0 as usize] = Some(base);
        self
    }

    /// Binds array `a`'s base address and its runtime dimension extents
    /// (required when the declaration uses [`Dim::Sym`]).
    pub fn bind_array_dims(&mut self, a: ArrayId, base: Addr, dims: &[u64]) -> &mut Self {
        self.array_bases[a.0 as usize] = Some(base);
        self.array_dims[a.0 as usize] = Some(dims.to_vec());
        self
    }

    /// Sets the initial value of a scalar variable (e.g. a pointer
    /// parameter to the head of a list built by setup code).
    pub fn bind_var(&mut self, v: VarId, value: i64) -> &mut Self {
        self.var_inits.push((v, value));
        self
    }

    /// The bound base of `a`, if any.
    pub fn array_base(&self, a: ArrayId) -> Option<Addr> {
        self.array_bases[a.0 as usize]
    }

    /// The bound dims of `a`, if any.
    pub fn array_dims(&self, a: ArrayId) -> Option<&[u64]> {
        self.array_dims[a.0 as usize].as_deref()
    }

    /// Initial variable values.
    pub fn var_inits(&self) -> &[(VarId, i64)] {
        &self.var_inits
    }

    /// Resolves the extents of `a` against declaration `decl`.
    ///
    /// # Panics
    ///
    /// Panics if a symbolic dimension has no runtime binding.
    pub fn resolve_dims(&self, a: ArrayId, decl: &ArrayDecl) -> Vec<u64> {
        match self.array_dims(a) {
            Some(d) => {
                assert_eq!(d.len(), decl.dims.len(), "dim arity mismatch for {}", decl.name);
                d.to_vec()
            }
            None => decl
                .dims
                .iter()
                .map(|d| match d {
                    Dim::Const(n) => *n,
                    Dim::Sym => panic!(
                        "array {} has symbolic dims but no runtime binding",
                        decl.name
                    ),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::field;

    #[test]
    fn memref_ref_id_accessors() {
        let mut r = MemRef::Array {
            array: ArrayId(0),
            indices: vec![Expr::I64(0)],
            ref_id: RefId(5),
        };
        assert_eq!(r.ref_id(), RefId(5));
        *r.ref_id_mut() = RefId(9);
        assert_eq!(r.ref_id(), RefId(9));
    }

    #[test]
    fn bindings_resolve_const_dims() {
        let p = Program {
            name: "t".into(),
            structs: vec![],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                elem: ElemTy::F64,
                dims: vec![Dim::Const(4), Dim::Const(8)],
                heap: false,
            }],
            var_names: vec![],
            body: vec![],
            num_refs: 0,
            num_loops: 0,
        };
        let b = p.bindings();
        assert_eq!(b.resolve_dims(ArrayId(0), p.array(ArrayId(0))), vec![4, 8]);
    }

    #[test]
    fn bindings_resolve_symbolic_dims() {
        let p = Program {
            name: "t".into(),
            structs: vec![],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                elem: ElemTy::F64,
                dims: vec![Dim::Sym],
                heap: true,
            }],
            var_names: vec![],
            body: vec![],
            num_refs: 0,
            num_loops: 0,
        };
        let mut b = p.bindings();
        b.bind_array_dims(ArrayId(0), Addr(0x1000), &[128]);
        assert_eq!(b.resolve_dims(ArrayId(0), p.array(ArrayId(0))), vec![128]);
        assert_eq!(b.array_base(ArrayId(0)), Some(Addr(0x1000)));
    }

    #[test]
    #[should_panic(expected = "symbolic dims")]
    fn unbound_symbolic_dims_panic() {
        let p = Program {
            name: "t".into(),
            structs: vec![],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                elem: ElemTy::F64,
                dims: vec![Dim::Sym],
                heap: true,
            }],
            var_names: vec![],
            body: vec![],
            num_refs: 0,
            num_loops: 0,
        };
        p.bindings().resolve_dims(ArrayId(0), p.array(ArrayId(0)));
    }

    #[test]
    fn program_accessors() {
        let p = Program {
            name: "t".into(),
            structs: vec![StructDecl::new("s", vec![field("x", ElemTy::I64)])],
            arrays: vec![],
            var_names: vec!["i".into()],
            body: vec![],
            num_refs: 0,
            num_loops: 0,
        };
        assert_eq!(p.strct(StructId(0)).name, "s");
        assert_eq!(p.num_vars(), 1);
    }
}

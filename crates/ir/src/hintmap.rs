//! Per-site hint tables produced by the compiler and consumed by the
//! interpreter.
//!
//! A [`HintMap`] is the reproduction's analogue of the hint-annotated
//! binary: for every static reference site it records the [`HintSet`]
//! (spatial/pointer/recursive/size), for index loads of indirect accesses
//! the [`IndirectSpec`] driving the explicit indirect-prefetch
//! instruction (§3.3.3), and for variable-region loops whether to emit
//! the loop-bound pseudo-instruction (§3.3.2).

use grp_cpu::{HintSet, RefId};

use crate::program::{ArrayId, LoopId};

/// Indirect-prefetch directive attached to the *index* load `b[i]` of an
/// `a[b[i]]` pattern: identifies the data array `a` and its element size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndirectSpec {
    /// The indexed data array (`a`).
    pub target: ArrayId,
    /// `sizeof(a[0])` in bytes.
    pub elem_size: u32,
}

/// Hints for every reference site and loop of one program.
#[derive(Debug, Clone, Default)]
pub struct HintMap {
    hints: Vec<HintSet>,
    indirect: Vec<Option<IndirectSpec>>,
    loop_bounds: Vec<bool>,
}

impl HintMap {
    /// A map with no hints at all (the no-compiler-support configuration:
    /// SRP and stride prefetching run hint-blind).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A map sized for `num_refs` sites and `num_loops` loops, all unhinted.
    pub fn sized(num_refs: u32, num_loops: u32) -> Self {
        Self {
            hints: vec![HintSet::none(); num_refs as usize],
            indirect: vec![None; num_refs as usize],
            loop_bounds: vec![false; num_loops as usize],
        }
    }

    fn grow_refs(&mut self, r: RefId) {
        let need = r.0 as usize + 1;
        if self.hints.len() < need {
            self.hints.resize(need, HintSet::none());
            self.indirect.resize(need, None);
        }
    }

    /// Sets the hint set for site `r`.
    pub fn set_hint(&mut self, r: RefId, h: HintSet) {
        self.grow_refs(r);
        self.hints[r.0 as usize] = h;
    }

    /// Merges `h` into site `r`'s existing hints (used by passes that
    /// each contribute one hint kind).
    pub fn add_spatial(&mut self, r: RefId) {
        let h = self.hint(r).with_spatial();
        self.set_hint(r, h);
    }

    /// Adds the `pointer` hint to site `r`.
    pub fn add_pointer(&mut self, r: RefId) {
        let h = self.hint(r).with_pointer();
        self.set_hint(r, h);
    }

    /// Adds the `recursive pointer` hint to site `r`.
    pub fn add_recursive(&mut self, r: RefId) {
        let h = self.hint(r).with_recursive();
        self.set_hint(r, h);
    }

    /// Sets the variable-region size coefficient for site `r`.
    pub fn set_size_coeff(&mut self, r: RefId, coeff: u8) {
        let h = self.hint(r).with_size_coeff(coeff);
        self.set_hint(r, h);
    }

    /// The hint set for site `r` (empty when never set).
    pub fn hint(&self, r: RefId) -> HintSet {
        self.hints
            .get(r.0 as usize)
            .copied()
            .unwrap_or_else(HintSet::none)
    }

    /// Attaches an indirect-prefetch directive to index-load site `r`.
    pub fn set_indirect(&mut self, r: RefId, spec: IndirectSpec) {
        self.grow_refs(r);
        self.indirect[r.0 as usize] = Some(spec);
    }

    /// The indirect directive for site `r`, if any.
    pub fn indirect(&self, r: RefId) -> Option<IndirectSpec> {
        self.indirect.get(r.0 as usize).copied().flatten()
    }

    /// Marks loop `l` as emitting the loop-bound pseudo-instruction.
    pub fn mark_loop_bound(&mut self, l: LoopId) {
        let need = l.0 as usize + 1;
        if self.loop_bounds.len() < need {
            self.loop_bounds.resize(need, false);
        }
        self.loop_bounds[l.0 as usize] = true;
    }

    /// True when loop `l` emits its bound at entry.
    pub fn emits_bound(&self, l: LoopId) -> bool {
        self.loop_bounds.get(l.0 as usize).copied().unwrap_or(false)
    }

    /// Iterates over `(site, hints)` pairs with any hint set — the static
    /// hint census behind Table 3.
    pub fn iter_hinted(&self) -> impl Iterator<Item = (RefId, HintSet)> + '_ {
        self.hints
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(i, h)| (RefId(i as u32), *h))
    }

    /// Number of sites with an indirect directive.
    pub fn indirect_count(&self) -> usize {
        self.indirect.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_returns_no_hints() {
        let m = HintMap::empty();
        assert!(m.hint(RefId(42)).is_empty());
        assert_eq!(m.indirect(RefId(42)), None);
        assert!(!m.emits_bound(LoopId(3)));
        assert_eq!(m.iter_hinted().count(), 0);
    }

    #[test]
    fn add_hints_accumulate_per_site() {
        let mut m = HintMap::sized(4, 2);
        m.add_spatial(RefId(1));
        m.add_pointer(RefId(1));
        let h = m.hint(RefId(1));
        assert!(h.spatial() && h.pointer() && !h.recursive());
        m.add_recursive(RefId(3));
        assert!(m.hint(RefId(3)).recursive());
        assert_eq!(m.iter_hinted().count(), 2);
    }

    #[test]
    fn size_coeff_and_loop_bound() {
        let mut m = HintMap::empty();
        m.set_size_coeff(RefId(0), 3);
        m.mark_loop_bound(LoopId(0));
        assert_eq!(m.hint(RefId(0)).size_coeff(), Some(3));
        assert!(m.emits_bound(LoopId(0)));
        assert!(!m.emits_bound(LoopId(1)));
    }

    #[test]
    fn indirect_spec_round_trips() {
        let mut m = HintMap::empty();
        m.set_indirect(
            RefId(5),
            IndirectSpec {
                target: ArrayId(2),
                elem_size: 4,
            },
        );
        assert_eq!(
            m.indirect(RefId(5)),
            Some(IndirectSpec {
                target: ArrayId(2),
                elem_size: 4
            })
        );
        assert_eq!(m.indirect_count(), 1);
    }

    #[test]
    fn grow_on_demand_preserves_earlier_entries() {
        let mut m = HintMap::empty();
        m.add_spatial(RefId(0));
        m.add_pointer(RefId(100));
        assert!(m.hint(RefId(0)).spatial());
        assert!(m.hint(RefId(100)).pointer());
        assert!(m.hint(RefId(50)).is_empty());
    }
}

//! Loop-structured compiler IR for the GRP reproduction.
//!
//! The paper's software half is the Scale compiler analysing C and
//! Fortran 77 sources (§4, §5.1). This crate is the reproduction's
//! stand-in source language: a small, executable, loop-structured IR
//! rich enough to express every reference pattern the paper's analyses
//! distinguish —
//!
//! * multi-dimensional affine array references (`a(i,j)`, Figure 3),
//! * heap arrays of pointers to rows (`buf[i][j]`, Figure 4),
//! * loop induction pointers (`p += c; *p`, Figure 5),
//! * recursive pointer structures (`a = a->next`, Figure 6),
//! * indirect array references (`c(b(i), j)`, §4.3).
//!
//! Programs are *executable*: [`interp::Interpreter`] runs a program
//! against a [`grp_mem::Memory`] and records a [`grp_cpu::Trace`] of
//! loads/stores (with compiler hints attached per static reference) that
//! the timing simulator replays. The compiler analyses in `grp-compiler`
//! operate on the same [`Program`] structure, so hints are *derived*, not
//! hand-written.
//!
//! # Example
//!
//! ```
//! use grp_ir::build::*;
//! use grp_ir::{ElemTy, ProgramBuilder, HintMap};
//! use grp_ir::interp::Interpreter;
//! use grp_mem::{Memory, HeapAllocator, Addr};
//!
//! // for (i = 0; i < 64; i++) sum += a[i];
//! let mut pb = ProgramBuilder::new("sum");
//! let a = pb.array("a", ElemTy::F64, &[64]);
//! let i = pb.var("i");
//! let sum = pb.var("sum");
//! let body = vec![
//!     assign(sum, f(0.0)),
//!     for_(i, c(0), c(64), 1, vec![
//!         assign(sum, add(var(sum), load(arr(a, vec![var(i)])))),
//!     ]),
//! ];
//! let prog = pb.finish(body);
//!
//! let mut mem = Memory::new();
//! let mut heap = HeapAllocator::new(Addr(0x10_0000));
//! let base = heap.alloc_array(64, 8);
//! let mut bind = prog.bindings();
//! bind.bind_array(a, base);
//! let trace = Interpreter::new(&prog, &bind, &HintMap::empty())
//!     .run(&mut mem)
//!     .unwrap();
//! assert_eq!(trace.loads(), 64);
//! ```

#![deny(missing_docs)]

pub mod build;
pub mod hintmap;
pub mod interp;
pub mod program;
pub mod types;

pub use build::ProgramBuilder;
pub use hintmap::{HintMap, IndirectSpec};
pub use program::{
    ArrayDecl, ArrayId, Bindings, BinOp, CmpOp, Dim, Expr, LoopId, MemRef, Program, Stmt, UnOp,
    VarId,
};
pub use types::{ElemTy, Field, FieldId, StructDecl, StructId};

//! The IR interpreter: functional execution producing a hinted trace.
//!
//! [`Interpreter::run`] executes a [`Program`] against a
//! [`grp_mem::Memory`], recording every load and store (with the
//! compiler's per-site hints attached) into a [`grp_cpu::Trace`]. Two
//! properties matter for fidelity to the paper:
//!
//! * **Real data flow.** Loads read actual memory contents, so linked
//!   structures traverse the pointers workload setup code planted, and
//!   the timing simulator can later re-read the same memory when the GRP
//!   engine scans fetched blocks for pointers (§3.2) or reads index
//!   arrays (§3.3.3).
//! * **Address dependencies.** Every value carries the dynamic load that
//!   produced it; a load whose *address* derives from another load gets a
//!   dependency edge in the trace, so pointer chasing serializes in the
//!   timing model exactly as in hardware.

use std::error::Error;
use std::fmt;

use grp_cpu::{RefId, Trace};
use grp_mem::{Addr, Memory};

use crate::hintmap::HintMap;
use crate::program::{BinOp, Bindings, CmpOp, Expr, MemRef, Program, Stmt, UnOp};
use crate::types::ElemTy;

/// Interpretation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An array was referenced without a bound base address.
    UnboundArray(String),
    /// The trace exceeded the configured event limit (runaway loop guard).
    EventLimit(u64),
    /// The program executed more statements than the configured limit.
    StepLimit(u64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::UnboundArray(name) => {
                write!(f, "array `{name}` has no bound base address")
            }
            InterpError::EventLimit(n) => write!(f, "trace exceeded {n} events"),
            InterpError::StepLimit(n) => write!(f, "execution exceeded {n} statements"),
        }
    }
}

impl Error for InterpError {}

#[derive(Debug, Clone, Copy)]
enum Num {
    I(i64),
    F(f64),
}

#[derive(Debug, Clone, Copy)]
struct Val {
    n: Num,
    tag: Option<u64>,
}

impl Val {
    fn int_untagged(v: i64) -> Self {
        Val {
            n: Num::I(v),
            tag: None,
        }
    }

    fn as_i64(self) -> i64 {
        match self.n {
            Num::I(v) => v,
            Num::F(v) => v as i64,
        }
    }

    fn as_f64(self) -> f64 {
        match self.n {
            Num::I(v) => v as f64,
            Num::F(v) => v,
        }
    }

    fn is_float(self) -> bool {
        matches!(self.n, Num::F(_))
    }
}

fn merge_tag(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

struct RefInfo {
    addr: Addr,
    elem: ElemTy,
    dep: Option<u64>,
    ref_id: RefId,
}

/// Executes a program, producing the dynamic trace.
pub struct Interpreter<'a> {
    prog: &'a Program,
    hints: &'a HintMap,
    vars: Vec<Val>,
    bases: Vec<Option<Addr>>,
    dims: Vec<Vec<u64>>,
    trace: Trace,
    ops: u32,
    steps: u64,
    max_events: u64,
    max_steps: u64,
    last_indirect_block: Vec<Option<u64>>,
}

impl<'a> Interpreter<'a> {
    /// Prepares an interpreter for `prog` with runtime `bind`ings and the
    /// compiler's `hints`.
    pub fn new(prog: &'a Program, bind: &'a Bindings, hints: &'a HintMap) -> Self {
        let mut vars = vec![Val::int_untagged(0); prog.num_vars()];
        for (v, init) in bind.var_inits() {
            vars[v.0 as usize] = Val::int_untagged(*init);
        }
        let bases = (0..prog.arrays.len())
            .map(|i| bind.array_base(crate::program::ArrayId(i as u32)))
            .collect();
        let dims = prog
            .arrays
            .iter()
            .enumerate()
            .map(|(i, decl)| {
                let id = crate::program::ArrayId(i as u32);
                if bind.array_base(id).is_some() {
                    bind.resolve_dims(id, decl)
                } else {
                    // Unbound arrays resolve lazily to an error on use;
                    // constant dims are still available for diagnostics.
                    decl.dims
                        .iter()
                        .map(|d| match d {
                            crate::program::Dim::Const(n) => *n,
                            crate::program::Dim::Sym => 0,
                        })
                        .collect()
                }
            })
            .collect();
        Self {
            prog,
            hints,
            vars,
            bases,
            dims,
            trace: Trace::new(),
            ops: 0,
            steps: 0,
            max_events: 100_000_000,
            max_steps: 1_000_000_000,
            last_indirect_block: vec![None; prog.num_refs as usize],
        }
    }

    /// Overrides the trace-event limit (runaway guard).
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = n;
        self
    }

    /// Overrides the executed-statement limit.
    pub fn with_max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError`] when an array is unbound or an execution
    /// limit is exceeded.
    pub fn run(mut self, mem: &mut Memory) -> Result<Trace, InterpError> {
        // Split borrow: body belongs to prog, which we also need in &self.
        let body = &self.prog.body;
        for s in body {
            self.exec(s, mem)?;
        }
        self.flush_ops();
        self.trace.finish();
        Ok(self.trace)
    }

    fn flush_ops(&mut self) {
        if self.ops > 0 {
            self.trace.push_compute(self.ops);
            self.ops = 0;
        }
    }

    fn check_limits(&self) -> Result<(), InterpError> {
        if self.trace.events().len() as u64 > self.max_events {
            return Err(InterpError::EventLimit(self.max_events));
        }
        if self.steps > self.max_steps {
            return Err(InterpError::StepLimit(self.max_steps));
        }
        Ok(())
    }

    fn exec(&mut self, s: &'a Stmt, mem: &mut Memory) -> Result<(), InterpError> {
        self.steps += 1;
        self.check_limits()?;
        match s {
            Stmt::Assign(v, e) => {
                let val = self.eval(e, mem)?;
                self.vars[v.0 as usize] = val;
            }
            Stmt::Work(n) => {
                self.ops = self.ops.saturating_add(*n);
            }
            Stmt::Store(r, e) => {
                let val = self.eval(e, mem)?;
                let info = self.eval_ref(r, mem)?;
                self.flush_ops();
                self.trace.push_store(
                    info.addr,
                    info.elem.size() as u8,
                    info.ref_id,
                    self.hints.hint(info.ref_id),
                );
                self.write_elem(mem, info.addr, info.elem, val);
            }
            Stmt::For {
                id,
                iv,
                lo,
                hi,
                step,
                body,
            } => {
                let lo_v = self.eval(lo, mem)?.as_i64();
                let hi_v = self.eval(hi, mem)?.as_i64();
                if self.hints.emits_bound(*id) {
                    let trip = if *step > 0 {
                        (hi_v - lo_v).max(0) as u64 / *step as u64
                            + u64::from(!((hi_v - lo_v).max(0) as u64).is_multiple_of(*step as u64))
                    } else {
                        (lo_v - hi_v).max(0) as u64 / step.unsigned_abs()
                            + u64::from(!((lo_v - hi_v).max(0) as u64).is_multiple_of(step.unsigned_abs()))
                    };
                    self.flush_ops();
                    self.trace.push_set_loop_bound(trip.min(u32::MAX as u64) as u32);
                }
                let mut i = lo_v;
                loop {
                    let cont = if *step > 0 { i < hi_v } else { i > hi_v };
                    if !cont {
                        break;
                    }
                    self.vars[iv.0 as usize] = Val::int_untagged(i);
                    for st in body {
                        self.exec(st, mem)?;
                    }
                    self.ops += 2; // increment + branch
                    self.steps += 1;
                    self.check_limits()?;
                    i += *step;
                }
            }
            Stmt::While { cond, body } => loop {
                let c = self.eval(cond, mem)?;
                self.ops += 1; // branch
                if c.as_i64() == 0 {
                    break;
                }
                for st in body {
                    self.exec(st, mem)?;
                }
                self.steps += 1;
                self.check_limits()?;
            },
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, mem)?;
                self.ops += 1; // branch
                let branch = if c.as_i64() != 0 { then_body } else { else_body };
                for st in branch {
                    self.exec(st, mem)?;
                }
            }
        }
        Ok(())
    }

    fn eval(&mut self, e: &'a Expr, mem: &mut Memory) -> Result<Val, InterpError> {
        Ok(match e {
            Expr::I64(v) => Val::int_untagged(*v),
            Expr::F64(v) => Val {
                n: Num::F(*v),
                tag: None,
            },
            Expr::Var(v) => self.vars[v.0 as usize],
            Expr::ArrayBase(a) => {
                let base = self.base_of(*a)?;
                Val::int_untagged(base.0 as i64)
            }
            Expr::Load(r) => {
                let info = self.eval_ref(r, mem)?;
                self.maybe_emit_indirect(&info)?;
                self.flush_ops();
                let seq = self.trace.push_load(
                    info.addr,
                    info.elem.size() as u8,
                    info.ref_id,
                    self.hints.hint(info.ref_id),
                    info.dep,
                );
                let mut v = self.read_elem(mem, info.addr, info.elem);
                v.tag = Some(seq);
                v
            }
            Expr::Un(op, a) => {
                let v = self.eval(a, mem)?;
                self.ops += 1;
                match op {
                    UnOp::Neg => {
                        if v.is_float() {
                            Val {
                                n: Num::F(-v.as_f64()),
                                tag: v.tag,
                            }
                        } else {
                            Val {
                                n: Num::I(v.as_i64().wrapping_neg()),
                                tag: v.tag,
                            }
                        }
                    }
                    UnOp::Not => Val {
                        n: Num::I(i64::from(v.as_i64() == 0)),
                        tag: v.tag,
                    },
                }
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, mem)?;
                let y = self.eval(b, mem)?;
                self.ops += 1;
                let tag = merge_tag(x.tag, y.tag);
                let n = if x.is_float() || y.is_float() {
                    let (xf, yf) = (x.as_f64(), y.as_f64());
                    Num::F(match op {
                        BinOp::Add => xf + yf,
                        BinOp::Sub => xf - yf,
                        BinOp::Mul => xf * yf,
                        BinOp::Div => {
                            if yf == 0.0 {
                                0.0
                            } else {
                                xf / yf
                            }
                        }
                        BinOp::Rem => {
                            if yf == 0.0 {
                                0.0
                            } else {
                                xf % yf
                            }
                        }
                        BinOp::Min => xf.min(yf),
                        BinOp::Max => xf.max(yf),
                        // Bitwise ops coerce to integers.
                        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                            return Ok(Val {
                                n: Num::I(int_bin(*op, x.as_i64(), y.as_i64())),
                                tag,
                            })
                        }
                    })
                } else {
                    Num::I(int_bin(*op, x.as_i64(), y.as_i64()))
                };
                Val { n, tag }
            }
            Expr::Cmp(op, a, b) => {
                let x = self.eval(a, mem)?;
                let y = self.eval(b, mem)?;
                self.ops += 1;
                let tag = merge_tag(x.tag, y.tag);
                let r = if x.is_float() || y.is_float() {
                    let (xf, yf) = (x.as_f64(), y.as_f64());
                    match op {
                        CmpOp::Eq => xf == yf,
                        CmpOp::Ne => xf != yf,
                        CmpOp::Lt => xf < yf,
                        CmpOp::Le => xf <= yf,
                        CmpOp::Gt => xf > yf,
                        CmpOp::Ge => xf >= yf,
                    }
                } else {
                    let (xi, yi) = (x.as_i64(), y.as_i64());
                    match op {
                        CmpOp::Eq => xi == yi,
                        CmpOp::Ne => xi != yi,
                        CmpOp::Lt => xi < yi,
                        CmpOp::Le => xi <= yi,
                        CmpOp::Gt => xi > yi,
                        CmpOp::Ge => xi >= yi,
                    }
                };
                Val {
                    n: Num::I(i64::from(r)),
                    tag,
                }
            }
        })
    }

    fn base_of(&self, a: crate::program::ArrayId) -> Result<Addr, InterpError> {
        self.bases[a.0 as usize]
            .ok_or_else(|| InterpError::UnboundArray(self.prog.array(a).name.clone()))
    }

    fn eval_ref(&mut self, r: &'a MemRef, mem: &mut Memory) -> Result<RefInfo, InterpError> {
        Ok(match r {
            MemRef::Array {
                array,
                indices,
                ref_id,
            } => {
                let base = self.base_of(*array)?;
                let decl = self.prog.array(*array);
                let elem = decl.elem;
                let mut lin: i64 = 0;
                let mut dep = None;
                for (k, idx) in indices.iter().enumerate() {
                    let v = self.eval(idx, mem)?;
                    dep = merge_tag(dep, v.tag);
                    let extent = if k + 1 < indices.len() {
                        self.dims[array.0 as usize][k + 1] as i64
                    } else {
                        1
                    };
                    lin = lin.wrapping_add(v.as_i64()).wrapping_mul(extent.max(1));
                    self.ops += 2; // multiply-add address arithmetic
                }
                let addr = Addr(
                    (base.0 as i64).wrapping_add(lin.wrapping_mul(elem.size() as i64)) as u64,
                );
                RefInfo {
                    addr,
                    elem,
                    dep,
                    ref_id: *ref_id,
                }
            }
            MemRef::PtrIndex {
                base,
                elem,
                index,
                ref_id,
            } => {
                let b = self.eval(base, mem)?;
                let i = self.eval(index, mem)?;
                self.ops += 2;
                let addr = Addr(
                    (b.as_i64()).wrapping_add(i.as_i64().wrapping_mul(elem.size() as i64)) as u64,
                );
                RefInfo {
                    addr,
                    elem: *elem,
                    dep: merge_tag(b.tag, i.tag),
                    ref_id: *ref_id,
                }
            }
            MemRef::Field {
                base,
                strct,
                field,
                ref_id,
            } => {
                let b = self.eval(base, mem)?;
                self.ops += 1;
                let decl = self.prog.strct(*strct);
                let addr = Addr((b.as_i64()).wrapping_add(decl.offset_of(*field) as i64) as u64);
                RefInfo {
                    addr,
                    elem: decl.field_ty(*field),
                    dep: b.tag,
                    ref_id: *ref_id,
                }
            }
            MemRef::Deref {
                base,
                elem,
                offset,
                ref_id,
            } => {
                let b = self.eval(base, mem)?;
                self.ops += 1;
                let addr = Addr((b.as_i64()).wrapping_add(*offset) as u64);
                RefInfo {
                    addr,
                    elem: *elem,
                    dep: b.tag,
                    ref_id: *ref_id,
                }
            }
        })
    }

    fn maybe_emit_indirect(&mut self, info: &RefInfo) -> Result<(), InterpError> {
        let Some(spec) = self.hints.indirect(info.ref_id) else {
            return Ok(());
        };
        let blk = info.addr.block().0;
        let slot = &mut self.last_indirect_block[info.ref_id.0 as usize];
        if *slot == Some(blk) {
            return Ok(());
        }
        *slot = Some(blk);
        let target_base = self.base_of(spec.target)?;
        self.flush_ops();
        self.trace
            .push_indirect_prefetch(target_base, spec.elem_size, info.addr, info.ref_id);
        Ok(())
    }

    fn read_elem(&self, mem: &Memory, addr: Addr, elem: ElemTy) -> Val {
        let n = match elem {
            ElemTy::I8 => Num::I(mem.read_u8(addr) as i8 as i64),
            ElemTy::I16 => Num::I(mem.read_u16(addr) as i16 as i64),
            ElemTy::I32 => Num::I(mem.read_i32(addr) as i64),
            ElemTy::I64 => Num::I(mem.read_i64(addr)),
            ElemTy::F32 => Num::F(mem.read_f32(addr) as f64),
            ElemTy::F64 => Num::F(mem.read_f64(addr)),
            ElemTy::Ptr { .. } => Num::I(mem.read_u64(addr) as i64),
        };
        Val { n, tag: None }
    }

    fn write_elem(&self, mem: &mut Memory, addr: Addr, elem: ElemTy, v: Val) {
        match elem {
            ElemTy::I8 => mem.write_u8(addr, v.as_i64() as u8),
            ElemTy::I16 => mem.write_u16(addr, v.as_i64() as u16),
            ElemTy::I32 => mem.write_i32(addr, v.as_i64() as i32),
            ElemTy::I64 => mem.write_i64(addr, v.as_i64()),
            ElemTy::F32 => mem.write_f32(addr, v.as_f64() as f32),
            ElemTy::F64 => mem.write_f64(addr, v.as_f64()),
            ElemTy::Ptr { .. } => mem.write_u64(addr, v.as_i64() as u64),
        }
    }
}

fn int_bin(op: BinOp, x: i64, y: i64) -> i64 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                0
            } else {
                x.wrapping_div(y)
            }
        }
        BinOp::Rem => {
            if y == 0 {
                0
            } else {
                x.wrapping_rem(y)
            }
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::types::field;
    use crate::ProgramBuilder;
    use grp_cpu::TraceEvent;
    use grp_mem::HeapAllocator;

    fn run_with(
        prog: &Program,
        bind: &Bindings,
        hints: &HintMap,
        mem: &mut Memory,
    ) -> Trace {
        Interpreter::new(prog, bind, hints).run(mem).unwrap()
    }

    #[test]
    fn array_sum_reads_values_and_counts_loads() {
        let mut pb = ProgramBuilder::new("sum");
        let a = pb.array("a", ElemTy::I64, &[8]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            assign(s, c(0)),
            for_(
                i,
                c(0),
                c(8),
                1,
                vec![assign(s, add(var(s), load(arr(a, vec![var(i)]))))],
            ),
        ]);
        let mut mem = Memory::new();
        let mut heap = HeapAllocator::new(Addr(0x10000));
        let base = heap.alloc_array(8, 8);
        for k in 0..8 {
            mem.write_i64(base.offset(k * 8), k + 1);
        }
        let mut bind = prog.bindings();
        bind.bind_array(a, base);
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        assert_eq!(t.loads(), 8);
        assert_eq!(t.stores(), 0);
        // Addresses stride by 8 bytes.
        let addrs: Vec<u64> = t
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        assert_eq!(addrs[1] - addrs[0], 8);
    }

    #[test]
    fn two_dimensional_row_major_layout() {
        let mut pb = ProgramBuilder::new("2d");
        let a = pb.array("a", ElemTy::F64, &[4, 8]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        // a(i, j): row-major; j is spatial.
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(2),
            1,
            vec![for_(
                j,
                c(0),
                c(3),
                1,
                vec![assign(s, load(arr(a, vec![var(i), var(j)])))],
            )],
        )]);
        let mut mem = Memory::new();
        let base = Addr(0x20000);
        let mut bind = prog.bindings();
        bind.bind_array(a, base);
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        let addrs: Vec<u64> = t
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Load { addr, .. } => Some(addr.0),
                _ => None,
            })
            .collect();
        // Row 0: base, base+8, base+16; row 1 starts at base + 8*8.
        assert_eq!(addrs[0], base.0);
        assert_eq!(addrs[1], base.0 + 8);
        assert_eq!(addrs[3], base.0 + 8 * 8);
    }

    #[test]
    fn linked_list_traversal_follows_planted_pointers_with_deps() {
        let mut pb = ProgramBuilder::new("list");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "node",
            vec![
                field("next", ElemTy::ptr_to(sid)),
                field("v", ElemTy::I64),
            ],
        );
        let p = pb.var("p");
        let s = pb.var("s");
        let next = crate::types::FieldId(0);
        let vfld = crate::types::FieldId(1);
        let prog = pb.finish(vec![while_(
            ne(var(p), c(0)),
            vec![
                assign(s, add(var(s), load(fld(var(p), node, vfld)))),
                assign(p, load(fld(var(p), node, next))),
            ],
        )]);
        // Build 4 nodes.
        let mut mem = Memory::new();
        let mut heap = HeapAllocator::new(Addr(0x40000));
        let mut nodes = Vec::new();
        for k in 0..4 {
            let n = heap.alloc(16, 8);
            mem.write_i64(n.offset(8), 10 + k);
            nodes.push(n);
        }
        for w in 0..3 {
            mem.write_u64(nodes[w], nodes[w + 1].0);
        }
        mem.write_u64(nodes[3], 0);
        let mut bind = prog.bindings();
        bind.bind_var(p, nodes[0].0 as i64);
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        assert_eq!(t.loads(), 8, "4 value loads + 4 next loads");
        // Every load after the first pair depends on the previous `next` load.
        let deps: Vec<Option<u64>> = t
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Load { dep, .. } => Some(*dep),
                _ => None,
            })
            .collect();
        assert_eq!(deps[0], None, "first value load: head pointer from setup");
        assert_eq!(deps[2], Some(1), "second node's loads depend on first next-load");
        assert_eq!(deps[7], Some(5));
    }

    #[test]
    fn stores_write_through_and_are_traced() {
        let mut pb = ProgramBuilder::new("fill");
        let a = pb.array("a", ElemTy::I32, &[16]);
        let i = pb.var("i");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(16),
            1,
            vec![store(arr(a, vec![var(i)]), mul(var(i), c(3)))],
        )]);
        let mut mem = Memory::new();
        let base = Addr(0x30000);
        let mut bind = prog.bindings();
        bind.bind_array(a, base);
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        assert_eq!(t.stores(), 16);
        assert_eq!(mem.read_i32(base.offset(4 * 5)), 15);
    }

    #[test]
    fn loop_bound_pseudo_instruction_emitted_when_marked() {
        let mut pb = ProgramBuilder::new("vb");
        let a = pb.array("a", ElemTy::F64, &[32]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(32),
            1,
            vec![assign(s, load(arr(a, vec![var(i)])))],
        )]);
        let mut hints = HintMap::sized(prog.num_refs, prog.num_loops);
        hints.mark_loop_bound(crate::program::LoopId(0));
        let mut mem = Memory::new();
        let mut bind = prog.bindings();
        bind.bind_array(a, Addr(0x50000));
        let t = run_with(&prog, &bind, &hints, &mut mem);
        assert_eq!(
            t.events()
                .iter()
                .filter(|e| matches!(e, TraceEvent::SetLoopBound(32)))
                .count(),
            1
        );
    }

    #[test]
    fn indirect_prefetch_emitted_once_per_index_block() {
        let mut pb = ProgramBuilder::new("ind");
        let a = pb.array("a", ElemTy::F64, &[1024]);
        let b = pb.array("b", ElemTy::I32, &[64]);
        let i = pb.var("i");
        let s = pb.var("s");
        // s += a[b[i]]
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(64),
            1,
            vec![assign(
                s,
                add(var(s), load(arr(a, vec![load(arr(b, vec![var(i)]))]))),
            )],
        )]);
        // b's load is RefId(0) (inner-first numbering).
        let mut hints = HintMap::sized(prog.num_refs, prog.num_loops);
        hints.set_indirect(
            RefId(0),
            crate::hintmap::IndirectSpec {
                target: a,
                elem_size: 8,
            },
        );
        let mut mem = Memory::new();
        let a_base = Addr(0x60000);
        let b_base = Addr(0x70000);
        for k in 0..64 {
            mem.write_i32(b_base.offset(k * 4), (k * 7 % 1024) as i32);
        }
        let mut bind = prog.bindings();
        bind.bind_array(a, a_base);
        bind.bind_array(b, b_base);
        let t = run_with(&prog, &bind, &hints, &mut mem);
        let ind: Vec<_> = t
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::IndirectPrefetch { .. }))
            .collect();
        // 64 i32 indices span 4 blocks → 4 indirect-prefetch instructions.
        assert_eq!(ind.len(), 4);
        if let TraceEvent::IndirectPrefetch {
            base, elem_size, ..
        } = ind[0]
        {
            assert_eq!(*base, a_base);
            assert_eq!(*elem_size, 8);
        }
        // And the data loads depend on the index loads.
        let dep_count = t
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Load { dep: Some(_), .. }))
            .count();
        assert_eq!(dep_count, 64, "every a[b[i]] load depends on its index load");
    }

    #[test]
    fn induction_pointer_deref() {
        let mut pb = ProgramBuilder::new("ptr");
        let p = pb.var("p");
        let e = pb.var("e");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            lt(var(p), var(e)),
            vec![
                assign(s, add(var(s), load(deref(var(p), ElemTy::F64, 0)))),
                assign(p, add(var(p), c(16))),
            ],
        )]);
        let mut mem = Memory::new();
        let base = 0x80000i64;
        for k in 0..8 {
            mem.write_f64(Addr((base + 16 * k) as u64), k as f64);
        }
        let mut bind = prog.bindings();
        bind.bind_var(p, base);
        bind.bind_var(e, base + 16 * 8);
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        assert_eq!(t.loads(), 8);
    }

    #[test]
    fn if_branches_and_comparisons() {
        let mut pb = ProgramBuilder::new("if");
        let x = pb.var("x");
        let y = pb.var("y");
        let prog = pb.finish(vec![
            assign(x, c(5)),
            if_(
                gt(var(x), c(3)),
                vec![assign(y, c(1))],
                vec![assign(y, c(2))],
            ),
        ]);
        let mut mem = Memory::new();
        let bind = prog.bindings();
        // No memory refs; just checking it runs and counts compute.
        let t = run_with(&prog, &bind, &HintMap::empty(), &mut mem);
        assert_eq!(t.loads(), 0);
        assert!(t.instructions() > 0);
    }

    #[test]
    fn work_statements_add_compute_without_memory_events() {
        let mut pb = ProgramBuilder::new("w");
        let a = pb.array("a", ElemTy::I64, &[2]);
        let s = pb.var("s");
        let plain = pb.finish(vec![assign(s, load(arr(a, vec![c(0)])))]);
        let mut pb2 = ProgramBuilder::new("w2");
        let a2 = pb2.array("a", ElemTy::I64, &[2]);
        let s2 = pb2.var("s");
        let worked = pb2.finish(vec![
            work(100),
            assign(s2, load(arr(a2, vec![c(0)]))),
        ]);
        let mut mem = Memory::new();
        let mut b1 = plain.bindings();
        b1.bind_array(a, Addr(0x1000));
        let t1 = run_with(&plain, &b1, &HintMap::empty(), &mut mem);
        let mut b2 = worked.bindings();
        b2.bind_array(a2, Addr(0x1000));
        let t2 = run_with(&worked, &b2, &HintMap::empty(), &mut mem);
        assert_eq!(t1.loads(), t2.loads());
        assert_eq!(t2.instructions(), t1.instructions() + 100);
    }

    #[test]
    fn event_limit_guards_runaway_loops() {
        let mut pb = ProgramBuilder::new("spin");
        let a = pb.array("a", ElemTy::I64, &[1]);
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            c(1),
            vec![assign(s, load(arr(a, vec![c(0)])))],
        )]);
        let mut mem = Memory::new();
        let mut bind = prog.bindings();
        bind.bind_array(a, Addr(0x1000));
        let err = Interpreter::new(&prog, &bind, &HintMap::empty())
            .with_max_events(1000)
            .run(&mut mem)
            .unwrap_err();
        assert_eq!(err, InterpError::EventLimit(1000));
    }

    #[test]
    fn unbound_array_errors() {
        let mut pb = ProgramBuilder::new("ub");
        let a = pb.array("a", ElemTy::I64, &[1]);
        let s = pb.var("s");
        let prog = pb.finish(vec![assign(s, load(arr(a, vec![c(0)])))]);
        let mut mem = Memory::new();
        let bind = prog.bindings();
        let err = Interpreter::new(&prog, &bind, &HintMap::empty())
            .run(&mut mem)
            .unwrap_err();
        assert_eq!(err, InterpError::UnboundArray("a".into()));
    }

    #[test]
    fn hints_are_attached_to_trace_loads() {
        let mut pb = ProgramBuilder::new("h");
        let a = pb.array("a", ElemTy::F64, &[4]);
        let s = pb.var("s");
        let i = pb.var("i");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(4),
            1,
            vec![assign(s, load(arr(a, vec![var(i)])))],
        )]);
        let mut hints = HintMap::sized(prog.num_refs, prog.num_loops);
        hints.add_spatial(RefId(0));
        let mut mem = Memory::new();
        let mut bind = prog.bindings();
        bind.bind_array(a, Addr(0x9000));
        let t = run_with(&prog, &bind, &hints, &mut mem);
        for e in t.events() {
            if let TraceEvent::Load { hints: h, .. } = e {
                assert!(h.spatial());
            }
        }
    }
}

//! Program construction: [`ProgramBuilder`] plus a compact expression
//! DSL.
//!
//! Reference sites ([`grp_cpu::RefId`]) and loops ([`LoopId`]) are
//! numbered by [`ProgramBuilder::finish`] in a deterministic pre-order
//! walk, so workload authors never manage ids by hand and the compiler's
//! per-site hint tables line up with the interpreter's trace events.

use grp_cpu::RefId;

use crate::program::{
    ArrayDecl, ArrayId, BinOp, CmpOp, Dim, Expr, LoopId, MemRef, Program, Stmt, UnOp, VarId,
    UNASSIGNED,
};
use crate::types::{ElemTy, Field, StructDecl, StructId};

/// Incremental builder for a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    structs: Vec<StructDecl>,
    arrays: Vec<ArrayDecl>,
    var_names: Vec<String>,
}

impl ProgramBuilder {
    /// Starts a program named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The id the *next* struct declaration will receive — lets a
    /// structure's fields point to the structure itself (`struct t *next`).
    pub fn peek_struct_id(&self) -> StructId {
        StructId(self.structs.len() as u32)
    }

    /// Declares a structure.
    pub fn add_struct(&mut self, name: impl Into<String>, fields: Vec<Field>) -> StructId {
        let id = self.peek_struct_id();
        self.structs.push(StructDecl::new(name, fields));
        id
    }

    /// Declares a statically-sized global array.
    pub fn array(&mut self, name: impl Into<String>, elem: ElemTy, dims: &[u64]) -> ArrayId {
        self.array_decl(ArrayDecl {
            name: name.into(),
            elem,
            dims: dims.iter().map(|d| Dim::Const(*d)).collect(),
            heap: false,
        })
    }

    /// Declares a statically-sized heap array (`malloc`ed; participates in
    /// the §4.5 heap-array-of-pointers rule).
    pub fn heap_array(&mut self, name: impl Into<String>, elem: ElemTy, dims: &[u64]) -> ArrayId {
        self.array_decl(ArrayDecl {
            name: name.into(),
            elem,
            dims: dims.iter().map(|d| Dim::Const(*d)).collect(),
            heap: true,
        })
    }

    /// Declares an array with symbolic (runtime-bound) dimensions.
    pub fn sym_array(
        &mut self,
        name: impl Into<String>,
        elem: ElemTy,
        ndims: usize,
        heap: bool,
    ) -> ArrayId {
        self.array_decl(ArrayDecl {
            name: name.into(),
            elem,
            dims: vec![Dim::Sym; ndims],
            heap,
        })
    }

    /// Declares an array from a full declaration.
    pub fn array_decl(&mut self, decl: ArrayDecl) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(decl);
        id
    }

    /// Declares a scalar variable.
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.into());
        id
    }

    /// Finalizes the program, assigning [`RefId`]s and [`LoopId`]s in
    /// pre-order.
    pub fn finish(self, mut body: Vec<Stmt>) -> Program {
        let mut next_ref = 0u32;
        let mut next_loop = 0u32;
        for s in &mut body {
            number_stmt(s, &mut next_ref, &mut next_loop);
        }
        Program {
            name: self.name,
            structs: self.structs,
            arrays: self.arrays,
            var_names: self.var_names,
            body,
            num_refs: next_ref,
            num_loops: next_loop,
        }
    }
}

fn number_stmt(s: &mut Stmt, next_ref: &mut u32, next_loop: &mut u32) {
    match s {
        Stmt::Assign(_, e) => number_expr(e, next_ref),
        Stmt::Work(_) => {}
        Stmt::Store(r, e) => {
            number_ref(r, next_ref);
            number_expr(e, next_ref);
        }
        Stmt::For {
            id, lo, hi, body, ..
        } => {
            debug_assert_eq!(id.0, UNASSIGNED, "loop already numbered");
            *id = LoopId(*next_loop);
            *next_loop += 1;
            number_expr(lo, next_ref);
            number_expr(hi, next_ref);
            for s in body {
                number_stmt(s, next_ref, next_loop);
            }
        }
        Stmt::While { cond, body } => {
            number_expr(cond, next_ref);
            for s in body {
                number_stmt(s, next_ref, next_loop);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            number_expr(cond, next_ref);
            for s in then_body.iter_mut().chain(else_body.iter_mut()) {
                number_stmt(s, next_ref, next_loop);
            }
        }
    }
}

fn number_expr(e: &mut Expr, next_ref: &mut u32) {
    match e {
        Expr::I64(_) | Expr::F64(_) | Expr::Var(_) | Expr::ArrayBase(_) => {}
        Expr::Load(r) => number_ref(r, next_ref),
        Expr::Un(_, a) => number_expr(a, next_ref),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            number_expr(a, next_ref);
            number_expr(b, next_ref);
        }
    }
}

fn number_ref(r: &mut MemRef, next_ref: &mut u32) {
    // Number sub-expressions first so an index load (e.g. `b[i]` inside
    // `a[b[i]]`) receives a smaller RefId than its enclosing reference.
    match r {
        MemRef::Array { indices, .. } => {
            for e in indices {
                number_expr(e, next_ref);
            }
        }
        MemRef::PtrIndex { base, index, .. } => {
            number_expr(base, next_ref);
            number_expr(index, next_ref);
        }
        MemRef::Field { base, .. } | MemRef::Deref { base, .. } => {
            number_expr(base, next_ref);
        }
    }
    debug_assert_eq!(r.ref_id().0, UNASSIGNED, "reference already numbered");
    *r.ref_id_mut() = RefId(*next_ref);
    *next_ref += 1;
}

// ---------------------------------------------------------------------
// Expression DSL
// ---------------------------------------------------------------------

/// Integer constant.
pub fn c(v: i64) -> Expr {
    Expr::I64(v)
}

/// Float constant.
pub fn f(v: f64) -> Expr {
    Expr::F64(v)
}

/// Variable read.
pub fn var(v: VarId) -> Expr {
    Expr::Var(v)
}

/// Load through a reference.
pub fn load(r: MemRef) -> Expr {
    Expr::Load(r)
}

/// `&a[0]` as an integer value.
pub fn array_base(a: ArrayId) -> Expr {
    Expr::ArrayBase(a)
}

/// Array reference `a(i, j, …)`.
pub fn arr(a: ArrayId, indices: Vec<Expr>) -> MemRef {
    MemRef::Array {
        array: a,
        indices,
        ref_id: RefId(UNASSIGNED),
    }
}

/// Pointer-indexed reference `base[index]`.
pub fn ptr_index(base: Expr, elem: ElemTy, index: Expr) -> MemRef {
    MemRef::PtrIndex {
        base: Box::new(base),
        elem,
        index: Box::new(index),
        ref_id: RefId(UNASSIGNED),
    }
}

/// Field access `base->field`.
pub fn fld(base: Expr, strct: StructId, field: crate::types::FieldId) -> MemRef {
    MemRef::Field {
        base: Box::new(base),
        strct,
        field,
        ref_id: RefId(UNASSIGNED),
    }
}

/// Raw dereference `*(elem*)(base + offset)`.
pub fn deref(base: Expr, elem: ElemTy, offset: i64) -> MemRef {
    MemRef::Deref {
        base: Box::new(base),
        elem,
        offset,
        ref_id: RefId(UNASSIGNED),
    }
}

macro_rules! binop_fns {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(a: Expr, b: Expr) -> Expr {
                Expr::Bin(BinOp::$op, Box::new(a), Box::new(b))
            }
        )*
    };
}

binop_fns! {
    /// `a + b`.
    add => Add,
    /// `a - b`.
    sub => Sub,
    /// `a * b`.
    mul => Mul,
    /// `a / b` (integer division truncates; by zero yields 0).
    div_ => Div,
    /// `a % b` (by zero yields 0).
    rem => Rem,
    /// `a & b`.
    and_ => And,
    /// `a | b`.
    or_ => Or,
    /// `a ^ b`.
    xor_ => Xor,
    /// `a << b`.
    shl => Shl,
    /// `a >> b` (arithmetic).
    shr => Shr,
    /// `min(a, b)`.
    min_ => Min,
    /// `max(a, b)`.
    max_ => Max,
}

/// `-a`.
pub fn neg(a: Expr) -> Expr {
    Expr::Un(UnOp::Neg, Box::new(a))
}

/// `!a` (logical).
pub fn not_(a: Expr) -> Expr {
    Expr::Un(UnOp::Not, Box::new(a))
}

macro_rules! cmp_fns {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(a: Expr, b: Expr) -> Expr {
                Expr::Cmp(CmpOp::$op, Box::new(a), Box::new(b))
            }
        )*
    };
}

cmp_fns! {
    /// `a == b`.
    eq => Eq,
    /// `a != b`.
    ne => Ne,
    /// `a < b`.
    lt => Lt,
    /// `a <= b`.
    le => Le,
    /// `a > b`.
    gt => Gt,
    /// `a >= b`.
    ge => Ge,
}

/// `v = e`.
pub fn assign(v: VarId, e: Expr) -> Stmt {
    Stmt::Assign(v, e)
}

/// `*r = e`.
pub fn store(r: MemRef, e: Expr) -> Stmt {
    Stmt::Store(r, e)
}

/// `for (iv = lo; iv < hi; iv += step)` (`>` for negative step).
pub fn for_(iv: VarId, lo: Expr, hi: Expr, step: i64, body: Vec<Stmt>) -> Stmt {
    assert!(step != 0, "loop step must be nonzero");
    Stmt::For {
        id: LoopId(UNASSIGNED),
        iv,
        lo,
        hi,
        step,
        body,
    }
}

/// `n` units of abstract computation.
pub fn work(n: u32) -> Stmt {
    Stmt::Work(n)
}

/// `while (cond)`.
pub fn while_(cond: Expr, body: Vec<Stmt>) -> Stmt {
    Stmt::While { cond, body }
}

/// `if (cond) { then } else { els }`.
pub fn if_(cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt>) -> Stmt {
    Stmt::If {
        cond,
        then_body,
        else_body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::field;

    #[test]
    fn finish_numbers_refs_in_preorder() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[16]);
        let b = pb.array("b", ElemTy::I32, &[16]);
        let i = pb.var("i");
        let s = pb.var("s");
        // s += a[b[i]] — b's load must get the smaller RefId.
        let body = vec![for_(
            i,
            c(0),
            c(16),
            1,
            vec![assign(
                s,
                add(
                    var(s),
                    load(arr(a, vec![load(arr(b, vec![var(i)]))])),
                ),
            )],
        )];
        let p = pb.finish(body);
        assert_eq!(p.num_refs, 2);
        assert_eq!(p.num_loops, 1);
        // Walk to verify: inner (b) is RefId 0, outer (a) is RefId 1.
        if let Stmt::For { body, id, .. } = &p.body[0] {
            assert_eq!(*id, LoopId(0));
            if let Stmt::Assign(_, Expr::Bin(_, _, rhs)) = &body[0] {
                if let Expr::Load(MemRef::Array { ref_id, indices, .. }) = rhs.as_ref() {
                    assert_eq!(*ref_id, RefId(1));
                    if let Expr::Load(inner) = &indices[0] {
                        assert_eq!(inner.ref_id(), RefId(0));
                    } else {
                        panic!("inner load missing");
                    }
                } else {
                    panic!("outer load missing");
                }
            } else {
                panic!("assign shape unexpected");
            }
        } else {
            panic!("for missing");
        }
    }

    #[test]
    fn struct_self_reference_via_peek() {
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let got = pb.add_struct(
            "node",
            vec![field("next", ElemTy::ptr_to(sid)), field("v", ElemTy::F64)],
        );
        assert_eq!(sid, got);
        let p = pb.finish(vec![]);
        assert_eq!(p.strct(sid).recursive_fields(sid).len(), 1);
    }

    #[test]
    fn declarations_accumulate() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4, 4]);
        let h = pb.heap_array("h", ElemTy::ptr(), &[4]);
        let s = pb.sym_array("s", ElemTy::I32, 1, true);
        let v = pb.var("v");
        let p = pb.finish(vec![assign(v, c(0))]);
        assert_eq!(a, ArrayId(0));
        assert_eq!(h, ArrayId(1));
        assert_eq!(s, ArrayId(2));
        assert!(!p.array(a).heap);
        assert!(p.array(h).heap);
        assert_eq!(p.array(s).dims, vec![Dim::Sym]);
        assert_eq!(p.num_vars(), 1);
    }

    #[test]
    fn loops_number_nested() {
        let mut pb = ProgramBuilder::new("t");
        let i = pb.var("i");
        let j = pb.var("j");
        let body = vec![for_(
            i,
            c(0),
            c(2),
            1,
            vec![for_(j, c(0), c(2), 1, vec![])],
        )];
        let p = pb.finish(body);
        assert_eq!(p.num_loops, 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_step_rejected() {
        let _ = for_(VarId(0), c(0), c(1), 0, vec![]);
    }
}

//! Element and structure types.
//!
//! The analyses distinguish only what the paper's do: element sizes (for
//! stride/coefficient computation, §4.4), whether a field is a pointer
//! (pointer/recursive hints, §4.5), and whether a pointer points to a
//! structure of the same type (the recursive idiom of Figure 6).

/// Identifier of a structure declaration within a [`crate::Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StructId(pub u32);

/// Identifier of a field within its structure (declaration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u32);

/// Scalar/element type of a memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// 1-byte integer.
    I8,
    /// 2-byte integer.
    I16,
    /// 4-byte integer (the paper's assumed index-array element, §3.3.3).
    I32,
    /// 8-byte integer.
    I64,
    /// 4-byte float.
    F32,
    /// 8-byte float.
    F64,
    /// An 8-byte pointer. `points_to_struct` is `Some` when the static
    /// type names the pointee structure (needed by the recursive-pointer
    /// idiom test).
    Ptr {
        /// Statically-known pointee structure, if any.
        points_to_struct: Option<StructId>,
    },
}

impl ElemTy {
    /// A pointer with no statically-known structure pointee.
    pub const fn ptr() -> Self {
        ElemTy::Ptr {
            points_to_struct: None,
        }
    }

    /// A pointer to structure `s`.
    pub const fn ptr_to(s: StructId) -> Self {
        ElemTy::Ptr {
            points_to_struct: Some(s),
        }
    }

    /// Size in bytes.
    pub const fn size(self) -> u64 {
        match self {
            ElemTy::I8 => 1,
            ElemTy::I16 => 2,
            ElemTy::I32 => 4,
            ElemTy::I64 => 8,
            ElemTy::F32 => 4,
            ElemTy::F64 => 8,
            ElemTy::Ptr { .. } => 8,
        }
    }

    /// True for any pointer type.
    pub const fn is_pointer(self) -> bool {
        matches!(self, ElemTy::Ptr { .. })
    }

    /// True for floating-point types (loads produce float values).
    pub const fn is_float(self) -> bool {
        matches!(self, ElemTy::F32 | ElemTy::F64)
    }
}

/// One field of a structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Field name (diagnostics only).
    pub name: String,
    /// Field type.
    pub ty: ElemTy,
}

/// A structure declaration. Field offsets follow C layout rules with
/// natural alignment; the total size is padded to the widest alignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Structure name (diagnostics only).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
}

impl StructDecl {
    /// Creates a declaration.
    pub fn new(name: impl Into<String>, fields: Vec<Field>) -> Self {
        Self {
            name: name.into(),
            fields,
        }
    }

    /// Byte offset of field `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn offset_of(&self, f: FieldId) -> u64 {
        let mut off = 0u64;
        for (i, field) in self.fields.iter().enumerate() {
            let sz = field.ty.size();
            off = (off + sz - 1) & !(sz - 1); // natural alignment
            if i as u32 == f.0 {
                return off;
            }
            off += sz;
        }
        panic!("field {f:?} out of range for struct {}", self.name)
    }

    /// Total size including trailing padding.
    pub fn size(&self) -> u64 {
        let mut off = 0u64;
        let mut max_align = 1u64;
        for field in &self.fields {
            let sz = field.ty.size();
            max_align = max_align.max(sz);
            off = (off + sz - 1) & !(sz - 1);
            off += sz;
        }
        (off + max_align - 1) & !(max_align - 1)
    }

    /// The type of field `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is out of range.
    pub fn field_ty(&self, f: FieldId) -> ElemTy {
        self.fields[f.0 as usize].ty
    }

    /// Looks a field up by name.
    pub fn field_by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|fl| fl.name == name)
            .map(|i| FieldId(i as u32))
    }

    /// True when any field is a pointer — the §4.5 precondition for the
    /// `pointer` hint ("a structure that contains one or more other
    /// pointers").
    pub fn has_pointer_field(&self) -> bool {
        self.fields.iter().any(|f| f.ty.is_pointer())
    }

    /// Fields that are pointers to this same structure type — the
    /// recursive idiom (`a = a->next`, Figure 6).
    pub fn recursive_fields(&self, self_id: StructId) -> Vec<FieldId> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f.ty, ElemTy::Ptr { points_to_struct: Some(s) } if s == self_id))
            .map(|(i, _)| FieldId(i as u32))
            .collect()
    }
}

/// Convenience constructor for a [`Field`].
pub fn field(name: impl Into<String>, ty: ElemTy) -> Field {
    Field {
        name: name.into(),
        ty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(ElemTy::I8.size(), 1);
        assert_eq!(ElemTy::I16.size(), 2);
        assert_eq!(ElemTy::I32.size(), 4);
        assert_eq!(ElemTy::I64.size(), 8);
        assert_eq!(ElemTy::F32.size(), 4);
        assert_eq!(ElemTy::F64.size(), 8);
        assert_eq!(ElemTy::ptr().size(), 8);
        assert!(ElemTy::ptr().is_pointer());
        assert!(ElemTy::F64.is_float());
        assert!(!ElemTy::I64.is_float());
    }

    fn list_node() -> StructDecl {
        // struct t { int key; struct t *next; double val; }
        StructDecl::new(
            "t",
            vec![
                field("key", ElemTy::I32),
                field("next", ElemTy::ptr_to(StructId(0))),
                field("val", ElemTy::F64),
            ],
        )
    }

    #[test]
    fn struct_layout_follows_natural_alignment() {
        let s = list_node();
        assert_eq!(s.offset_of(FieldId(0)), 0);
        assert_eq!(s.offset_of(FieldId(1)), 8, "pointer aligned to 8");
        assert_eq!(s.offset_of(FieldId(2)), 16);
        assert_eq!(s.size(), 24);
    }

    #[test]
    fn struct_size_pads_to_max_alignment() {
        let s = StructDecl::new(
            "odd",
            vec![field("a", ElemTy::I64), field("b", ElemTy::I8)],
        );
        assert_eq!(s.size(), 16);
    }

    #[test]
    fn field_lookup_and_types() {
        let s = list_node();
        assert_eq!(s.field_by_name("next"), Some(FieldId(1)));
        assert_eq!(s.field_by_name("nope"), None);
        assert!(s.field_ty(FieldId(1)).is_pointer());
        assert!(s.has_pointer_field());
    }

    #[test]
    fn recursive_fields_detect_self_pointers() {
        let s = list_node();
        assert_eq!(s.recursive_fields(StructId(0)), vec![FieldId(1)]);
        assert!(s.recursive_fields(StructId(1)).is_empty());
        let plain = StructDecl::new("p", vec![field("x", ElemTy::F64)]);
        assert!(!plain.has_pointer_field());
        assert!(plain.recursive_fields(StructId(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_of_bad_field_panics() {
        list_node().offset_of(FieldId(9));
    }
}

//! Exhaustive operator-semantics tests for the interpreter: every
//! `BinOp`/`UnOp`/`CmpOp` on integer and float paths, checked by storing
//! results into memory.

use grp_ir::build::*;
use grp_ir::interp::Interpreter;
use grp_ir::{ElemTy, HintMap, ProgramBuilder};
use grp_mem::{Addr, Memory};

/// Evaluates an integer expression by storing it to a[0].
fn eval_i64(e: grp_ir::Expr) -> i64 {
    let mut pb = ProgramBuilder::new("eval");
    let a = pb.array("a", ElemTy::I64, &[1]);
    let prog = pb.finish(vec![store(arr(a, vec![c(0)]), e)]);
    let mut mem = Memory::new();
    let mut bind = prog.bindings();
    bind.bind_array(a, Addr(0x1000));
    Interpreter::new(&prog, &bind, &HintMap::empty())
        .run(&mut mem)
        .expect("runs");
    mem.read_i64(Addr(0x1000))
}

/// Evaluates a float expression by storing it to a[0].
fn eval_f64(e: grp_ir::Expr) -> f64 {
    let mut pb = ProgramBuilder::new("eval");
    let a = pb.array("a", ElemTy::F64, &[1]);
    let prog = pb.finish(vec![store(arr(a, vec![c(0)]), e)]);
    let mut mem = Memory::new();
    let mut bind = prog.bindings();
    bind.bind_array(a, Addr(0x1000));
    Interpreter::new(&prog, &bind, &HintMap::empty())
        .run(&mut mem)
        .expect("runs");
    mem.read_f64(Addr(0x1000))
}

#[test]
fn integer_arithmetic() {
    assert_eq!(eval_i64(add(c(2), c(3))), 5);
    assert_eq!(eval_i64(sub(c(2), c(3))), -1);
    assert_eq!(eval_i64(mul(c(-4), c(3))), -12);
    assert_eq!(eval_i64(div_(c(7), c(2))), 3);
    assert_eq!(eval_i64(div_(c(7), c(0))), 0, "division by zero yields 0");
    assert_eq!(eval_i64(rem(c(7), c(4))), 3);
    assert_eq!(eval_i64(rem(c(7), c(0))), 0);
    assert_eq!(eval_i64(min_(c(3), c(-5))), -5);
    assert_eq!(eval_i64(max_(c(3), c(-5))), 3);
    assert_eq!(eval_i64(neg(c(9))), -9);
}

#[test]
fn integer_bitwise() {
    assert_eq!(eval_i64(and_(c(0b1100), c(0b1010))), 0b1000);
    assert_eq!(eval_i64(or_(c(0b1100), c(0b1010))), 0b1110);
    assert_eq!(eval_i64(xor_(c(0b1100), c(0b1010))), 0b0110);
    assert_eq!(eval_i64(shl(c(3), c(4))), 48);
    assert_eq!(eval_i64(shr(c(-16), c(2))), -4, "arithmetic shift");
    assert_eq!(eval_i64(not_(c(0))), 1);
    assert_eq!(eval_i64(not_(c(7))), 0);
}

#[test]
fn integer_comparisons() {
    assert_eq!(eval_i64(eq(c(3), c(3))), 1);
    assert_eq!(eval_i64(ne(c(3), c(3))), 0);
    assert_eq!(eval_i64(lt(c(2), c(3))), 1);
    assert_eq!(eval_i64(le(c(3), c(3))), 1);
    assert_eq!(eval_i64(gt(c(2), c(3))), 0);
    assert_eq!(eval_i64(ge(c(2), c(3))), 0);
}

#[test]
fn float_arithmetic_and_coercion() {
    assert_eq!(eval_f64(add(f(1.5), f(2.25))), 3.75);
    assert_eq!(eval_f64(mul(f(1.5), c(4))), 6.0, "mixed int/float coerces");
    assert_eq!(eval_f64(div_(f(1.0), f(0.0))), 0.0, "guarded float division");
    assert_eq!(eval_f64(min_(f(1.5), f(-2.0))), -2.0);
    assert_eq!(eval_f64(max_(f(1.5), f(-2.0))), 1.5);
    assert_eq!(eval_f64(neg(f(2.5))), -2.5);
}

#[test]
fn float_comparisons() {
    assert_eq!(eval_i64(lt(f(1.0), f(2.0))), 1);
    assert_eq!(eval_i64(ge(f(1.0), f(2.0))), 0);
    assert_eq!(eval_i64(eq(f(2.0), c(2))), 1, "mixed compare coerces");
}

#[test]
fn element_width_conversions_round_trip() {
    // Store through every element width and read back sign-correctly.
    let mut pb = ProgramBuilder::new("widths");
    let a8 = pb.array("a8", ElemTy::I8, &[1]);
    let a16 = pb.array("a16", ElemTy::I16, &[1]);
    let a32 = pb.array("a32", ElemTy::I32, &[1]);
    let f32a = pb.array("f32a", ElemTy::F32, &[1]);
    let out = pb.array("out", ElemTy::I64, &[4]);
    let prog = pb.finish(vec![
        store(arr(a8, vec![c(0)]), c(-2)),
        store(arr(a16, vec![c(0)]), c(-300)),
        store(arr(a32, vec![c(0)]), c(-70000)),
        store(arr(f32a, vec![c(0)]), f(2.5)),
        store(arr(out, vec![c(0)]), load(arr(a8, vec![c(0)]))),
        store(arr(out, vec![c(1)]), load(arr(a16, vec![c(0)]))),
        store(arr(out, vec![c(2)]), load(arr(a32, vec![c(0)]))),
        store(arr(out, vec![c(3)]), load(arr(f32a, vec![c(0)]))),
    ]);
    let mut mem = Memory::new();
    let mut bind = prog.bindings();
    bind.bind_array(a8, Addr(0x1000));
    bind.bind_array(a16, Addr(0x1100));
    bind.bind_array(a32, Addr(0x1200));
    bind.bind_array(f32a, Addr(0x1300));
    bind.bind_array(out, Addr(0x2000));
    Interpreter::new(&prog, &bind, &HintMap::empty())
        .run(&mut mem)
        .expect("runs");
    assert_eq!(mem.read_i64(Addr(0x2000)), -2, "i8 sign-extends");
    assert_eq!(mem.read_i64(Addr(0x2008)), -300, "i16 sign-extends");
    assert_eq!(mem.read_i64(Addr(0x2010)), -70000, "i32 sign-extends");
    assert_eq!(mem.read_i64(Addr(0x2018)), 2, "f32 truncates to int store");
}

#[test]
fn negative_step_loops_count_down() {
    let mut pb = ProgramBuilder::new("down");
    let a = pb.array("a", ElemTy::I64, &[8]);
    let i = pb.var("i");
    let prog = pb.finish(vec![for_(
        i,
        c(7),
        c(-1),
        -1,
        vec![store(arr(a, vec![var(i)]), var(i))],
    )]);
    let mut mem = Memory::new();
    let mut bind = prog.bindings();
    bind.bind_array(a, Addr(0x1000));
    let t = Interpreter::new(&prog, &bind, &HintMap::empty())
        .run(&mut mem)
        .expect("runs");
    assert_eq!(t.stores(), 8);
    assert_eq!(mem.read_i64(Addr(0x1000)), 0);
    assert_eq!(mem.read_i64(Addr(0x1038)), 7);
}

#[test]
fn array_base_matches_binding() {
    let mut pb = ProgramBuilder::new("base");
    let a = pb.array("a", ElemTy::I64, &[4]);
    let out = pb.array("out", ElemTy::I64, &[1]);
    let prog = pb.finish(vec![store(arr(out, vec![c(0)]), array_base(a))]);
    let mut mem = Memory::new();
    let mut bind = prog.bindings();
    bind.bind_array(a, Addr(0xABC0));
    bind.bind_array(out, Addr(0x2000));
    Interpreter::new(&prog, &bind, &HintMap::empty())
        .run(&mut mem)
        .expect("runs");
    assert_eq!(mem.read_u64(Addr(0x2000)), 0xABC0);
}

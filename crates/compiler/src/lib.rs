//! Compiler analyses generating GRP prefetch hints.
//!
//! This crate reproduces Section 4 of the paper — the Scale compiler
//! passes that derive the five hint classes from source structure:
//!
//! * [`spatial`] — spatial locality for arrays (dependence-style stride
//!   analysis + reuse-distance estimation, §4.1) and for pointer
//!   dereferences (induction-pointer recognition + hint propagation,
//!   §4.2; Figure 7's algorithm).
//! * [`mod@pointer`] — `pointer` and `recursive pointer` hints (Figure 8's
//!   algorithm, §4.5), including the heap-array-of-pointers rule.
//! * [`indirect`] — `a[b[i]]` detection generating indirect-prefetch
//!   directives (§4.3).
//! * [`varsize`] — variable-size region coefficients and loop-bound
//!   marking for singly nested loops (§4.4).
//!
//! The entry point is [`analyze`], which runs every enabled pass and
//! returns the [`grp_ir::HintMap`] the interpreter attaches to the trace.
//! [`policy::SpatialPolicy`] selects between the paper's default,
//! aggressive, and conservative spatial-marking policies (§5.4).
//!
//! # Example
//!
//! ```
//! use grp_compiler::{analyze, AnalysisConfig};
//! use grp_ir::build::*;
//! use grp_ir::{ElemTy, ProgramBuilder};
//!
//! let mut pb = ProgramBuilder::new("stream");
//! let a = pb.array("a", ElemTy::F64, &[1024]);
//! let i = pb.var("i");
//! let s = pb.var("s");
//! let prog = pb.finish(vec![for_(i, c(0), c(1024), 1, vec![
//!     assign(s, add(var(s), load(arr(a, vec![var(i)])))),
//! ])]);
//! let hints = analyze(&prog, &AnalysisConfig::default());
//! // The streaming load is marked spatial.
//! assert!(hints.iter_hinted().any(|(_, h)| h.spatial()));
//! ```

#![deny(missing_docs)]

pub mod census;
pub mod explain;
pub mod indirect;
pub mod model;
pub mod pointer;
pub mod policy;
pub mod spatial;
pub mod varsize;

pub use census::{census, HintCensus};
pub use explain::{explain, RefExplanation};
pub use policy::{AnalysisConfig, SpatialPolicy};

use grp_ir::{HintMap, Program};

/// Runs every enabled analysis pass over `prog`, producing the hint map
/// the interpreter attaches to trace events.
pub fn analyze(prog: &Program, cfg: &AnalysisConfig) -> HintMap {
    let model = model::ProgramModel::build(prog);
    let mut hints = HintMap::sized(prog.num_refs, prog.num_loops);
    if cfg.spatial {
        spatial::mark_spatial(&model, cfg, &mut hints);
    }
    if cfg.pointer {
        pointer::mark_pointers(&model, cfg, &mut hints);
    }
    if cfg.indirect {
        indirect::mark_indirect(&model, cfg, &mut hints);
    }
    if cfg.varsize {
        varsize::mark_variable_regions(&model, cfg, &mut hints);
    }
    hints
}

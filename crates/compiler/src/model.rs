//! Flattened program model shared by the analysis passes.
//!
//! [`ProgramModel::build`] walks a [`Program`] once and produces, for
//! every static reference site, its enclosing loop path and syntactic
//! role, plus per-loop summaries (induction pointers, recurrent pointers,
//! field accesses). The passes in the sibling modules are then simple
//! queries over this table — mirroring how Scale's passes share one
//! intermediate representation.

use std::collections::HashMap;

use grp_cpu::RefId;
use grp_ir::{ArrayId, BinOp, Dim, Expr, LoopId, MemRef, Program, Stmt, UnOp, VarId};

/// Loop kind and statically-known trip information.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopKind {
    /// A counted `for` loop.
    For {
        /// Induction variable.
        iv: VarId,
        /// Step.
        step: i64,
        /// Trip count when bounds are compile-time constants.
        trip: Option<u64>,
    },
    /// A `while` loop (sequence number among the program's while loops).
    While(usize),
}

/// One level of a reference's enclosing loop path.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopCtx {
    /// The loop's id (`for` loops only carry a meaningful [`LoopId`]).
    pub id: Option<LoopId>,
    /// Kind and trip info.
    pub kind: LoopKind,
    /// Enclosing loop uid, if nested.
    pub parent: Option<usize>,
    /// True when another loop nests inside this one.
    pub has_child: bool,
}

/// Pointer-update idioms recognized inside one loop (for or while).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointerUpdates {
    /// `p = p + c` — induction pointers with their byte step.
    pub induction: HashMap<VarId, i64>,
    /// `p = p->f` where `f` points to the same structure — recurrent
    /// pointers, with the RefId of the `p->f` load.
    pub recurrent: HashMap<VarId, RefId>,
}

/// A static reference site with its context.
#[derive(Debug, Clone)]
pub struct RefSite<'p> {
    /// The site id.
    pub ref_id: RefId,
    /// The syntactic reference.
    pub mr: &'p MemRef,
    /// Enclosing loops, outermost first (`loop_uid` indexes into the
    /// model's loop tables).
    pub loop_path: Vec<usize>,
    /// True when the site is the target of a store.
    pub is_store: bool,
}

/// The flattened view of one program.
#[derive(Debug)]
pub struct ProgramModel<'p> {
    /// The underlying program.
    pub prog: &'p Program,
    /// Every loop in pre-order; index = "loop uid" used by `loop_path`.
    pub loops: Vec<LoopCtx>,
    /// Pointer-update idioms per loop uid.
    pub updates: Vec<PointerUpdates>,
    /// Every static reference site, in RefId order.
    pub refs: Vec<RefSite<'p>>,
    /// Every scalar assignment `(target, rhs)`, flow-insensitively — used
    /// by the Figure 7 hint-propagation phase.
    pub assigns: Vec<(VarId, &'p Expr)>,
}

impl<'p> ProgramModel<'p> {
    /// Walks `prog` and builds the model.
    pub fn build(prog: &'p Program) -> Self {
        let mut m = ProgramModel {
            prog,
            loops: Vec::new(),
            updates: Vec::new(),
            refs: Vec::new(),
            assigns: Vec::new(),
        };
        let mut path = Vec::new();
        for s in &prog.body {
            m.walk_stmt(s, &mut path);
        }
        m.refs.sort_by_key(|r| r.ref_id);
        m
    }

    /// The site for `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn site(&self, r: RefId) -> &RefSite<'p> {
        &self.refs[r.0 as usize]
    }

    /// The innermost enclosing loop uid of a site, if any.
    pub fn innermost_loop(&self, site: &RefSite<'_>) -> Option<usize> {
        site.loop_path.last().copied()
    }

    /// The innermost enclosing *for* loop of a site (uid), if any.
    pub fn innermost_for(&self, site: &RefSite<'_>) -> Option<usize> {
        site.loop_path
            .iter()
            .rev()
            .copied()
            .find(|uid| matches!(self.loops[*uid].kind, LoopKind::For { .. }))
    }

    /// Induction variables of the site's enclosing `for` loops,
    /// outermost first.
    pub fn enclosing_ivs(&self, site: &RefSite<'_>) -> Vec<VarId> {
        site.loop_path
            .iter()
            .filter_map(|uid| match self.loops[*uid].kind {
                LoopKind::For { iv, .. } => Some(iv),
                LoopKind::While(_) => None,
            })
            .collect()
    }

    /// True when loop `uid` contains no nested loop and has no enclosing
    /// loop — the paper's "singly nested loop" (§4.4, §3.3.2).
    pub fn is_singly_nested(&self, uid: usize) -> bool {
        let l = &self.loops[uid];
        l.parent.is_none() && !l.has_child
    }

    fn walk_stmt(&mut self, s: &'p Stmt, path: &mut Vec<usize>) {
        match s {
            Stmt::Assign(v, e) => {
                self.record_pointer_update(*v, e, path);
                self.assigns.push((*v, e));
                self.walk_expr(e, path, false);
            }
            Stmt::Work(_) => {}
            Stmt::Store(r, e) => {
                self.walk_ref(r, path, true);
                self.walk_expr(e, path, false);
            }
            Stmt::For {
                id,
                iv,
                lo,
                hi,
                step,
                body,
            } => {
                self.walk_expr(lo, path, false);
                self.walk_expr(hi, path, false);
                let trip = match (const_fold(lo), const_fold(hi)) {
                    (Some(l), Some(h)) => {
                        let span = if *step > 0 { h - l } else { l - h };
                        if span <= 0 {
                            Some(0)
                        } else {
                            Some((span as u64).div_ceil(step.unsigned_abs()))
                        }
                    }
                    _ => None,
                };
                let uid = self.loops.len();
                let parent = path.last().copied();
                if let Some(p) = parent {
                    self.loops[p].has_child = true;
                }
                self.loops.push(LoopCtx {
                    id: Some(*id),
                    kind: LoopKind::For {
                        iv: *iv,
                        step: *step,
                        trip,
                    },
                    parent,
                    has_child: false,
                });
                self.updates.push(PointerUpdates::default());
                path.push(uid);
                for st in body {
                    self.walk_stmt(st, path);
                }
                path.pop();
            }
            Stmt::While { cond, body } => {
                let uid = self.loops.len();
                let widx = self
                    .loops
                    .iter()
                    .filter(|l| matches!(l.kind, LoopKind::While(_)))
                    .count();
                let parent = path.last().copied();
                if let Some(p) = parent {
                    self.loops[p].has_child = true;
                }
                self.loops.push(LoopCtx {
                    id: None,
                    kind: LoopKind::While(widx),
                    parent,
                    has_child: false,
                });
                self.updates.push(PointerUpdates::default());
                path.push(uid);
                self.walk_expr(cond, path, false);
                for st in body {
                    self.walk_stmt(st, path);
                }
                path.pop();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                self.walk_expr(cond, path, false);
                for st in then_body.iter().chain(else_body.iter()) {
                    self.walk_stmt(st, path);
                }
            }
        }
    }

    /// Recognizes `p = p + c` and `p = p->f` (same-struct pointer field)
    /// in the innermost enclosing loop — Figures 5 and 6.
    fn record_pointer_update(&mut self, v: VarId, e: &'p Expr, path: &[usize]) {
        let Some(&uid) = path.last() else { return };
        match e {
            Expr::Bin(BinOp::Add, a, b) => {
                if let (Expr::Var(pv), Some(c)) = (a.as_ref(), const_fold(b)) {
                    if *pv == v {
                        self.updates[uid].induction.insert(v, c);
                    }
                }
                if let (Some(c), Expr::Var(pv)) = (const_fold(a), b.as_ref()) {
                    if *pv == v {
                        self.updates[uid].induction.insert(v, c);
                    }
                }
            }
            Expr::Load(MemRef::Field {
                base,
                strct,
                field,
                ref_id,
            }) => {
                if let Expr::Var(pv) = base.as_ref() {
                    if *pv == v {
                        let decl = self.prog.strct(*strct);
                        let is_recursive = decl
                            .recursive_fields(*strct)
                            .contains(field);
                        if is_recursive {
                            self.updates[uid].recurrent.insert(v, *ref_id);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn walk_expr(&mut self, e: &'p Expr, path: &[usize], _is_store: bool) {
        match e {
            Expr::I64(_) | Expr::F64(_) | Expr::Var(_) | Expr::ArrayBase(_) => {}
            Expr::Load(r) => self.walk_ref(r, path, false),
            Expr::Un(_, a) => self.walk_expr(a, path, false),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                self.walk_expr(a, path, false);
                self.walk_expr(b, path, false);
            }
        }
    }

    fn walk_ref(&mut self, r: &'p MemRef, path: &[usize], is_store: bool) {
        match r {
            MemRef::Array { indices, .. } => {
                for e in indices {
                    self.walk_expr(e, path, false);
                }
            }
            MemRef::PtrIndex { base, index, .. } => {
                self.walk_expr(base, path, false);
                self.walk_expr(index, path, false);
            }
            MemRef::Field { base, .. } | MemRef::Deref { base, .. } => {
                self.walk_expr(base, path, false);
            }
        }
        self.refs.push(RefSite {
            ref_id: r.ref_id(),
            mr: r,
            loop_path: path.to_vec(),
            is_store,
        });
    }
}

/// Folds a compile-time-constant integer expression.
pub fn const_fold(e: &Expr) -> Option<i64> {
    match e {
        Expr::I64(v) => Some(*v),
        Expr::Un(UnOp::Neg, a) => const_fold(a).map(|v| -v),
        Expr::Bin(op, a, b) => {
            let (x, y) = (const_fold(a)?, const_fold(b)?);
            Some(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0 {
                        return None;
                    } else {
                        x / y
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        return None;
                    } else {
                        x % y
                    }
                }
                BinOp::Shl => x << (y as u32).min(63),
                BinOp::Shr => x >> (y as u32).min(63),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
            })
        }
        _ => None,
    }
}

/// Result of affine analysis of an index expression with respect to a
/// set of induction variables.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AffineInfo {
    /// Coefficient per induction variable (missing = 0).
    pub iv_coeffs: HashMap<VarId, i64>,
    /// Loads appearing in the expression (their values are part of the
    /// index — the `a[b[i]]` signature).
    pub loads: Vec<RefId>,
    /// True when the expression is not an affine function of the IVs
    /// (an IV multiplied by a non-constant, shifted by a variable, …).
    pub nonlinear: bool,
}

impl AffineInfo {
    fn constant() -> Self {
        Self::default()
    }

    fn poison(mut self) -> Self {
        self.nonlinear = true;
        self
    }

    /// The coefficient of `iv` (0 when absent).
    pub fn coeff(&self, iv: VarId) -> i64 {
        self.iv_coeffs.get(&iv).copied().unwrap_or(0)
    }

    /// True when no IV appears.
    pub fn is_invariant(&self) -> bool {
        self.iv_coeffs.values().all(|c| *c == 0)
    }

    fn merge_add(mut self, other: AffineInfo, sign: i64) -> AffineInfo {
        for (v, c) in other.iv_coeffs {
            *self.iv_coeffs.entry(v).or_insert(0) += sign * c;
        }
        self.loads.extend(other.loads);
        self.nonlinear |= other.nonlinear;
        self
    }

    fn scale(mut self, k: i64) -> AffineInfo {
        for c in self.iv_coeffs.values_mut() {
            *c *= k;
        }
        self
    }
}

/// Analyzes `e` as an affine function of `ivs`. Variables outside `ivs`
/// are treated as loop-invariant symbols (their contribution affects the
/// base address, not the per-iteration stride).
pub fn affine_of(e: &Expr, ivs: &[VarId]) -> AffineInfo {
    match e {
        Expr::I64(_) | Expr::F64(_) | Expr::ArrayBase(_) => AffineInfo::constant(),
        Expr::Var(v) => {
            let mut a = AffineInfo::constant();
            if ivs.contains(v) {
                a.iv_coeffs.insert(*v, 1);
            }
            a
        }
        Expr::Load(r) => {
            let mut a = AffineInfo::constant();
            a.loads.push(r.ref_id());
            a
        }
        Expr::Un(UnOp::Neg, x) => affine_of(x, ivs).scale(-1),
        Expr::Un(UnOp::Not, x) => {
            let a = affine_of(x, ivs);
            if a.is_invariant() {
                a
            } else {
                a.poison()
            }
        }
        Expr::Bin(op, x, y) => {
            let ax = affine_of(x, ivs);
            let ay = affine_of(y, ivs);
            match op {
                BinOp::Add => ax.merge_add(ay, 1),
                BinOp::Sub => ax.merge_add(ay, -1),
                BinOp::Mul => {
                    if let Some(k) = const_fold(y) {
                        let mut a = ax.scale(k);
                        a.loads.extend(ay.loads);
                        a
                    } else if let Some(k) = const_fold(x) {
                        let mut a = ay.scale(k);
                        a.loads.extend(ax.loads);
                        a
                    } else if ax.is_invariant() && ay.is_invariant() {
                        ax.merge_add(ay, 1)
                    } else {
                        ax.merge_add(ay, 1).poison()
                    }
                }
                BinOp::Shl => {
                    if let Some(k) = const_fold(y) {
                        ax.scale(1i64 << (k as u32).min(62))
                    } else if ax.is_invariant() {
                        ax.merge_add(ay, 1)
                    } else {
                        ax.merge_add(ay, 1).poison()
                    }
                }
                _ => {
                    // Division, remainder, bitwise ops: affine only when
                    // no IV is involved.
                    let merged = ax.merge_add(ay, 1);
                    if merged.is_invariant() {
                        merged
                    } else {
                        merged.poison()
                    }
                }
            }
        }
        Expr::Cmp(_, x, y) => {
            let merged = affine_of(x, ivs).merge_add(affine_of(y, ivs), 1);
            if merged.is_invariant() {
                merged
            } else {
                merged.poison()
            }
        }
    }
}

/// Element-size-resolved dims of an array (const dims only; `None` for
/// any symbolic extent).
pub fn const_dims(prog: &Program, a: ArrayId) -> Option<Vec<u64>> {
    prog.array(a)
        .dims
        .iter()
        .map(|d| match d {
            Dim::Const(n) => Some(*n),
            Dim::Sym => None,
        })
        .collect()
}

/// The per-iteration *byte* stride of an array-like reference with
/// respect to induction variable `iv` (per unit step of `iv`).
///
/// Returns `None` when the subscripts are non-affine, contain loads, or
/// when a non-innermost dimension varies under symbolic extents (the
/// row size — hence the stride — is unknown). `Some(0)` means the
/// reference is invariant in `iv`.
pub fn ref_byte_stride(model: &ProgramModel<'_>, site: &RefSite<'_>, iv: VarId) -> Option<i64> {
    let ivs = [iv];
    match site.mr {
        MemRef::Array { array, indices, .. } => {
            let decl = model.prog.array(*array);
            let elem = decl.elem.size() as i64;
            let infos: Vec<AffineInfo> = indices.iter().map(|e| affine_of(e, &ivs)).collect();
            if infos.iter().any(|a| a.nonlinear || !a.loads.is_empty()) {
                return None;
            }
            match const_dims(model.prog, *array) {
                Some(dims) => {
                    // Element strides: stride[d] = Π dims[d+1..].
                    let mut stride = vec![1i64; dims.len()];
                    for d in (0..dims.len().saturating_sub(1)).rev() {
                        stride[d] = stride[d + 1] * dims[d + 1] as i64;
                    }
                    let total: i64 = infos
                        .iter()
                        .zip(&stride)
                        .map(|(a, s)| a.coeff(iv) * s)
                        .sum();
                    Some(total * elem)
                }
                None => {
                    // Symbolic extents: only innermost-dimension movement
                    // has a known stride.
                    let n = infos.len();
                    if infos[..n - 1].iter().all(|a| a.coeff(iv) == 0) {
                        Some(infos[n - 1].coeff(iv) * elem)
                    } else {
                        None
                    }
                }
            }
        }
        MemRef::PtrIndex {
            base, elem, index, ..
        } => {
            let b = affine_of(base, &ivs);
            let i = affine_of(index, &ivs);
            if i.nonlinear || !i.loads.is_empty() || b.coeff(iv) != 0 || b.nonlinear {
                return None;
            }
            Some(i.coeff(iv) * elem.size() as i64)
        }
        MemRef::Deref { .. } | MemRef::Field { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_ir::build::*;
    use grp_ir::{ElemTy, ProgramBuilder};
    use grp_ir::types::field;

    #[test]
    fn const_fold_arithmetic() {
        assert_eq!(const_fold(&add(c(2), mul(c(3), c(4)))), Some(14));
        assert_eq!(const_fold(&shl(c(1), c(5))), Some(32));
        assert_eq!(const_fold(&var(VarId(0))), None);
        assert_eq!(const_fold(&div_(c(1), c(0))), None);
    }

    #[test]
    fn affine_simple_iv() {
        let iv = VarId(3);
        let a = affine_of(&add(mul(c(2), var(iv)), c(5)), &[iv]);
        assert_eq!(a.coeff(iv), 2);
        assert!(!a.nonlinear);
        assert!(a.loads.is_empty());
    }

    #[test]
    fn affine_symbolic_invariant_is_fine() {
        let iv = VarId(0);
        let sym = VarId(1);
        // i + n  (n loop-invariant)
        let a = affine_of(&add(var(iv), var(sym)), &[iv]);
        assert_eq!(a.coeff(iv), 1);
        assert!(!a.nonlinear);
    }

    #[test]
    fn affine_iv_times_symbol_is_nonlinear() {
        let iv = VarId(0);
        let sym = VarId(1);
        let a = affine_of(&mul(var(iv), var(sym)), &[iv]);
        assert!(a.nonlinear);
    }

    #[test]
    fn affine_records_loads() {
        let mut pb = ProgramBuilder::new("t");
        let b = pb.array("b", ElemTy::I32, &[4]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(4),
            1,
            vec![assign(s, load(arr(b, vec![var(i)])))],
        )]);
        // Build an expression with a load manually to test affine_of.
        let m = ProgramModel::build(&prog);
        assert_eq!(m.refs.len(), 1);
        let e = add(mul(c(4), load(arr(b, vec![var(i)]))), c(1));
        // (note: this standalone expr has UNASSIGNED ref ids; only the
        // loads list length matters here)
        let a = affine_of(&e, &[i]);
        assert_eq!(a.loads.len(), 1);
        assert_eq!(a.coeff(i), 0);
    }

    #[test]
    fn model_collects_loop_paths_and_trip_counts() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[8, 16]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(8),
            1,
            vec![for_(
                j,
                c(0),
                c(16),
                1,
                vec![assign(s, load(arr(a, vec![var(i), var(j)])))],
            )],
        )]);
        let m = ProgramModel::build(&prog);
        assert_eq!(m.loops.len(), 2);
        let site = m.site(RefId(0));
        assert_eq!(site.loop_path, vec![0, 1]);
        match &m.loops[0].kind {
            LoopKind::For { trip, .. } => assert_eq!(*trip, Some(8)),
            _ => panic!(),
        }
        assert_eq!(m.enclosing_ivs(site), vec![i, j]);
        assert_eq!(m.innermost_for(site), Some(1));
    }

    #[test]
    fn model_recognizes_induction_pointer() {
        let mut pb = ProgramBuilder::new("t");
        let p = pb.var("p");
        let e = pb.var("e");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            lt(var(p), var(e)),
            vec![
                assign(s, load(deref(var(p), ElemTy::F64, 0))),
                assign(p, add(var(p), c(16))),
            ],
        )]);
        let m = ProgramModel::build(&prog);
        assert_eq!(m.updates[0].induction.get(&p), Some(&16));
    }

    #[test]
    fn model_recognizes_recurrent_pointer() {
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![field("next", ElemTy::ptr_to(sid)), field("v", ElemTy::I64)],
        );
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            ne(var(p), c(0)),
            vec![
                assign(s, load(fld(var(p), node, grp_ir::FieldId(1)))),
                assign(p, load(fld(var(p), node, grp_ir::FieldId(0)))),
            ],
        )]);
        let m = ProgramModel::build(&prog);
        assert_eq!(m.updates[0].recurrent.len(), 1);
        assert!(m.updates[0].recurrent.contains_key(&p));
    }

    #[test]
    fn singly_nested_detection() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[64]);
        let b = pb.array("b", ElemTy::F64, &[8, 8]);
        let i = pb.var("i");
        let j = pb.var("j");
        let k = pb.var("k");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            for_(i, c(0), c(64), 1, vec![assign(s, load(arr(a, vec![var(i)])))]),
            for_(
                j,
                c(0),
                c(8),
                1,
                vec![for_(
                    k,
                    c(0),
                    c(8),
                    1,
                    vec![assign(s, load(arr(b, vec![var(j), var(k)])))],
                )],
            ),
        ]);
        let m = ProgramModel::build(&prog);
        assert!(m.is_singly_nested(0), "flat loop is singly nested");
        assert!(!m.is_singly_nested(1), "outer of a 2-nest is not");
        assert!(!m.is_singly_nested(2), "inner of a 2-nest is not");
    }
}

//! Static hint census — the data behind the paper's Table 3.
//!
//! Table 3 reports, per benchmark: total static memory reference
//! instructions, the number marked `spatial`, `pointer`, and `recursive`,
//! the fraction of memory operations with hints, and the number of
//! indirect prefetch instructions.

use grp_ir::{HintMap, Program};

/// Per-program static hint counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintCensus {
    /// Program name.
    pub name: String,
    /// Total static memory reference sites.
    pub mem_refs: u32,
    /// Sites marked `spatial`.
    pub spatial: u32,
    /// Sites marked `pointer`.
    pub pointer: u32,
    /// Sites marked `recursive pointer`.
    pub recursive: u32,
    /// Sites with a variable-size coefficient.
    pub sized: u32,
    /// Indirect prefetch directives.
    pub indirect: u32,
    /// Sites with at least one hint (precomputed).
    pub hinted_count: u32,
}

impl HintCensus {
    /// Fraction of static memory references carrying any hint
    /// (Table 3's "ratio" column).
    pub fn hinted_ratio(&self) -> f64 {
        if self.mem_refs == 0 {
            return 0.0;
        }
        let hinted = self.hinted();
        hinted as f64 / self.mem_refs as f64
    }

    /// Number of sites with at least one hint.
    pub fn hinted(&self) -> u32 {
        self.hinted_count
    }

    #[doc(hidden)]
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>9} {:>8} {:>8} {:>10} {:>9.1} {:>9}",
            self.name,
            self.mem_refs,
            self.spatial,
            self.pointer,
            self.recursive,
            self.hinted_ratio() * 100.0,
            self.indirect
        )
    }
}

/// Counts hints over a compiled program.
pub fn census(prog: &Program, hints: &HintMap) -> HintCensus {
    let mut spatial = 0;
    let mut pointer = 0;
    let mut recursive = 0;
    let mut sized = 0;
    let mut hinted = 0;
    for r in 0..prog.num_refs {
        let h = hints.hint(grp_cpu::RefId(r));
        if h.spatial() {
            spatial += 1;
        }
        if h.pointer() {
            pointer += 1;
        }
        if h.recursive() {
            recursive += 1;
        }
        if h.size_coeff().is_some() {
            sized += 1;
        }
        if !h.is_empty() {
            hinted += 1;
        }
    }
    HintCensus {
        name: prog.name.clone(),
        mem_refs: prog.num_refs,
        spatial,
        pointer,
        recursive,
        sized,
        indirect: hints.indirect_count() as u32,
        hinted_count: hinted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use grp_ir::build::*;
    use grp_ir::types::field;
    use grp_ir::{ElemTy, FieldId, ProgramBuilder};

    #[test]
    fn census_counts_mixed_program() {
        let mut pb = ProgramBuilder::new("mixed");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![field("next", ElemTy::ptr_to(sid)), field("v", ElemTy::F64)],
        );
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let i = pb.var("i");
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            for_(
                i,
                c(0),
                c(4096),
                1,
                vec![assign(s, add(var(s), load(arr(a, vec![var(i)]))))],
            ),
            while_(
                ne(var(p), c(0)),
                vec![
                    assign(s, add(var(s), load(fld(var(p), node, FieldId(1))))),
                    assign(p, load(fld(var(p), node, FieldId(0)))),
                ],
            ),
        ]);
        let h = analyze(&prog, &AnalysisConfig::default());
        let cs = census(&prog, &h);
        assert_eq!(cs.mem_refs, 3);
        assert_eq!(cs.spatial, 1);
        assert_eq!(cs.pointer, 2);
        assert_eq!(cs.recursive, 1);
        assert_eq!(cs.sized, 1, "singly nested array loop gets a coefficient");
        assert_eq!(cs.indirect, 0);
        assert_eq!(cs.hinted(), 3);
        assert!((cs.hinted_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_program_census() {
        let pb = ProgramBuilder::new("empty");
        let prog = pb.finish(vec![]);
        let h = analyze(&prog, &AnalysisConfig::default());
        let cs = census(&prog, &h);
        assert_eq!(cs.mem_refs, 0);
        assert_eq!(cs.hinted_ratio(), 0.0);
    }

    #[test]
    fn row_formats_without_panicking() {
        let cs = HintCensus {
            name: "x".into(),
            mem_refs: 10,
            spatial: 4,
            pointer: 2,
            recursive: 1,
            sized: 1,
            indirect: 1,
            hinted_count: 5,
        };
        let r = cs.row();
        assert!(r.contains('x'));
        assert!(r.contains("50.0"));
    }
}

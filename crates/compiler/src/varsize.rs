//! Variable-size region analysis (paper §4.4).
//!
//! "The compiler detects and marks array references within singly nested
//! loops for variable-size region prefetching. For an array access with a
//! pattern of `a(b·i + c)` and an array element size of `e`, the compiler
//! encodes `b·e` into a three-bit value `x` such that `x < 7` and `2^x`
//! is closest to `b·e` … The compiler marks the upper bound of the loop
//! induction variable `i`." At run time the engine computes the region
//! size as `loop bound << coefficient` (§3.3.2).

use grp_ir::{Expr, HintMap, MemRef};

use crate::model::{affine_of, LoopKind, ProgramModel};
use crate::policy::AnalysisConfig;

/// Runs the variable-size-region pass. Must run after the spatial pass
/// (only spatially-hinted references get size coefficients — unhinted
/// references never trigger region prefetches under GRP).
pub fn mark_variable_regions(
    model: &ProgramModel<'_>,
    _cfg: &AnalysisConfig,
    hints: &mut HintMap,
) {
    for site in &model.refs {
        // Only spatial references participate.
        if !hints.hint(site.ref_id).spatial() {
            continue;
        }
        let Some(uid) = model.innermost_loop(site) else {
            continue;
        };
        let LoopKind::For { iv, step, trip } = model.loops[uid].kind else {
            continue;
        };
        // The paper restricts the pass to singly nested loops, because a
        // reference whose subscripts involve an *outer* induction
        // variable keeps streaming across inner-loop invocations and must
        // keep the full region. Our kernels are single functions (the
        // paper's short loops live in separate callees), so we apply the
        // equivalent condition directly: the loop is singly nested, or
        // (a) no outer IV appears in the reference's subscripts (its
        // footprint restarts every inner-loop invocation) and (b) the
        // bound is a compile-time constant, so the compiler can see the
        // extent is genuinely short. Symbolic inner bounds (sparse-row
        // lengths) keep the full region: the rows may well be contiguous
        // and the stream continue across them.
        if !model.is_singly_nested(uid)
            && (trip.is_none() || uses_outer_iv(model, site, iv))
        {
            continue;
        }
        let Some(loop_id) = model.loops[uid].id else {
            continue;
        };
        let stride_bytes = match site.mr {
            MemRef::Array { .. } | MemRef::PtrIndex { .. } => {
                match crate::model::ref_byte_stride(model, site, iv) {
                    Some(per_unit) if per_unit != 0 => {
                        per_unit.unsigned_abs() * step.unsigned_abs()
                    }
                    _ => continue,
                }
            }
            MemRef::Deref { base, .. } | MemRef::Field { base, .. } => {
                // Induction pointers: stride is the pointer increment. A
                // pointer walked in an inner loop usually keeps streaming
                // across outer iterations, so only singly nested loops
                // qualify here.
                if !model.is_singly_nested(uid) {
                    continue;
                }
                let Expr::Var(p) = base.as_ref() else { continue };
                match model.updates[uid].induction.get(p) {
                    Some(c) => c.unsigned_abs(),
                    None => continue,
                }
            }
        };
        if stride_bytes == 0 {
            continue;
        }
        let coeff = closest_pow2_exponent(stride_bytes);
        hints.set_size_coeff(site.ref_id, coeff);
        hints.mark_loop_bound(loop_id);
    }
}

/// True when any subscript of `site` involves an enclosing `for` IV
/// other than `inner_iv`.
fn uses_outer_iv(
    model: &ProgramModel<'_>,
    site: &crate::model::RefSite<'_>,
    inner_iv: grp_ir::VarId,
) -> bool {
    let ivs = model.enclosing_ivs(site);
    let outer: Vec<_> = ivs.into_iter().filter(|v| *v != inner_iv).collect();
    if outer.is_empty() {
        return false;
    }
    let exprs: Vec<&Expr> = match site.mr {
        MemRef::Array { indices, .. } => indices.iter().collect(),
        MemRef::PtrIndex { base, index, .. } => vec![base, index],
        MemRef::Deref { base, .. } | MemRef::Field { base, .. } => vec![base],
    };
    exprs.iter().any(|e| {
        let a = affine_of(e, &outer);
        outer.iter().any(|v| a.coeff(*v) != 0) || a.nonlinear
    })
}

/// The `x < 7` with `2^x` closest to `n` encoding of §4.4.
pub fn closest_pow2_exponent(n: u64) -> u8 {
    let mut best = 0u8;
    let mut best_dist = u64::MAX;
    for x in 0..=6u8 {
        let v = 1u64 << x;
        let dist = v.abs_diff(n);
        if dist < best_dist {
            best = x;
            best_dist = dist;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use crate::policy::AnalysisConfig;
    use grp_cpu::RefId;
    use grp_ir::build::*;
    use grp_ir::{ElemTy, LoopId, ProgramBuilder};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn exponent_encoding_matches_paper() {
        assert_eq!(closest_pow2_exponent(1), 0);
        assert_eq!(closest_pow2_exponent(4), 2);
        assert_eq!(closest_pow2_exponent(8), 3);
        assert_eq!(closest_pow2_exponent(10), 3);
        assert_eq!(closest_pow2_exponent(48), 5, "tie between 32 and 64 takes the smaller");
        assert_eq!(closest_pow2_exponent(1000), 6, "clamped at 2^6");
    }

    #[test]
    fn singly_nested_unit_stride_gets_coeff_and_bound() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(4096),
            1,
            vec![assign(s, add(var(s), load(arr(a, vec![var(i)]))))],
        )]);
        let h = analyze(&prog, &cfg());
        assert_eq!(h.hint(RefId(0)).size_coeff(), Some(3), "8-byte stride → x=3");
        assert!(h.emits_bound(LoopId(0)));
    }

    #[test]
    fn nested_loops_do_not_get_coefficients() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[64, 64]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(64),
            1,
            vec![for_(
                j,
                c(0),
                c(64),
                1,
                vec![assign(s, load(arr(a, vec![var(i), var(j)])))],
            )],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
        assert_eq!(h.hint(RefId(0)).size_coeff(), None);
        assert!(!h.emits_bound(LoopId(0)));
        assert!(!h.emits_bound(LoopId(1)));
    }

    #[test]
    fn grp_fix_disables_the_pass() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(4096),
            1,
            vec![assign(s, load(arr(a, vec![var(i)])))],
        )]);
        let h = analyze(&prog, &AnalysisConfig::grp_fix());
        assert!(h.hint(RefId(0)).spatial());
        assert_eq!(h.hint(RefId(0)).size_coeff(), None);
        assert!(!h.emits_bound(LoopId(0)));
    }

    #[test]
    fn induction_pointer_loop_gets_stride_coefficient() {
        // for-loop stepping a pointer: p starts at base, 48-byte objects.
        let mut pb = ProgramBuilder::new("t");
        let i = pb.var("i");
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(128),
            1,
            vec![
                assign(s, load(deref(var(p), ElemTy::F64, 0))),
                assign(p, add(var(p), c(48))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
        assert_eq!(
            h.hint(RefId(0)).size_coeff(),
            Some(5),
            "48-byte stride rounds to 2^5"
        );
    }

    #[test]
    fn non_spatial_reference_gets_no_coefficient() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[1 << 20]);
        let i = pb.var("i");
        let s = pb.var("s");
        // stride 1024 elements — not spatial, so no size coeff either.
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(1024),
            1,
            vec![assign(s, load(arr(a, vec![mul(c(1024), var(i))])))],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).spatial());
        assert_eq!(h.hint(RefId(0)).size_coeff(), None);
    }
}

//! Pointer and recursive-pointer hints (paper §4.5, Figure 8).
//!
//! Three rules:
//!
//! 1. A field access is marked `pointer` when a pointer field of the same
//!    structure is accessed in the same loop — the structure plausibly
//!    links onward, so scanning its cache line for addresses pays off.
//! 2. A field access that updates a recurrent pointer (`a = a->next`
//!    where `next` points to the same structure type, Figure 6) is marked
//!    `recursive pointer`, seeding the engine's deeper chase counter.
//! 3. A spatial array reference to a heap array of pointers is marked
//!    `pointer` (Figure 4: each `buf[i]` points at a heap row worth
//!    prefetching).

use std::collections::{HashMap, HashSet};

use grp_ir::{HintMap, MemRef, StructId};

use crate::model::{ProgramModel, RefSite};
use crate::policy::AnalysisConfig;

/// Runs the pointer pass. Must run after the spatial pass (rule 3 keys
/// off spatial marks).
pub fn mark_pointers(model: &ProgramModel<'_>, _cfg: &AnalysisConfig, hints: &mut HintMap) {
    // Per loop, which structures have a pointer-typed field accessed?
    let mut loop_structs_with_ptr_access: HashMap<usize, HashSet<StructId>> = HashMap::new();
    for site in &model.refs {
        if let MemRef::Field { strct, field, .. } = site.mr {
            let decl = model.prog.strct(*strct);
            if decl.field_ty(*field).is_pointer() {
                for &uid in &site.loop_path {
                    loop_structs_with_ptr_access
                        .entry(uid)
                        .or_default()
                        .insert(*strct);
                }
            }
        }
    }

    // Rule 1: mark field accesses in loops where the same structure's
    // pointer field is also accessed.
    for site in &model.refs {
        if let MemRef::Field { strct, .. } = site.mr {
            if !model.prog.strct(*strct).has_pointer_field() {
                continue;
            }
            let in_ptr_loop = site.loop_path.iter().any(|uid| {
                loop_structs_with_ptr_access
                    .get(uid)
                    .is_some_and(|s| s.contains(strct))
            });
            if in_ptr_loop {
                hints.add_pointer(site.ref_id);
            }
        }
    }

    // Rule 2: recurrent pointer updates are recursive.
    for upd in &model.updates {
        for ref_id in upd.recurrent.values() {
            hints.add_recursive(*ref_id);
        }
    }

    // Rule 3: spatial references to heap arrays of pointers.
    for site in &model.refs {
        if let MemRef::Array { array, .. } = site.mr {
            let decl = model.prog.array(*array);
            if decl.heap && decl.elem.is_pointer() && hints.hint(site.ref_id).spatial() {
                hints.add_pointer(site.ref_id);
            }
        }
    }
}

/// Convenience: true when `site` is a field access to a structure with
/// pointer fields (used by tests and diagnostics).
pub fn is_linked_structure_access(model: &ProgramModel<'_>, site: &RefSite<'_>) -> bool {
    matches!(site.mr, MemRef::Field { strct, .. }
        if model.prog.strct(*strct).has_pointer_field())
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use crate::policy::AnalysisConfig;
    use grp_cpu::RefId;
    use grp_ir::build::*;
    use grp_ir::types::field;
    use grp_ir::{ElemTy, FieldId, ProgramBuilder};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn list_traversal_gets_pointer_and_recursive() {
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![field("next", ElemTy::ptr_to(sid)), field("v", ElemTy::F64)],
        );
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            ne(var(p), c(0)),
            vec![
                assign(s, add(var(s), load(fld(var(p), node, FieldId(1))))),
                assign(p, load(fld(var(p), node, FieldId(0)))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        // RefId(0) = p->v, RefId(1) = p->next.
        assert!(h.hint(RefId(0)).pointer(), "value access marked pointer");
        assert!(h.hint(RefId(1)).pointer());
        assert!(h.hint(RefId(1)).recursive(), "next-update marked recursive");
        assert!(!h.hint(RefId(0)).recursive());
    }

    #[test]
    fn struct_without_pointer_fields_is_unmarked() {
        let mut pb = ProgramBuilder::new("t");
        let node = pb.add_struct("plain", vec![field("x", ElemTy::F64)]);
        let p = pb.var("p");
        let e = pb.var("e");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            lt(var(p), var(e)),
            vec![
                assign(s, load(fld(var(p), node, FieldId(0)))),
                assign(p, add(var(p), c(8))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).pointer());
        assert!(!h.hint(RefId(0)).recursive());
    }

    #[test]
    fn pointer_field_access_without_update_is_pointer_not_recursive() {
        // Tree-ish: visits child pointers but the loop variable is not a
        // recurrent self-update of the same variable.
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![
                field("left", ElemTy::ptr_to(sid)),
                field("key", ElemTy::I64),
            ],
        );
        let p = pb.var("p");
        let q = pb.var("q");
        let i = pb.var("i");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(8),
            1,
            vec![
                assign(q, load(fld(var(p), node, FieldId(0)))),
                assign(p, var(q)),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).pointer());
        // `q = p->left; p = q` is not the direct self-update idiom.
        assert!(!h.hint(RefId(0)).recursive());
    }

    #[test]
    fn spatial_heap_pointer_array_marked_pointer() {
        let mut pb = ProgramBuilder::new("t");
        let buf = pb.heap_array("buf", ElemTy::ptr(), &[256]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(256),
            1,
            vec![assign(s, load(arr(buf, vec![var(i)])))],
        )]);
        let h = analyze(&prog, &cfg());
        let hint = h.hint(RefId(0));
        assert!(hint.spatial());
        assert!(hint.pointer(), "heap array of pointers: spatial + pointer");
    }

    #[test]
    fn non_heap_pointer_array_not_marked_pointer() {
        let mut pb = ProgramBuilder::new("t");
        let tbl = pb.array("tbl", ElemTy::ptr(), &[256]); // static table
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(256),
            1,
            vec![assign(s, load(arr(tbl, vec![var(i)])))],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
        assert!(!h.hint(RefId(0)).pointer());
    }

    #[test]
    fn pointer_pass_can_be_disabled() {
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![field("next", ElemTy::ptr_to(sid)), field("v", ElemTy::F64)],
        );
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            ne(var(p), c(0)),
            vec![
                assign(s, load(fld(var(p), node, FieldId(1)))),
                assign(p, load(fld(var(p), node, FieldId(0)))),
            ],
        )]);
        let mut c = cfg();
        c.pointer = false;
        let h = analyze(&prog, &c);
        assert!(!h.hint(RefId(0)).pointer());
        assert!(!h.hint(RefId(1)).recursive());
    }
}

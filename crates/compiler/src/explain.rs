//! Human-readable hint diagnostics: for each reference site, the
//! syntactic shape, the per-loop byte strides the analyses saw, and the
//! hints that resulted. Used by `grp-bench`'s `explain` tool to audit
//! why the compiler did (or did not) mark a reference.

use grp_cpu::RefId;
use grp_ir::{HintMap, MemRef, Program};

use crate::model::{ref_byte_stride, LoopKind, ProgramModel};

/// One line of diagnostics per reference site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefExplanation {
    /// The site.
    pub ref_id: RefId,
    /// Syntactic kind ("array a", "ptr-index", "field s.f", "deref").
    pub shape: String,
    /// `(loop depth, iv name, byte stride)` per enclosing `for` loop;
    /// `None` stride = non-affine w.r.t. that IV.
    pub strides: Vec<(usize, String, Option<i64>)>,
    /// Load vs store.
    pub is_store: bool,
    /// The final hints.
    pub hints: String,
}

impl RefExplanation {
    /// Renders as one diagnostic line.
    pub fn line(&self) -> String {
        let strides: Vec<String> = self
            .strides
            .iter()
            .map(|(d, iv, s)| match s {
                Some(v) => format!("{}{}:{}B", "  ".repeat(*d).trim(), iv, v),
                None => format!("{}:non-affine", iv),
            })
            .collect();
        format!(
            "{:>4} {:<5} {:<24} strides[{}] → {}",
            self.ref_id.0,
            if self.is_store { "store" } else { "load" },
            self.shape,
            strides.join(", "),
            self.hints
        )
    }
}

/// Explains every reference site of `prog` against a computed hint map.
pub fn explain(prog: &Program, hints: &HintMap) -> Vec<RefExplanation> {
    let model = ProgramModel::build(prog);
    let mut out = Vec::new();
    for site in &model.refs {
        let shape = match site.mr {
            MemRef::Array { array, indices, .. } => format!(
                "array {}[{}d]",
                prog.array(*array).name,
                indices.len()
            ),
            MemRef::PtrIndex { elem, .. } => format!("ptr-index ({:?})", elem),
            MemRef::Field { strct, field, .. } => format!(
                "field {}.{}",
                prog.strct(*strct).name,
                prog.strct(*strct).fields[field.0 as usize].name
            ),
            MemRef::Deref { elem, offset, .. } => format!("deref+{offset} ({elem:?})"),
        };
        let mut strides = Vec::new();
        for (depth, uid) in site.loop_path.iter().enumerate() {
            if let LoopKind::For { iv, step, .. } = model.loops[*uid].kind {
                let s = ref_byte_stride(&model, site, iv).map(|v| v * step);
                strides.push((depth, prog.var_names[iv.0 as usize].clone(), s));
            }
        }
        out.push(RefExplanation {
            ref_id: site.ref_id,
            shape,
            strides,
            is_store: site.is_store,
            hints: format!("{}", hints.hint(site.ref_id)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use grp_ir::build::*;
    use grp_ir::{ElemTy, ProgramBuilder};

    #[test]
    fn explanations_cover_every_site_with_strides() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[64, 64]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(64),
            1,
            vec![for_(
                j,
                c(0),
                c(64),
                1,
                vec![assign(s, load(arr(a, vec![var(i), var(j)])))],
            )],
        )]);
        let hints = analyze(&prog, &AnalysisConfig::default());
        let ex = explain(&prog, &hints);
        assert_eq!(ex.len(), 1);
        let e = &ex[0];
        assert!(e.shape.contains("array a"));
        assert!(!e.is_store);
        // Strides: i moves a row (512 B), j one element (8 B).
        assert_eq!(e.strides.len(), 2);
        assert_eq!(e.strides[0].2, Some(512));
        assert_eq!(e.strides[1].2, Some(8));
        assert!(e.hints.contains("spatial"));
        assert!(e.line().contains("spatial"));
    }

    #[test]
    fn non_affine_sites_are_flagged() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::I64, &[4096]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(64),
            1,
            vec![assign(
                s,
                load(arr(a, vec![and_(mul(var(i), var(i)), c(4095))])),
            )],
        )]);
        let hints = analyze(&prog, &AnalysisConfig::default());
        let ex = explain(&prog, &hints);
        assert_eq!(ex[0].strides[0].2, None, "i*i is non-affine");
        assert!(ex[0].line().contains("non-affine"));
    }
}

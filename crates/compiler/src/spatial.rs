//! Spatial locality analysis (paper §4.1–§4.2, Figure 7).
//!
//! Two phases, mirroring Figure 7:
//!
//! 1. **Basic hints.** Affine array references whose spatial (fastest-
//!    varying) dimension is driven by an enclosing induction variable
//!    with a sub-block stride are marked `spatial` — immediately when the
//!    reuse sits in the innermost loop, and otherwise subject to a
//!    reuse-distance estimate against the L2 capacity (policy-dependent,
//!    §5.4). Loop induction pointers with a small constant increment mark
//!    their dereferences the same way.
//! 2. **Propagation.** Hints flow through pointer values: a reference
//!    whose base address derives from a `spatial`-marked load is itself
//!    marked `spatial` (`buf[i]` spatial ⟹ `buf[i][j]` spatial), iterated
//!    to a fixpoint.

use std::collections::HashSet;

use grp_cpu::RefId;
use grp_ir::{Expr, HintMap, MemRef, VarId};

use crate::model::{LoopKind, ProgramModel, RefSite};
use crate::policy::{AnalysisConfig, SpatialPolicy};

/// Runs the spatial pass, adding `spatial` hints to `hints`.
pub fn mark_spatial(model: &ProgramModel<'_>, cfg: &AnalysisConfig, hints: &mut HintMap) {
    // Phase 1a: affine array references.
    for site in &model.refs {
        if let Some(verdict) = array_like_spatial(model, cfg, site) {
            if verdict {
                hints.add_spatial(site.ref_id);
            }
        }
    }
    // Phase 1b: loop induction pointers.
    for site in &model.refs {
        if induction_pointer_spatial(model, cfg, site) {
            hints.add_spatial(site.ref_id);
        }
    }
    // Phase 1c: inter-nest reuse (§4.1: spatial locality "between two
    // nests"), bounded by the L2 capacity like intra-nest distances.
    if cfg.policy != SpatialPolicy::Conservative {
        mark_inter_nest(model, cfg, hints);
    }
    // Phase 2: propagate through pointer bases (Figure 7's do-while).
    propagate(model, hints);
}

/// Marks affine array references whose blocks were touched by an earlier
/// top-level nest, when the data volume between the two accesses fits
/// the L2 (§4.1's inter-nest reuse).
fn mark_inter_nest(model: &ProgramModel<'_>, cfg: &AnalysisConfig, hints: &mut HintMap) {
    // Top-level nest uid → program order and footprint.
    let top_uids: Vec<usize> = (0..model.loops.len())
        .filter(|uid| model.loops[*uid].parent.is_none())
        .collect();
    let order_of = |uid: usize| top_uids.iter().position(|u| *u == uid);
    let footprints: Vec<Option<u64>> = top_uids
        .iter()
        .map(|uid| nest_footprint(model, *uid))
        .collect();

    // Arrays accessed per nest (affine references only).
    use std::collections::HashMap;
    let mut last_access: HashMap<u32, usize> = HashMap::new(); // array → nest order
    // Walk sites in RefId order, which the builder assigns in program
    // pre-order — so earlier nests come first.
    for site in &model.refs {
        let MemRef::Array { array, .. } = site.mr else {
            continue;
        };
        let Some(&top) = site.loop_path.first() else {
            continue;
        };
        let Some(o) = order_of(top) else { continue };
        if let Some(&prev_o) = last_access.get(&array.0) {
            if prev_o < o && !hints.hint(site.ref_id).spatial() {
                // Volume between the two accesses ≈ footprint of every
                // nest after the producer up to and including this one.
                let volume: Option<u64> = footprints[prev_o + 1..=o]
                    .iter()
                    .try_fold(0u64, |acc, f| f.map(|v| acc.saturating_add(v)));
                let fits = match (cfg.policy, volume) {
                    (SpatialPolicy::Aggressive, _) => true,
                    (_, Some(v)) => v <= cfg.l2_bytes,
                    (_, None) => false,
                };
                // The revisit itself must walk the array affinely with a
                // real stride: a reference whose subscript only involves
                // loop-carried scalars (e.g. a hash value) looks
                // invariant to this flow-insensitive analysis and must
                // not be marked — gzip's history probes are the paper's
                // example of misses the compiler cannot cover.
                let affine_walk = model.enclosing_ivs(site).iter().any(|iv| {
                    matches!(
                        crate::model::ref_byte_stride(model, site, *iv),
                        Some(s) if s != 0
                    )
                });
                if fits && affine_walk {
                    hints.add_spatial(site.ref_id);
                }
            }
        }
        last_access.insert(array.0, o);
    }
}

/// Total data volume one execution of top-level nest `uid` touches
/// (block-granular per touch; `None` when any trip count is symbolic).
fn nest_footprint(model: &ProgramModel<'_>, top_uid: usize) -> Option<u64> {
    let mut total = 0u64;
    for site in &model.refs {
        if site.loop_path.first() != Some(&top_uid) {
            continue;
        }
        let mut fp = per_touch_bytes(model, site);
        for &uid in &site.loop_path {
            match model.loops[uid].kind {
                LoopKind::For { trip: Some(t), .. } => fp = fp.saturating_mul(t),
                _ => return None,
            }
        }
        total = total.saturating_add(fp);
    }
    Some(total)
}

/// Decides phase-1a spatial marking for `Array` and `PtrIndex` sites.
/// Returns `None` for sites the rule does not apply to.
fn array_like_spatial(
    model: &ProgramModel<'_>,
    cfg: &AnalysisConfig,
    site: &RefSite<'_>,
) -> Option<bool> {
    let ivs = model.enclosing_ivs(site);
    if ivs.is_empty() {
        return None;
    }
    if !matches!(site.mr, MemRef::Array { .. } | MemRef::PtrIndex { .. }) {
        return None;
    }

    // Find the reuse loop: the innermost enclosing `for` whose IV moves
    // the reference by a sub-block byte stride per iteration.
    let for_uids: Vec<usize> = site
        .loop_path
        .iter()
        .copied()
        .filter(|uid| matches!(model.loops[*uid].kind, LoopKind::For { .. }))
        .collect();
    let innermost_for = *for_uids.last()?;

    for &uid in for_uids.iter().rev() {
        let LoopKind::For { iv, step, .. } = model.loops[uid].kind else {
            continue;
        };
        let Some(per_unit) = crate::model::ref_byte_stride(model, site, iv) else {
            // Non-affine or value-dependent subscripts: the spatial rule
            // cannot promise locality (indirect handles a[b[i]]).
            return Some(false);
        };
        if per_unit == 0 {
            continue; // invariant in this loop; look outward
        }
        let stride_bytes = per_unit.unsigned_abs() * step.unsigned_abs();
        if stride_bytes >= cfg.spatial_stride_max {
            // A stride of a full block (or more) never revisits a block:
            // not a spatial reuse carrier. Keep looking outward.
            continue;
        }
        if uid == innermost_for {
            return Some(true);
        }
        // Outer-loop spatial reuse: policy decides.
        return Some(match cfg.policy {
            SpatialPolicy::Aggressive => true,
            SpatialPolicy::Conservative => false,
            SpatialPolicy::Default => match reuse_distance(model, uid) {
                Some(bytes) => bytes <= cfg.l2_bytes,
                None => false, // symbolic bounds: be conservative (§4.1)
            },
        });
    }
    Some(false)
}

/// Estimated bytes touched by one iteration of loop `uid` — the reuse
/// distance for block reuse carried by `uid`.
///
/// Cache pressure is block-granular: a reference striding a whole block
/// (or more) per innermost iteration occupies one line per touch, so its
/// per-touch footprint is a block, not an element.
fn reuse_distance(model: &ProgramModel<'_>, uid: usize) -> Option<u64> {
    let mut total: u64 = 0;
    for site in &model.refs {
        let Some(pos) = site.loop_path.iter().position(|u| *u == uid) else {
            continue;
        };
        let mut footprint = per_touch_bytes(model, site);
        for &inner in &site.loop_path[pos + 1..] {
            match model.loops[inner].kind {
                LoopKind::For {
                    trip: Some(t), ..
                } => footprint = footprint.saturating_mul(t),
                _ => return None, // symbolic trip or while: unknown
            }
        }
        total = total.saturating_add(footprint);
    }
    Some(total)
}

/// Bytes of cache one dynamic touch of `site` occupies: the element for
/// sub-block innermost strides, a whole block otherwise.
fn per_touch_bytes(model: &ProgramModel<'_>, site: &RefSite<'_>) -> u64 {
    let elem = elem_size_of(model, site.mr);
    let innermost_for = site
        .loop_path
        .iter()
        .rev()
        .find_map(|uid| match model.loops[*uid].kind {
            LoopKind::For { iv, step, .. } => Some((iv, step)),
            LoopKind::While(_) => None,
        });
    let Some((iv, step)) = innermost_for else {
        return elem.max(grp_mem::BLOCK_BYTES);
    };
    match crate::model::ref_byte_stride(model, site, iv) {
        Some(s) if s.unsigned_abs() * step.unsigned_abs() < grp_mem::BLOCK_BYTES => elem,
        _ => grp_mem::BLOCK_BYTES,
    }
}

fn elem_size_of(model: &ProgramModel<'_>, mr: &MemRef) -> u64 {
    match mr {
        MemRef::Array { array, .. } => model.prog.array(*array).elem.size(),
        MemRef::PtrIndex { elem, .. } => elem.size(),
        MemRef::Field { strct, field, .. } => model.prog.strct(*strct).field_ty(*field).size(),
        MemRef::Deref { elem, .. } => elem.size(),
    }
}

/// Phase 1b: `*p` / `p->f` where `p` is a loop induction pointer with a
/// small constant increment (Figure 5).
fn induction_pointer_spatial(
    model: &ProgramModel<'_>,
    cfg: &AnalysisConfig,
    site: &RefSite<'_>,
) -> bool {
    let base = match site.mr {
        MemRef::Deref { base, .. } | MemRef::Field { base, .. } => base,
        _ => return false,
    };
    let Expr::Var(p) = base.as_ref() else {
        return false;
    };
    // `p` must be an induction pointer in one of the enclosing loops.
    site.loop_path.iter().any(|uid| {
        model.updates[*uid]
            .induction
            .get(p)
            .is_some_and(|step| step.unsigned_abs() <= cfg.small_stride_max)
    })
}

/// Phase 2 of Figure 7: propagate spatial marks through pointer bases,
/// including through single-assignment scalar pointers, to a fixpoint.
fn propagate(model: &ProgramModel<'_>, hints: &mut HintMap) {
    let mut tainted_vars: HashSet<VarId> = HashSet::new();
    loop {
        let mut changed = false;
        // Taint vars assigned from spatial loads or tainted vars.
        for (v, e) in &model.assigns {
            if tainted_vars.contains(v) {
                continue;
            }
            if expr_derives_spatial(e, hints, &tainted_vars) {
                tainted_vars.insert(*v);
                changed = true;
            }
        }
        // Mark pointer-based references whose base derives from a
        // spatial value.
        for site in &model.refs {
            if hints.hint(site.ref_id).spatial() {
                continue;
            }
            let base = match site.mr {
                MemRef::Field { base, .. }
                | MemRef::Deref { base, .. }
                | MemRef::PtrIndex { base, .. } => base,
                MemRef::Array { .. } => continue,
            };
            if expr_derives_spatial(base, hints, &tainted_vars) {
                hints.add_spatial(site.ref_id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

fn expr_derives_spatial(e: &Expr, hints: &HintMap, tainted: &HashSet<VarId>) -> bool {
    match e {
        Expr::I64(_) | Expr::F64(_) | Expr::ArrayBase(_) => false,
        Expr::Var(v) => tainted.contains(v),
        Expr::Load(r) => hints.hint(ref_id_of(r)).spatial(),
        Expr::Un(_, a) => expr_derives_spatial(a, hints, tainted),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
            expr_derives_spatial(a, hints, tainted) || expr_derives_spatial(b, hints, tainted)
        }
    }
}

fn ref_id_of(r: &MemRef) -> RefId {
    r.ref_id()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use grp_ir::build::*;
    use grp_ir::{ElemTy, ProgramBuilder};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn unit_stride_innermost_is_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[1024]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(1024),
            1,
            vec![assign(s, load(arr(a, vec![var(i)])))],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
    }

    #[test]
    fn large_stride_is_not_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[65536]);
        let i = pb.var("i");
        let s = pb.var("s");
        // a[64*i]: stride 512 bytes — no spatial locality.
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(1024),
            1,
            vec![assign(s, load(arr(a, vec![mul(c(64), var(i))])))],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).spatial());
    }

    #[test]
    fn transpose_access_spatial_only_when_column_fits_l2() {
        // a(j, i) with inner loop j: spatial reuse is carried by the
        // outer i loop; distance = one column sweep.
        let build = |rows: u64| {
            let mut pb = ProgramBuilder::new("t");
            let a = pb.array("a", ElemTy::F64, &[rows, 64]);
            let i = pb.var("i");
            let j = pb.var("j");
            let s = pb.var("s");
            pb.finish(vec![for_(
                i,
                c(0),
                c(64),
                1,
                vec![for_(
                    j,
                    c(0),
                    c(rows as i64),
                    1,
                    vec![assign(s, load(arr(a, vec![var(j), var(i)])))],
                )],
            )])
        };
        // Small: 1024 rows × 8 B = 8 KB per column sweep < 1 MB → spatial.
        let h = analyze(&build(1024), &cfg());
        assert!(h.hint(RefId(0)).spatial());
        // Large: 1M rows × 8 B = 8 MB > 1 MB → not spatial under Default.
        let h = analyze(&build(1 << 20), &cfg());
        assert!(!h.hint(RefId(0)).spatial());
        // … but Aggressive marks it anyway (§5.4).
        let h = analyze(&build(1 << 20), &AnalysisConfig::aggressive());
        assert!(h.hint(RefId(0)).spatial());
        // … and Conservative refuses even the small one.
        let h = analyze(&build(1024), &AnalysisConfig::conservative());
        assert!(!h.hint(RefId(0)).spatial());
    }

    #[test]
    fn symbolic_outer_reuse_is_conservative() {
        // a(j, i) where the inner trip count is symbolic: Default cannot
        // bound the reuse distance, so no mark.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.sym_array("a", ElemTy::F64, 2, false);
        let n = pb.var("n");
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(64),
            1,
            vec![for_(
                j,
                c(0),
                var(n),
                1,
                vec![assign(s, load(arr(a, vec![var(j), var(i)])))],
            )],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).spatial());
    }

    #[test]
    fn induction_pointer_deref_is_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let p = pb.var("p");
        let e = pb.var("e");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            lt(var(p), var(e)),
            vec![
                assign(s, load(deref(var(p), ElemTy::F64, 0))),
                assign(p, add(var(p), c(16))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
    }

    #[test]
    fn induction_pointer_with_large_stride_is_not_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let p = pb.var("p");
        let e = pb.var("e");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            lt(var(p), var(e)),
            vec![
                assign(s, load(deref(var(p), ElemTy::F64, 0))),
                assign(p, add(var(p), c(4096))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).spatial());
    }

    #[test]
    fn heap_array_rows_propagate_spatial() {
        // buf[i][j]: buf[i] is spatial (unit stride over pointers); the
        // row access buf[i][j] is spatial by unit stride in j AND by
        // propagation from buf[i].
        let mut pb = ProgramBuilder::new("t");
        let buf = pb.heap_array("buf", ElemTy::ptr(), &[128]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(128),
            1,
            vec![for_(
                j,
                c(0),
                c(64),
                1,
                vec![assign(
                    s,
                    load(ptr_index(
                        load(arr(buf, vec![var(i)])),
                        ElemTy::F64,
                        var(j),
                    )),
                )],
            )],
        )]);
        let h = analyze(&prog, &cfg());
        // RefId(0) = buf[i] (inner-first), RefId(1) = row deref.
        assert!(h.hint(RefId(0)).spatial(), "buf[i] spatial");
        assert!(h.hint(RefId(1)).spatial(), "buf[i][j] spatial");
    }

    #[test]
    fn propagation_through_row_pointer_variable() {
        // row = buf[i]; … row[j] … — taint flows through the scalar.
        let mut pb = ProgramBuilder::new("t");
        let buf = pb.heap_array("buf", ElemTy::ptr(), &[128]);
        let i = pb.var("i");
        let j = pb.var("j");
        let row = pb.var("row");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(128),
            1,
            vec![
                assign(row, load(arr(buf, vec![var(i)]))),
                for_(
                    j,
                    c(0),
                    c(64),
                    1,
                    vec![assign(
                        s,
                        load(ptr_index(var(row), ElemTy::F64, var(j))),
                    )],
                ),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(1)).spatial(), "row[j] inherits spatial");
    }

    #[test]
    fn recursive_traversal_is_not_spatial() {
        let mut pb = ProgramBuilder::new("t");
        let sid = pb.peek_struct_id();
        let node = pb.add_struct(
            "n",
            vec![
                grp_ir::types::field("next", ElemTy::ptr_to(sid)),
                grp_ir::types::field("v", ElemTy::I64),
            ],
        );
        let p = pb.var("p");
        let s = pb.var("s");
        let prog = pb.finish(vec![while_(
            ne(var(p), c(0)),
            vec![
                assign(s, load(fld(var(p), node, grp_ir::FieldId(1)))),
                assign(p, load(fld(var(p), node, grp_ir::FieldId(0)))),
            ],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(0)).spatial());
        assert!(!h.hint(RefId(1)).spatial());
    }

    #[test]
    fn inter_nest_reuse_marks_second_nest() {
        // Nest 1 streams `a`; nest 2 revisits `a` with a block-sized
        // stride (no intra-nest spatial reuse). The combined volume fits
        // the L2, so the §4.1 inter-nest rule marks the second ref.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let i = pb.var("i");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            for_(i, c(0), c(4096), 1, vec![assign(s, load(arr(a, vec![var(i)])))]),
            for_(j, c(0), c(512), 1, vec![assign(s, load(arr(a, vec![mul(c(8), var(j))])))]),
        ]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial(), "first nest: unit stride");
        assert!(
            h.hint(RefId(1)).spatial(),
            "second nest: inter-nest reuse within the L2"
        );
        // Conservative never applies the inter-nest rule.
        let h = analyze(&prog, &AnalysisConfig::conservative());
        assert!(!h.hint(RefId(1)).spatial());
    }

    #[test]
    fn inter_nest_reuse_respects_the_l2_bound() {
        // An intervening nest streams 4 MB: the revisit of `a` is too far
        // away to still be cached, so Default does not mark it — but
        // Aggressive does.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let big = pb.array("big", ElemTy::F64, &[1 << 19]);
        let i = pb.var("i");
        let k = pb.var("k");
        let j = pb.var("j");
        let s = pb.var("s");
        let prog = pb.finish(vec![
            for_(i, c(0), c(4096), 1, vec![assign(s, load(arr(a, vec![var(i)])))]),
            for_(k, c(0), c(1 << 19), 1, vec![assign(s, load(arr(big, vec![var(k)])))]),
            for_(j, c(0), c(512), 1, vec![assign(s, load(arr(a, vec![mul(c(8), var(j))])))]),
        ]);
        let h = analyze(&prog, &cfg());
        assert!(!h.hint(RefId(2)).spatial(), "4 MB intervening volume breaks reuse");
        let h = analyze(&prog, &AnalysisConfig::aggressive());
        assert!(h.hint(RefId(2)).spatial(), "aggressive ignores the bound");
    }

    #[test]
    fn store_references_get_spatial_hints_too() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[1024]);
        let i = pb.var("i");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(1024),
            1,
            vec![store(arr(a, vec![var(i)]), f(1.0))],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.hint(RefId(0)).spatial());
    }
}

//! Indirect array-reference detection (paper §4.3).
//!
//! Looks for `a(s·b(i) + e)` where `b(i)` is a sequentially-accessed
//! index array: dependence testing detects the spatial reuse on `b(i)`,
//! and "a simple analysis detects when a sequentially accessed array is
//! used as an index into another array … and generates an indirect
//! prefetch instruction using the address of `b(i)` and the base address
//! of array `c`". The directive is attached to the index-load site; the
//! interpreter lowers it to one explicit indirect-prefetch instruction
//! per index-array cache block (§3.3.3: "each one generates up to 16
//! prefetches, one for each index within a cache block").

use grp_cpu::RefId;
use grp_ir::{Expr, HintMap, IndirectSpec, MemRef};

use crate::model::{affine_of, const_fold, LoopKind, ProgramModel};
use crate::policy::AnalysisConfig;

/// Runs the indirect pass.
pub fn mark_indirect(model: &ProgramModel<'_>, _cfg: &AnalysisConfig, hints: &mut HintMap) {
    for site in &model.refs {
        let MemRef::Array { array, indices, .. } = site.mr else {
            continue;
        };
        // The paper's pattern is one-dimensional in the indexed dimension;
        // we look at the spatial (last) subscript.
        let Some(index_expr) = indices.last() else {
            continue;
        };
        let Some((index_load, scale)) = value_affine_load(index_expr) else {
            continue;
        };
        // Every *other* subscript must not itself contain loads.
        if indices[..indices.len() - 1]
            .iter()
            .any(|e| !affine_of(e, &[]).loads.is_empty())
        {
            continue;
        }
        // The index load must be a sequentially-accessed i32 array
        // (the paper assumes a 4-byte index element, §3.3.3).
        let Some(b_ref) = sequential_i32_array_load(model, index_load) else {
            continue;
        };
        let target_decl = model.prog.array(*array);
        let elem_size = (target_decl.elem.size() as i64 * scale).unsigned_abs() as u32;
        if elem_size == 0 {
            continue;
        }
        hints.set_indirect(
            b_ref,
            IndirectSpec {
                target: *array,
                elem_size,
            },
        );
    }
}

/// Matches `s·L + e` where `L` is a single load and `s`, `e` are
/// constants (or loop-invariant additions). Returns the load's `MemRef`
/// and the scale `s`.
fn value_affine_load(e: &Expr) -> Option<(&MemRef, i64)> {
    match e {
        Expr::Load(r) => Some((r, 1)),
        Expr::Bin(op, a, b) => {
            use grp_ir::BinOp::*;
            match op {
                Add | Sub => {
                    // Exactly one side holds the load; the other must be
                    // load-free (it only shifts the base).
                    let la = contains_load(a);
                    let lb = contains_load(b);
                    match (la, lb) {
                        (true, false) => value_affine_load(a),
                        (false, true) => {
                            let (r, s) = value_affine_load(b)?;
                            Some((r, if matches!(op, Sub) { -s } else { s }))
                        }
                        _ => None,
                    }
                }
                Mul => {
                    if let Some(k) = const_fold(b) {
                        let (r, s) = value_affine_load(a)?;
                        Some((r, s * k))
                    } else if let Some(k) = const_fold(a) {
                        let (r, s) = value_affine_load(b)?;
                        Some((r, s * k))
                    } else {
                        None
                    }
                }
                Shl => {
                    let k = const_fold(b)?;
                    let (r, s) = value_affine_load(a)?;
                    Some((r, s << (k as u32).min(32)))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn contains_load(e: &Expr) -> bool {
    match e {
        Expr::Load(_) => true,
        Expr::I64(_) | Expr::F64(_) | Expr::Var(_) | Expr::ArrayBase(_) => false,
        Expr::Un(_, a) => contains_load(a),
        Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => contains_load(a) || contains_load(b),
    }
}

/// Checks that `mr` is a load from an `i32` array whose subscript walks
/// sequentially (|stride| = 1 element) under an enclosing `for` loop.
/// Returns the index-load's site id.
fn sequential_i32_array_load(model: &ProgramModel<'_>, mr: &MemRef) -> Option<RefId> {
    let MemRef::Array { array, indices, .. } = mr else {
        return None;
    };
    let decl = model.prog.array(*array);
    if decl.elem.size() != 4 {
        return None;
    }
    let site = model.site(mr.ref_id());
    let ivs = model.enclosing_ivs(site);
    let last = affine_of(indices.last()?, &ivs);
    if last.nonlinear || !last.loads.is_empty() {
        return None;
    }
    // Sequential under some enclosing for loop: |coeff·step| == 1.
    for &uid in site.loop_path.iter().rev() {
        if let LoopKind::For { iv, step, .. } = model.loops[uid].kind {
            if last.coeff(iv).unsigned_abs() * step.unsigned_abs() == 1 {
                return Some(mr.ref_id());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::analyze;
    use crate::policy::AnalysisConfig;
    use grp_cpu::RefId;
    use grp_ir::build::*;
    use grp_ir::{ElemTy, ProgramBuilder};

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn classic_a_of_b_of_i_detected() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let b = pb.array("b", ElemTy::I32, &[512]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                add(var(s), load(arr(a, vec![load(arr(b, vec![var(i)]))]))),
            )],
        )]);
        let h = analyze(&prog, &cfg());
        // Index load is RefId(0); data load is RefId(1).
        let spec = h.indirect(RefId(0)).expect("indirect detected");
        assert_eq!(spec.target, a);
        assert_eq!(spec.elem_size, 8);
        assert!(h.indirect(RefId(1)).is_none());
    }

    #[test]
    fn scaled_and_offset_pattern_detected() {
        // a[4*b[i] + 2]
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F32, &[65536]);
        let b = pb.array("b", ElemTy::I32, &[512]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                load(arr(
                    a,
                    vec![add(mul(c(4), load(arr(b, vec![var(i)]))), c(2))],
                )),
            )],
        )]);
        let h = analyze(&prog, &cfg());
        let spec = h.indirect(RefId(0)).expect("indirect detected");
        assert_eq!(spec.elem_size, 16, "scale 4 × f32 size 4");
    }

    #[test]
    fn i64_index_array_is_not_detected() {
        // The paper's engine assumes 4-byte index elements.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let b = pb.array("b", ElemTy::I64, &[512]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                load(arr(a, vec![load(arr(b, vec![var(i)]))])),
            )],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.indirect(RefId(0)).is_none());
    }

    #[test]
    fn strided_index_access_is_not_sequential() {
        // b[8*i] skips blocks — not the paper's pattern.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let b = pb.array("b", ElemTy::I32, &[4096]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                load(arr(a, vec![load(arr(b, vec![mul(c(8), var(i))]))])),
            )],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.indirect(RefId(0)).is_none());
    }

    #[test]
    fn two_loads_in_index_are_rejected() {
        // a[b[i] + d[i]] is not the single-index-array pattern.
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let b = pb.array("b", ElemTy::I32, &[512]);
        let d = pb.array("d", ElemTy::I32, &[512]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                load(arr(
                    a,
                    vec![add(
                        load(arr(b, vec![var(i)])),
                        load(arr(d, vec![var(i)])),
                    )],
                )),
            )],
        )]);
        let h = analyze(&prog, &cfg());
        assert!(h.indirect(RefId(0)).is_none());
        assert!(h.indirect(RefId(1)).is_none());
    }

    #[test]
    fn indirect_pass_can_be_disabled() {
        let mut pb = ProgramBuilder::new("t");
        let a = pb.array("a", ElemTy::F64, &[4096]);
        let b = pb.array("b", ElemTy::I32, &[512]);
        let i = pb.var("i");
        let s = pb.var("s");
        let prog = pb.finish(vec![for_(
            i,
            c(0),
            c(512),
            1,
            vec![assign(
                s,
                load(arr(a, vec![load(arr(b, vec![var(i)]))])),
            )],
        )]);
        let mut conf = cfg();
        conf.indirect = false;
        let h = analyze(&prog, &conf);
        assert_eq!(h.indirect_count(), 0);
    }
}

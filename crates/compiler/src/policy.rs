//! Analysis configuration and the §5.4 spatial-marking policies.

/// How aggressively the compiler marks references `spatial`.
///
/// §5.4 of the paper: "The more aggressive policy marks a reference as
/// spatial even \[if\] its reuse distance is greater than the L2 cache
/// size. The more conservative scheme marks a reference as spatial only
/// when its reuse sits in the innermost loop."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SpatialPolicy {
    /// Innermost-loop reuse only.
    Conservative,
    /// Innermost reuse, plus known reuse distances under the L2 size
    /// (the paper's default GRP policy).
    #[default]
    Default,
    /// Any detected spatial access pattern, regardless of distance.
    Aggressive,
}

/// Knobs for [`crate::analyze`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// L2 capacity used as the reuse-distance bound (paper: 1 MB).
    pub l2_bytes: u64,
    /// Spatial marking policy.
    pub policy: SpatialPolicy,
    /// Enable the spatial pass (§4.1/§4.2).
    pub spatial: bool,
    /// Enable the pointer/recursive pass (§4.5).
    pub pointer: bool,
    /// Enable indirect-array detection (§4.3).
    pub indirect: bool,
    /// Enable variable-size regions (§4.4). Off = GRP/Fix.
    pub varsize: bool,
    /// Largest constant pointer increment still considered "small"
    /// (spatial) for induction pointers (§4.2). One cache block.
    pub small_stride_max: u64,
    /// Largest per-iteration byte stride still considered spatial for
    /// array references (strides beyond a block defeat region prefetch).
    pub spatial_stride_max: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            l2_bytes: 1024 * 1024,
            policy: SpatialPolicy::Default,
            spatial: true,
            pointer: true,
            indirect: true,
            varsize: true,
            small_stride_max: 64,
            spatial_stride_max: 64,
        }
    }
}

impl AnalysisConfig {
    /// The paper's default GRP compiler configuration with variable-size
    /// regions (GRP/Var).
    pub fn grp_var() -> Self {
        Self::default()
    }

    /// GRP with fixed-size regions only (GRP/Fix): the variable-size pass
    /// is disabled.
    pub fn grp_fix() -> Self {
        Self {
            varsize: false,
            ..Self::default()
        }
    }

    /// The §5.4 aggressive policy variant.
    pub fn aggressive() -> Self {
        Self {
            policy: SpatialPolicy::Aggressive,
            ..Self::default()
        }
    }

    /// The §5.4 conservative policy variant.
    pub fn conservative() -> Self {
        Self {
            policy: SpatialPolicy::Conservative,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_platform() {
        let c = AnalysisConfig::default();
        assert_eq!(c.l2_bytes, 1 << 20);
        assert_eq!(c.policy, SpatialPolicy::Default);
        assert!(c.spatial && c.pointer && c.indirect && c.varsize);
    }

    #[test]
    fn fix_variant_disables_varsize_only() {
        let c = AnalysisConfig::grp_fix();
        assert!(!c.varsize);
        assert!(c.spatial && c.pointer && c.indirect);
    }

    #[test]
    fn policy_variants() {
        assert_eq!(AnalysisConfig::aggressive().policy, SpatialPolicy::Aggressive);
        assert_eq!(
            AnalysisConfig::conservative().policy,
            SpatialPolicy::Conservative
        );
        assert_eq!(SpatialPolicy::default(), SpatialPolicy::Default);
    }
}

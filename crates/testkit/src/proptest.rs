//! A minimal property-testing harness with a proptest-compatible
//! front end.
//!
//! The surface intentionally mirrors the subset of `proptest` the
//! workspace's suites use, so the test files read identically:
//!
//! - strategies: integer ranges (`0u64..4096`, `1i64..=24`),
//!   [`any`]`::<T>()`, tuples of strategies, [`collection::vec`],
//!   [`Strategy::prop_map`], and [`prop_oneof!`](crate::prop_oneof)
//!   unions;
//! - the [`proptest!`](crate::proptest!) macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Every test derives its generator seed from a fixed workspace seed
//! XOR a hash of the test's name: runs are bit-identical across
//! machines and invocations, and one test's case count never perturbs
//! another's stream. On failure the runner greedily shrinks the input
//! (truncating and element-dropping vectors, halving integers toward
//! their lower bound) and panics with the minimal failing input.

use crate::rng::{Rng, SampleUniform};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Runner configuration, named for drop-in compatibility.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
    /// Upper bound on shrink-candidate executions after a failure.
    pub max_shrink_iters: u32,
    /// Workspace base seed; each test XORs in a hash of its name.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 2048,
            seed: 0x5eed_7e57_0000_0000,
        }
    }
}

impl ProptestConfig {
    /// The default configuration with `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of random values plus a shrinker for failing ones.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut Rng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. The
    /// runner keeps any candidate that still fails and recurses; an
    /// empty vec ends shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// A strategy producing `f(value)`. Mapped values do not shrink
    /// (the mapping is not invertible in general).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut Rng) -> T {
        (**self).new_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        (**self).shrink(value)
    }
}

/// Shrink candidates for an integer `v`, moving toward `low`.
fn shrink_int_toward<T: SampleUniform>(low: T, v: T) -> Vec<T>
where
    T: TryInto<i128> + Copy,
    i128: TryInto<T>,
{
    let (Ok(lo), Ok(val)) = (low.try_into(), v.try_into()) else {
        return Vec::new();
    };
    if val == lo {
        return Vec::new();
    }
    let mut out: Vec<i128> = vec![lo, lo + (val - lo) / 2, val - (val - lo).signum()];
    out.dedup();
    out.into_iter()
        .filter(|&c| c != val)
        .filter_map(|c| c.try_into().ok())
        .collect()
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + Clone + Debug + TryInto<i128> + Copy,
    i128: TryInto<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut Rng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        shrink_int_toward(self.start, *value)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + Clone + Debug + TryInto<i128> + Copy,
    i128: TryInto<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut Rng) -> T {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        shrink_int_toward(*self.start(), *value)
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: Clone + Debug + Sized {
    /// One uniformly random value.
    fn arbitrary(rng: &mut Rng) -> Self;

    /// Candidate simplifications, simplest first.
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut Rng) -> $t {
                rng.gen()
            }

            fn shrink_value(&self) -> Vec<$t> {
                shrink_int_toward(0, *self)
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.gen()
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut Rng) -> f64 {
        rng.gen()
    }
}

/// The full-domain strategy for `T` — `any::<u64>()`, `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut Rng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// A choice among strategies of a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Clone + Debug> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut Rng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // Which option produced the value is unknown; offer every
        // option's candidates (spurious ones are just re-tested).
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut c = value.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::*;

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length, inclusive.
        pub max_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_incl: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max_incl: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_incl: n,
            }
        }
    }

    /// A strategy for `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_incl);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.size.min;
            if value.len() > min {
                // Aggressive truncations first, then single drops.
                out.push(value[..min].to_vec());
                let half = (value.len() / 2).max(min);
                if half < value.len() && half > min {
                    out.push(value[..half].to_vec());
                }
                for i in 0..value.len() {
                    let mut c = value.clone();
                    c.remove(i);
                    out.push(c);
                }
            }
            for i in 0..value.len() {
                for cand in self.element.shrink(&value[i]) {
                    let mut c = value.clone();
                    c[i] = cand;
                    out.push(c);
                }
            }
            out
        }
    }
}

/// FNV-1a, used to give each property its own seed stream.
pub fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Renders a caught panic payload.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedily shrinks a failing input: repeatedly re-runs `strat`'s
/// shrink candidates, keeping the first that still fails, until no
/// candidate fails or `max_iters` candidates have been tested. Returns
/// the minimal failing value, its failure message, and the number of
/// candidates tested. Usable outside the panic-driven
/// [`proptest!`](crate::proptest!) runner — e.g. by fuzz harnesses that
/// want a minimal reproducer without unwinding.
pub fn greedy_shrink<S, F>(
    strat: &S,
    value: S::Value,
    first_msg: String,
    max_iters: u32,
    mut run: F,
) -> (S::Value, String, u32)
where
    S: Strategy + ?Sized,
    F: FnMut(&S::Value) -> Result<(), String>,
{
    let mut current = value;
    let mut msg = first_msg;
    let mut tested = 0u32;
    'shrinking: while tested < max_iters {
        let mut improved = false;
        for cand in strat.shrink(&current) {
            if tested >= max_iters {
                break 'shrinking;
            }
            tested += 1;
            if let Err(m) = run(&cand) {
                current = cand;
                msg = m;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (current, msg, tested)
}

/// Drives one property: `cfg.cases` random cases, then greedy
/// shrinking on the first failure. Called by the
/// [`proptest!`](crate::proptest!) macro; not meant for direct use.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) if any case fails, after
/// shrinking, with the minimal failing input in the message.
pub fn run_proptest<S, F>(test_name: &str, cfg: &ProptestConfig, strat: &S, mut run: F)
where
    S: Strategy,
    F: FnMut(&S::Value) -> Result<(), String>,
{
    let mut rng = Rng::seed_from_u64(cfg.seed ^ hash_name(test_name));
    for case in 0..cfg.cases {
        let value = strat.new_value(&mut rng);
        let Err(first_msg) = run(&value) else {
            continue;
        };
        let (current, msg, tested) =
            greedy_shrink(strat, value, first_msg, cfg.max_shrink_iters, &mut run);
        panic!(
            "property '{test_name}' failed (case {case} of {cases}, \
             {tested} shrink steps): {msg}\nminimal failing input: {current:#?}",
            cases = cfg.cases,
        );
    }
}

/// The names test files import via `use …::proptest::prelude::*;`.
pub mod prelude {
    pub use super::{
        any, greedy_shrink, Any, Arbitrary, BoxedStrategy, Map, ProptestConfig, Strategy, Union,
    };
    pub use crate::rng::Rng as TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests.
///
/// Mirrors proptest's macro for the supported shapes:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(xs in proptest::collection::vec(0u64..10, 1..50), flip in any::<bool>()) {
///         prop_assert!(xs.len() < 50 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::proptest::ProptestConfig = $cfg;
                let __strat = ($($strat,)+);
                $crate::proptest::run_proptest(
                    ::core::stringify!($name),
                    &__cfg,
                    &__strat,
                    |__value| {
                        let ($($pat,)+) = ::core::clone::Clone::clone(__value);
                        match ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(move || $body),
                        ) {
                            ::core::result::Result::Ok(()) => ::core::result::Result::Ok(()),
                            ::core::result::Result::Err(e) => ::core::result::Result::Err(
                                $crate::proptest::panic_message(e),
                            ),
                        }
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::proptest::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` under a name the ported suites already use. Failures are
/// caught by the runner and drive shrinking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { ::std::assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { ::std::assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_ne!($left, $right, $($fmt)+) };
}

/// A weighted-less choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::proptest::Union::new(::std::vec![
            $($crate::proptest::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate::proptest;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(xs in proptest::collection::vec(0u64..100, 3..10)) {
            prop_assert!((3..10).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn tuples_and_any_work(pair in (1i64..=8, any::<bool>()), n in 0u32..5) {
            let (v, _flip) = pair;
            prop_assert!((1..=8).contains(&v));
            prop_assert!(n < 5);
        }

        #[test]
        fn oneof_and_map_generate(v in prop_oneof![
            (1u64..10).prop_map(|x| x * 2),
            (50u64..60).prop_map(|x| x + 1),
        ]) {
            prop_assert!((2..20).contains(&v) || (51..61).contains(&v));
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimal_vec() {
        let strat = (super::collection::vec(0u64..100, 0..20),);
        let caught = std::panic::catch_unwind(|| {
            super::run_proptest(
                "shrink_probe",
                &ProptestConfig::with_cases(200),
                &strat,
                |(xs,)| {
                    if xs.iter().any(|&x| x >= 10) {
                        Err("element >= 10".into())
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = super::panic_message(caught.expect_err("property must fail"));
        // Greedy shrinking must reach the canonical minimal input: a
        // single element of exactly 10.
        assert!(msg.contains("10"), "unexpected shrink result: {msg}");
        assert!(msg.contains("shrink"), "runner reports shrink steps: {msg}");
    }

    #[test]
    fn runs_are_reproducible() {
        let strat = (super::collection::vec(0u64..1000, 1..50),);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            super::run_proptest(
                "repro_probe",
                &ProptestConfig::with_cases(16),
                &strat,
                |(xs,)| {
                    out.push(xs.clone());
                    Ok(())
                },
            );
        }
        assert_eq!(a, b, "same test name + config ⇒ same case stream");
    }
}

//! Hermetic test substrate for the GRP reproduction.
//!
//! The paper's evaluation (Tables 1–6, Figures 1/9–12) rests on
//! deterministic, repeatable simulation: SRP, GRP, and the stride
//! baseline are only comparable if every run of a workload produces the
//! identical access trace. This crate gives the workspace a test
//! substrate it fully owns — no registry, no network, no
//! version-resolution drift:
//!
//! - [`rng`] — a splitmix64-seeded xoshiro256** PRNG with the
//!   `seed_from_u64` / `gen_range` / `shuffle` surface the workload
//!   kernels use to plant their data structures.
//! - [`proptest`] — a minimal property-testing harness (integer, vec,
//!   and tuple generators; fixed-seed case iteration; greedy shrinking)
//!   behind a `proptest!`-compatible macro front end.
//! - [`bench`] — a `std::time`-based micro-bench harness with a
//!   criterion-compatible surface (`criterion_group!`, benchmark
//!   groups, `--bench` detection).
//!
//! Everything is seeded explicitly; nothing reads the OS entropy pool,
//! the clock (outside of bench timing), or the environment (outside of
//! bench CLI args). Two runs of any test binary are bit-identical.

#![deny(missing_docs)]

pub mod bench;
pub mod proptest;
pub mod rng;

pub use rng::Rng;

//! Deterministic PRNG: xoshiro256** seeded through splitmix64.
//!
//! The workspace convention (see `kernels/util.rs`) is that every
//! workload derives its generator as `Rng::seed_from_u64(0x5eed_0000 ^
//! salt)` with a per-workload salt, so traces are reproducible across
//! runs, machines, and rustc versions. xoshiro256** is Blackman &
//! Vigna's all-purpose generator: 256 bits of state, period 2^256 − 1,
//! and no linear artifacts in the starred output. splitmix64 expands
//! the single `u64` seed into the four state words, which guarantees
//! the all-zero state (the one point xoshiro cannot leave) is never
//! produced.

use std::ops::{Range, RangeInclusive};

/// splitmix64: a tiny, fast, 64-bit state generator used only to expand
/// seeds. Output sequence is Vigna's reference constants.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator starting from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The workspace's deterministic generator: xoshiro256**.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expands `seed` through splitmix64 into the four state words.
    ///
    /// This mirrors the `SeedableRng::seed_from_u64` convention, so the
    /// kernel seeding scheme (`0x5eed_0000 ^ salt`) carries over
    /// unchanged.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        Rng { s }
    }

    /// The next 64-bit output (the ** scrambler over state word 1).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32-bit output (upper half of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    pub fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform sample from `range` (`low..high` or `low..=high` for
    /// integers, `low..high` for `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// A child generator with an independent stream, derived from (and
    /// advancing) this one. Used by the property-test runner to give
    /// each case its own stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait Random {
    /// A uniformly random value.
    fn random(rng: &mut Rng) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),+) => {$(
        impl Random for $t {
            #[inline]
            fn random(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random(rng: &mut Rng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for i128 {
    fn random(rng: &mut Rng) -> i128 {
        u128::random(rng) as i128
    }
}

impl Random for bool {
    #[inline]
    fn random(rng: &mut Rng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Random for f64 {
    #[inline]
    fn random(rng: &mut Rng) -> f64 {
        rng.unit_f64()
    }
}

impl Random for f32 {
    #[inline]
    fn random(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types with uniform bounded sampling.
///
/// Sampling uses the multiply-shift reduction `(x * span) >> 64`, which
/// maps the 64-bit output onto `[0, span)` without division. (Its bias
/// is at most `span / 2^64` — irrelevant for test-data generation, and
/// worth it for speed and branch-free determinism.)
pub trait SampleUniform: Copy + PartialOrd + std::fmt::Debug {
    /// A uniform sample from `[low, high]`.
    fn sample_inclusive(rng: &mut Rng, low: Self, high: Self) -> Self;
    /// The predecessor value (used to close `low..high` ranges).
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_inclusive(rng: &mut Rng, low: $t, high: $t) -> $t {
                debug_assert!(low <= high);
                // Span fits in u128 for every <=64-bit integer type.
                let span = (high as i128 - low as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
            #[inline]
            fn prev(self) -> $t {
                self.wrapping_sub(1)
            }
        }
    )+};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range forms [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from(self, rng: &mut Rng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> T {
        assert!(self.start < self.end, "gen_range on empty range");
        T::sample_inclusive(rng, self.start, self.end.prev())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range on empty range");
        T::sample_inclusive(rng, low, high)
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from(self, rng: &mut Rng) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen::<f32>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Vigna's reference splitmix64 from seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn xoshiro_is_deterministic_and_distinct_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&w));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0usize..=0);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_covers_small_spans() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 9];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..9)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 9 values reachable: {seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>(), "shuffle moved something");
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut r = Rng::seed_from_u64(9);
        let mut a = r.fork();
        let mut b = r.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

//! A `std::time`-based micro-bench harness with a criterion-compatible
//! surface.
//!
//! Bench targets keep `harness = false` and the familiar shape:
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `sample_size`, `bench_function`, `bench_with_input`, and
//! `BenchmarkId`. Two execution modes, matching criterion's contract
//! with cargo:
//!
//! - `cargo bench` passes `--bench`: every benchmark runs a warmup
//!   iteration plus `sample_size` timed samples and prints
//!   median/min/max.
//! - `cargo test` runs the same binary *without* `--bench`: every
//!   benchmark body executes exactly once as a smoke test, so the
//!   tier-1 gate stays fast but still type-checks and exercises each
//!   experiment.
//!
//! A positional CLI argument filters benchmarks by substring, like
//! `cargo bench -- fig9`.

use std::time::{Duration, Instant};

/// Harness entry point, named for drop-in compatibility.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Criterion {
            bench_mode: args.iter().any(|a| a == "--bench"),
            filter: args.iter().find(|a| !a.starts_with('-')).cloned(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self.bench_mode, self.filter.as_deref(), id.into().0, 10, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (bench mode only).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `f` as the benchmark `group/id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().0);
        run_one(
            self.c.bench_mode,
            self.c.filter.as_deref(),
            label,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs `f(bencher, input)` as the benchmark `group/id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for criterion surface parity).
    pub fn finish(self) {}
}

/// A benchmark label; `from_parameter` renders a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId(pub String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter, for groups whose name already says what
    /// varies.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Times the body passed to [`Bencher::iter`].
pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs and times `f`. In bench mode: one warmup call, then
    /// `sample_size` timed calls. In test (smoke) mode: exactly one
    /// call, untimed reporting.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if !self.bench_mode {
            std::hint::black_box(f());
            return;
        }
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    bench_mode: bool,
    filter: Option<&str>,
    label: String,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filt) = filter {
        if !label.contains(filt) {
            return;
        }
    }
    let mut b = Bencher {
        bench_mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if !bench_mode {
        println!("smoke {label} ... ok");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort();
    match sorted.as_slice() {
        [] => println!("bench {label:<44} (no samples: iter never called)"),
        samples => {
            let median = samples[samples.len() / 2];
            let min = samples[0];
            let max = samples[samples.len() - 1];
            println!(
                "bench {label:<44} median {:>10} min {:>10} max {:>10} ({} samples)",
                fmt_duration(median),
                fmt_duration(min),
                fmt_duration(max),
                samples.len(),
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

pub use crate::{criterion_group, criterion_main};

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::bench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// The `fn main` of a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_exactly_once() {
        let mut calls = 0;
        run_one(false, None, "probe".into(), 10, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_runs_warmup_plus_samples() {
        let mut calls = 0;
        run_one(true, None, "probe".into(), 5, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 6);
    }

    #[test]
    fn filter_skips_nonmatching_benchmarks() {
        let mut calls = 0;
        run_one(true, Some("other"), "probe".into(), 5, |b| {
            b.iter(|| calls += 1);
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}

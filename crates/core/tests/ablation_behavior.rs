//! Behavioural tests for the ablation knobs DESIGN.md calls out: each
//! configuration axis must actually change the mechanism it claims to.

use grp_core::engine::region::{RegionConfig, RegionPrefetcher};
use grp_core::engine::Prefetcher;
use grp_core::{run_trace, run_trace_with_engine, Scheme, SimConfig};
use grp_cpu::{HintSet, RefId, Trace};
use grp_mem::{Addr, Cache, CacheConfig, Dram, HeapRange, Memory, MshrFile, RegionAddr};

fn heap() -> HeapRange {
    HeapRange {
        start: Addr(0x10_0000),
        end: Addr(0x100_0000),
    }
}

fn miss(p: &mut RegionPrefetcher, l2: &Cache, region: u64) {
    let b = RegionAddr(region).block(0);
    p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, l2);
}

#[test]
fn lifo_services_newest_region_first_fifo_oldest() {
    let l2 = Cache::new(CacheConfig::l2_spec());
    let mshrs = MshrFile::new(8);
    let dram = Dram::new(Default::default());

    let mut lifo = RegionPrefetcher::new(RegionConfig::srp(32));
    miss(&mut lifo, &l2, 1);
    miss(&mut lifo, &l2, 2);
    let c = lifo.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
    assert_eq!(c.block.region(), RegionAddr(2), "LIFO: newest first");

    let mut cfg = RegionConfig::srp(32);
    cfg.fifo = true;
    let mut fifo = RegionPrefetcher::new(cfg);
    miss(&mut fifo, &l2, 1);
    miss(&mut fifo, &l2, 2);
    let c = fifo.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
    assert_eq!(c.block.region(), RegionAddr(1), "FIFO: oldest first");
}

#[test]
fn fifo_drops_newest_when_full_lifo_drops_oldest() {
    let l2 = Cache::new(CacheConfig::l2_spec());
    let mut lifo = RegionPrefetcher::new(RegionConfig::srp(2));
    for r in 1..=3 {
        miss(&mut lifo, &l2, r);
    }
    assert_eq!(lifo.queue_len(), 2);
    assert_eq!(lifo.stats().entries_dropped, 1);

    let mut cfg = RegionConfig::srp(2);
    cfg.fifo = true;
    let mut fifo = RegionPrefetcher::new(cfg);
    for r in 1..=3 {
        miss(&mut fifo, &l2, r);
    }
    assert_eq!(fifo.queue_len(), 2);
    assert_eq!(fifo.stats().entries_dropped, 1);
}

/// A sparse access pattern under MRU-insertion (the ablation) pollutes
/// the cache measurably more than the paper's LRU-insertion policy.
#[test]
fn mru_insertion_pollutes_more_than_lru() {
    // Alternate phases: stream one region (triggering useless region
    // prefetches), then re-touch a resident working set. Under MRU
    // insertion the prefetches push the working set out.
    let mut t = Trace::new();
    // Working set: 512 blocks, touched to become resident.
    for i in 0..512u64 {
        t.push_load(Addr(0x20_0000 + i * 64), 8, RefId(0), HintSet::none(), None);
    }
    // Sparse far misses: one block per region over 512 regions.
    for i in 0..512u64 {
        t.push_load(Addr(0x80_0000 + i * 4096), 8, RefId(1), HintSet::none(), None);
        t.push_compute(64);
    }
    // Re-touch the working set.
    for i in 0..512u64 {
        t.push_load(Addr(0x20_0000 + i * 64), 8, RefId(2), HintSet::none(), None);
        t.push_compute(8);
    }
    t.finish();
    let mem = Memory::new();

    let lru_cfg = SimConfig::paper();
    let mut mru_cfg = SimConfig::paper();
    mru_cfg.prefetch_mru_insert = true;

    let lru = run_trace(&t, &mem, heap(), Scheme::Srp, &lru_cfg);
    let mru = run_trace(&t, &mem, heap(), Scheme::Srp, &mru_cfg);
    assert!(
        mru.l2.demand_misses >= lru.l2.demand_misses,
        "MRU insertion cannot pollute less: {} vs {}",
        mru.l2.demand_misses,
        lru.l2.demand_misses
    );
}

#[test]
fn custom_engine_injection_works() {
    // run_trace_with_engine lets ablations construct arbitrary engines.
    let mut t = Trace::new();
    for i in 0..256u64 {
        t.push_load(
            Addr(0x20_0000 + i * 8),
            8,
            RefId(0),
            HintSet::none().with_spatial(),
            None,
        );
        t.push_compute(8);
    }
    t.finish();
    let mem = Memory::new();
    let cfg = SimConfig::paper();
    let mut rc = RegionConfig::grp(32, false, 6);
    rc.probe_depth = 1;
    let engine = Box::new(RegionPrefetcher::new(rc));
    let r = run_trace_with_engine(&t, &mem, heap(), Scheme::GrpFix, &cfg, engine);
    assert!(r.prefetches_issued > 0);
    assert_eq!(r.instructions, t.instructions());
}

#[test]
fn shallow_recursion_chases_less_than_deep() {
    // Build a linked chain in memory; deeper recursion settings must
    // enqueue at least as many pointer prefetches.
    let mut mem = Memory::new();
    let mut nodes = Vec::new();
    for i in 0..64u64 {
        nodes.push(Addr(0x20_0000 + i * 128));
    }
    for w in nodes.windows(2) {
        mem.write_u64(w[0], w[1].0);
    }
    let mut t = Trace::new();
    let mut prev = None;
    // Chase the chain with recursive-hinted loads.
    let mut cur = nodes[0];
    for _ in 0..64 {
        let s = t.push_load(cur, 8, RefId(0), HintSet::none().with_recursive(), prev);
        prev = Some(s);
        cur = Addr(mem.read_u64(cur));
        if cur.0 == 0 {
            break;
        }
    }
    t.finish();
    let hr = HeapRange {
        start: Addr(0x20_0000),
        end: Addr(0x30_0000),
    };
    let cfg_shallow = {
        let mut c = SimConfig::paper();
        c.recursive_depth = 1;
        c
    };
    let cfg_deep = {
        let mut c = SimConfig::paper();
        c.recursive_depth = 6;
        c
    };
    let shallow = run_trace(&t, &mem, hr, Scheme::GrpVar, &cfg_shallow);
    let deep = run_trace(&t, &mem, hr, Scheme::GrpVar, &cfg_deep);
    assert!(
        deep.engine.pointer_entries >= shallow.engine.pointer_entries,
        "deep {} vs shallow {}",
        deep.engine.pointer_entries,
        shallow.engine.pointer_entries
    );
    assert!(deep.cycles <= shallow.cycles, "deeper chase never slower here");
}

//! System-level reference oracle and differential runner.
//!
//! [`OracleSystem`] re-implements the scheme-independent memory semantics
//! of [`MemSystem`](crate::MemSystem) — L1/L2 lookup, MSHR merge and
//! wait-for-free-register loops, DRAM demand issue, fill propagation and
//! writeback — on top of the deliberately naive `grp_mem::oracle` models,
//! with no prefetch engine, no observer seam, no binary heap, and no
//! bit-twiddling. Replaying a trace under no-prefetch through both
//! systems and comparing *every access* (hit/miss classification and
//! completion cycle) plus the end state (cycles, stats, final cache
//! contents) turns "the optimization was correct once" into a standing
//! gate: [`differential_check`] reports the first diverging access.

use grp_cpu::{RefId, Trace, TraceEvent, Window};
use grp_mem::oracle::{OracleCache, OracleDram, OracleMshr};
use grp_mem::{Addr, BlockAddr, HeapRange, InsertPriority, Memory, RequestKind};

use crate::config::{IdealMode, SimConfig};
use crate::engine::NoPrefetcher;
use crate::faults::{FaultAction, FaultPlan, FaultState};
use crate::memsys::MemSystem;

/// How a demand access resolved, at the granularity both systems can
/// classify from their externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Hit in the L1 data cache.
    L1Hit,
    /// L1 miss merged into an outstanding L1-level fetch.
    L1Merge,
    /// L1 miss, L2 hit.
    L2Hit,
    /// L2 miss merged into an outstanding L2-level fetch.
    L2Merge,
    /// L2 miss sent to DRAM.
    DramDemand,
}

/// A deliberately injected bug, applied to the **optimized** system so
/// the gate can prove the oracle layer detects it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleFault {
    /// No fault: the differential must pass.
    None,
    /// Caches evict the MRU way instead of the LRU way.
    EvictMru,
}

/// Success summary from [`differential_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffReport {
    /// Demand accesses (loads + stores) compared event-for-event.
    pub accesses: u64,
    /// Final core cycle count (identical in both systems).
    pub cycles: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OracleFillLevel {
    L2,
    L1 { dirty: bool },
}

#[derive(Debug, Clone, Copy)]
struct OracleFill {
    time: u64,
    block: BlockAddr,
    level: OracleFillLevel,
}

impl OracleFill {
    /// Same total order the optimized system's fill heap uses: time,
    /// then block, with L1 fills before L2 fills on a full tie.
    fn key(&self) -> (u64, u64, bool) {
        (
            self.time,
            self.block.0,
            matches!(self.level, OracleFillLevel::L2),
        )
    }
}

/// The naive no-prefetch memory system: same contract as
/// [`MemSystem`](crate::MemSystem) with a [`NoPrefetcher`], obviously
/// simple machinery.
#[derive(Debug, Clone)]
pub struct OracleSystem {
    cfg: SimConfig,
    l1: OracleCache,
    l2: OracleCache,
    l1_mshrs: OracleMshr,
    l2_mshrs: OracleMshr,
    dram: OracleDram,
    /// Pending fills as a plain unordered vector; processing repeatedly
    /// extracts the minimum-key element.
    fills: Vec<OracleFill>,
    /// High-water mark of observed time. Like the optimized system, the
    /// oracle never rewinds: an access issued at `t < cursor` (dependent
    /// loads can reorder issue times) still sees every fill applied up
    /// to the cursor.
    cursor: u64,
    attribution: Vec<u64>,
    /// Mirror of the optimized system's fault plan, applied at the same
    /// simulation points (before each fill, and when time advances) so a
    /// faulted differential run stays comparable.
    faults: Option<FaultState>,
}

impl OracleSystem {
    /// Builds the oracle with the same geometry as the system under test.
    pub fn new(cfg: SimConfig) -> Self {
        Self {
            l1: OracleCache::new(cfg.l1),
            l2: OracleCache::new(cfg.l2),
            l1_mshrs: OracleMshr::new(cfg.l1_mshrs),
            l2_mshrs: OracleMshr::new(cfg.l2_mshrs),
            dram: OracleDram::new(cfg.dram),
            fills: Vec::new(),
            cursor: 0,
            attribution: Vec::new(),
            faults: None,
            cfg,
        }
    }

    /// Arms the same fault plan as the optimized system under test.
    /// Prefetch-only faults (delayed/dropped fills, queue pressure) have
    /// no effect on the oracle's no-prefetch semantics; channel stalls,
    /// outages, and the MSHR squeeze are mirrored exactly.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    fn apply_faults(&mut self, now: u64) {
        if self.faults.is_none() {
            return;
        }
        while let Some(action) = self.faults.as_mut().unwrap().next_action(now) {
            match action {
                FaultAction::StallChannel {
                    channel,
                    until,
                    demands_too,
                } => self.dram.stall_channel(channel, until, demands_too),
                FaultAction::SetMshrSqueeze(n) => self.l2_mshrs.set_capacity_squeeze(n),
                FaultAction::SetQueuePressure(_) => {}
            }
        }
    }

    /// The naive L1 model.
    pub fn l1(&self) -> &OracleCache {
        &self.l1
    }

    /// The naive L2 model.
    pub fn l2(&self) -> &OracleCache {
        &self.l2
    }

    /// The naive DRAM model.
    pub fn dram(&self) -> &OracleDram {
        &self.dram
    }

    /// Per-reference L2 demand-miss counts, indexed by ref id.
    pub fn attribution(&self) -> &[u64] {
        &self.attribution
    }

    fn pop_fill_due(&mut self, t: u64) -> Option<OracleFill> {
        let (i, f) = self
            .fills
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.key())?;
        if f.time > t {
            return None;
        }
        let f = *f;
        self.fills.swap_remove(i);
        Some(f)
    }

    /// Applies every pending fill due at or before `max(cursor, t)`, in
    /// fill-key order, then advances the cursor — time never rewinds,
    /// matching the optimized system's monotone clock.
    pub fn advance_to(&mut self, t: u64) {
        let horizon = self.cursor.max(t);
        while let Some(f) = self.pop_fill_due(horizon) {
            // Fault actions interleave with fills by timestamp, exactly
            // as in the optimized system's advance loop.
            self.apply_faults(f.time);
            self.process_fill(f);
        }
        self.apply_faults(horizon);
        self.cursor = horizon;
    }

    fn schedule_fill(&mut self, time: u64, block: BlockAddr, level: OracleFillLevel) {
        self.fills.push(OracleFill { time, block, level });
        match level {
            OracleFillLevel::L1 { .. } => self.l1_mshrs.set_fill_time(block, time),
            OracleFillLevel::L2 => self.l2_mshrs.set_fill_time(block, time),
        }
    }

    fn insert_l2(&mut self, block: BlockAddr, fill_time: u64) {
        if let Some((vb, dirty, _)) = self.l2.fill(block, InsertPriority::Mru, false, false) {
            if dirty {
                self.dram.issue(vb, RequestKind::Writeback, fill_time);
            }
        }
    }

    fn insert_l1(&mut self, block: BlockAddr, dirty: bool, fill_time: u64) {
        if let Some((vb, vdirty, _)) = self.l1.fill(block, InsertPriority::Mru, false, dirty) {
            if vdirty && !self.l2.set_dirty(vb) {
                self.dram.issue(vb, RequestKind::Writeback, fill_time);
            }
        }
    }

    fn process_fill(&mut self, f: OracleFill) {
        match f.level {
            OracleFillLevel::L1 { dirty } => {
                self.l1_mshrs.complete(f.block);
                self.insert_l1(f.block, dirty, f.time);
            }
            OracleFillLevel::L2 => {
                let entry = self
                    .l2_mshrs
                    .complete(f.block)
                    .expect("oracle: L2 fill without MSHR entry");
                self.insert_l2(f.block, f.time);
                if entry.demand {
                    self.l1_mshrs.complete(f.block);
                    self.insert_l1(f.block, entry.dirty_on_fill, f.time);
                }
            }
        }
    }

    /// Performs a demand access issued at cycle `t`; returns how it
    /// resolved and its completion cycle.
    pub fn access(&mut self, addr: Addr, t: u64, ref_id: RefId, write: bool) -> (AccessClass, u64) {
        self.advance_to(t);
        let block = addr.block();
        let mut now = t;

        if self.l1.access(block, write) {
            return (AccessClass::L1Hit, now + self.cfg.l1_latency);
        }
        if let Some(ft) = self.l1_mshrs.fill_time(block) {
            self.l1_mshrs.allocate_or_merge(block, true, write);
            return (AccessClass::L1Merge, ft.max(now + self.cfg.l1_latency));
        }
        while self.l1_mshrs.is_full() {
            let wake = self
                .l1_mshrs
                .earliest_fill_time()
                .expect("oracle: full L1 MSHRs imply pending completions")
                .max(now + 1);
            self.advance_to(wake);
            now = wake;
        }
        let l2_time = now + self.cfg.l1_latency;

        if self.l2.access(block, false) {
            let done = l2_time + self.cfg.l2_latency;
            self.l1_mshrs.allocate_or_merge(block, true, write);
            self.schedule_fill(done, block, OracleFillLevel::L1 { dirty: write });
            return (AccessClass::L2Hit, done);
        }

        let ri = ref_id.0 as usize;
        if self.attribution.len() <= ri {
            self.attribution.resize(ri + 1, 0);
        }
        self.attribution[ri] += 1;

        if let Some(ft) = self.l2_mshrs.fill_time(block) {
            self.l2_mshrs.allocate_or_merge(block, true, write);
            self.l1_mshrs.allocate_or_merge(block, true, write);
            self.l1_mshrs.set_fill_time(block, ft);
            return (AccessClass::L2Merge, ft.max(l2_time + self.cfg.l2_latency));
        }
        let mut issue = l2_time + self.cfg.l2_latency;
        while self.l2_mshrs.is_full() {
            let wake = self
                .l2_mshrs
                .earliest_fill_time()
                .expect("oracle: full L2 MSHRs imply pending completions")
                .max(issue + 1);
            self.advance_to(wake);
            issue = wake;
        }
        let req = self.dram.issue(block, RequestKind::Demand, issue);
        self.l1_mshrs.allocate_or_merge(block, true, write);
        self.l1_mshrs.set_fill_time(block, req.complete_at);
        self.l2_mshrs.allocate_or_merge(block, true, write);
        self.schedule_fill(req.complete_at, block, OracleFillLevel::L2);
        (AccessClass::DramDemand, req.complete_at)
    }

    /// Drains every remaining pending fill, in fill-key order.
    pub fn finish(&mut self, final_cycle: u64) {
        self.advance_to(final_cycle);
        self.advance_to(u64::MAX);
    }
}

/// Classifies one optimized-system access from its stats deltas. Each
/// demand access bumps `l1.demand_accesses` exactly once and touches the
/// L2/DRAM counters only on the corresponding path, so the deltas
/// identify the path taken without instrumenting the hot loop.
fn classify_deltas(dl1_miss: u64, dl2_acc: u64, dl2_miss: u64, d_dram: u64) -> AccessClass {
    if dl1_miss == 0 {
        AccessClass::L1Hit
    } else if dl2_acc == 0 {
        AccessClass::L1Merge
    } else if dl2_miss == 0 {
        AccessClass::L2Hit
    } else if d_dram == 0 {
        AccessClass::L2Merge
    } else {
        AccessClass::DramDemand
    }
}

/// Replays `trace` under no-prefetch through both the optimized
/// [`MemSystem`](crate::MemSystem) and the naive [`OracleSystem`],
/// asserting event-for-event agreement: per-access classification and
/// completion cycle, final cycle count, cache/DRAM stats, per-site miss
/// attribution, and final cache contents (blocks + dirty bits).
///
/// `fault` injects a deliberate bug into the optimized side; with
/// anything but [`OracleFault::None`] the check is expected to fail.
///
/// # Errors
///
/// Returns a message naming the first diverging access (or end-state
/// field) on any mismatch.
pub fn differential_check(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    cfg: &SimConfig,
    fault: OracleFault,
) -> Result<DiffReport, String> {
    differential_check_faulted(trace, mem, heap, cfg, fault, None)
}

/// [`differential_check`] with a [`FaultPlan`] armed on *both* systems.
///
/// This is the graceful-degradation contract's correctness leg: even
/// under channel stalls, outages, and MSHR squeezes, the optimized
/// system's demand behaviour must match the naive oracle event for
/// event. Prefetch-only faults (delayed/dropped fills, queue pressure)
/// are inert under no-prefetch and trivially preserve agreement.
///
/// # Errors
///
/// Returns a message naming the first diverging access (or end-state
/// field) on any mismatch.
pub fn differential_check_faulted(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    cfg: &SimConfig,
    fault: OracleFault,
    plan: Option<&FaultPlan>,
) -> Result<DiffReport, String> {
    let mut ms = MemSystem::new(*cfg, IdealMode::None, Box::new(NoPrefetcher), mem, heap);
    if fault == OracleFault::EvictMru {
        ms.inject_fault_evict_mru();
    }
    let mut oracle = OracleSystem::new(*cfg);
    if let Some(plan) = plan {
        ms.install_faults(plan);
        oracle.install_faults(plan);
    }

    let mut win_real = Window::new(cfg.window);
    let mut win_oracle = Window::new(cfg.window);
    let mut completions_real: Vec<u64> = Vec::with_capacity(trace.loads() as usize);
    let mut completions_oracle: Vec<u64> = Vec::with_capacity(trace.loads() as usize);
    let mut accesses = 0u64;

    for (idx, ev) in trace.events().iter().enumerate() {
        match ev {
            TraceEvent::Compute(n) => {
                win_real.dispatch_compute(*n as u64);
                win_oracle.dispatch_compute(*n as u64);
            }
            TraceEvent::Load {
                addr,
                ref_id,
                hints,
                dep,
                ..
            } => {
                let d_real = win_real.prepare_dispatch(1);
                let d_oracle = win_oracle.prepare_dispatch(1);
                let issue_real = match dep {
                    Some(seq) => d_real.max(completions_real[*seq as usize]),
                    None => d_real,
                };
                let issue_oracle = match dep {
                    Some(seq) => d_oracle.max(completions_oracle[*seq as usize]),
                    None => d_oracle,
                };
                let before = snapshot(&ms);
                let done_real = ms.load(*addr, issue_real, *ref_id, *hints);
                let class_real = delta_class(&ms, before);
                let (class_oracle, done_oracle) =
                    oracle.access(*addr, issue_oracle, *ref_id, false);
                accesses += 1;
                compare_access(
                    idx,
                    "load",
                    *addr,
                    (class_real, done_real),
                    (class_oracle, done_oracle),
                )?;
                completions_real.push(done_real);
                completions_oracle.push(done_oracle);
                win_real.push(1, done_real);
                win_oracle.push(1, done_oracle);
            }
            TraceEvent::Store {
                addr,
                ref_id,
                hints,
                ..
            } => {
                let d_real = win_real.prepare_dispatch(1);
                let d_oracle = win_oracle.prepare_dispatch(1);
                let before = snapshot(&ms);
                let done_real = ms.store(*addr, d_real, *ref_id, *hints);
                let class_real = delta_class(&ms, before);
                let (class_oracle, done_oracle) = oracle.access(*addr, d_oracle, *ref_id, true);
                accesses += 1;
                compare_access(
                    idx,
                    "store",
                    *addr,
                    (class_real, done_real),
                    (class_oracle, done_oracle),
                )?;
                win_real.push(1, d_real + 1);
                win_oracle.push(1, d_oracle + 1);
            }
            TraceEvent::SetLoopBound(b) => {
                let d_real = win_real.prepare_dispatch(1);
                let d_oracle = win_oracle.prepare_dispatch(1);
                ms.set_loop_bound(*b);
                oracle.advance_to(d_oracle);
                win_real.push(1, d_real + 1);
                win_oracle.push(1, d_oracle + 1);
            }
            TraceEvent::IndirectPrefetch {
                base,
                elem_size,
                index_addr,
                ..
            } => {
                let d_real = win_real.prepare_dispatch(1);
                let d_oracle = win_oracle.prepare_dispatch(1);
                ms.indirect_prefetch(*base, *elem_size, *index_addr, d_real);
                oracle.advance_to(d_oracle);
                win_real.push(1, d_real + 1);
                win_oracle.push(1, d_oracle + 1);
            }
        }
    }

    let cycles_real = win_real.finish();
    let cycles_oracle = win_oracle.finish();
    ms.finish(cycles_real);
    oracle.finish(cycles_oracle);

    if cycles_real != cycles_oracle {
        return Err(format!(
            "final cycles diverge: optimized {cycles_real}, oracle {cycles_oracle}"
        ));
    }
    if ms.l1().stats() != oracle.l1().stats() {
        return Err(format!(
            "L1 stats diverge:\n  optimized {:?}\n  oracle    {:?}",
            ms.l1().stats(),
            oracle.l1().stats()
        ));
    }
    if ms.l2().stats() != oracle.l2().stats() {
        return Err(format!(
            "L2 stats diverge:\n  optimized {:?}\n  oracle    {:?}",
            ms.l2().stats(),
            oracle.l2().stats()
        ));
    }
    if ms.dram().stats() != oracle.dram().stats() {
        return Err(format!(
            "DRAM stats diverge:\n  optimized {:?}\n  oracle    {:?}",
            ms.dram().stats(),
            oracle.dram().stats()
        ));
    }
    if ms.attribution().counts() != oracle.attribution() {
        return Err("per-site miss attribution diverges".to_string());
    }
    let l1_real = ms.l1().resident_blocks();
    let l1_oracle = oracle.l1().resident_blocks();
    if l1_real != l1_oracle {
        return Err(first_contents_diff("L1", &l1_real, &l1_oracle));
    }
    let l2_real = ms.l2().resident_blocks();
    let l2_oracle = oracle.l2().resident_blocks();
    if l2_real != l2_oracle {
        return Err(first_contents_diff("L2", &l2_real, &l2_oracle));
    }
    Ok(DiffReport {
        accesses,
        cycles: cycles_real,
    })
}

/// (l1 misses, l2 accesses, l2 misses, dram demand blocks) before an access.
type StatsSnap = (u64, u64, u64, u64);

fn snapshot(ms: &MemSystem<'_>) -> StatsSnap {
    (
        ms.l1().stats().demand_misses,
        ms.l2().stats().demand_accesses,
        ms.l2().stats().demand_misses,
        ms.dram().stats().demand_blocks,
    )
}

fn delta_class(ms: &MemSystem<'_>, before: StatsSnap) -> AccessClass {
    let after = snapshot(ms);
    classify_deltas(
        after.0 - before.0,
        after.1 - before.1,
        after.2 - before.2,
        after.3 - before.3,
    )
}

fn compare_access(
    idx: usize,
    kind: &str,
    addr: Addr,
    real: (AccessClass, u64),
    oracle: (AccessClass, u64),
) -> Result<(), String> {
    if real != oracle {
        return Err(format!(
            "access diverges at trace event {idx} ({kind} {:#x}): \
             optimized {:?}@{}, oracle {:?}@{}",
            addr.0, real.0, real.1, oracle.0, oracle.1
        ));
    }
    Ok(())
}

fn first_contents_diff(
    level: &str,
    real: &[(BlockAddr, bool)],
    oracle: &[(BlockAddr, bool)],
) -> String {
    let i = real
        .iter()
        .zip(oracle.iter())
        .position(|(a, b)| a != b)
        .unwrap_or(real.len().min(oracle.len()));
    format!(
        "{level} final contents diverge at sorted index {i}: \
         optimized has {} lines ({:?}…), oracle has {} lines ({:?}…)",
        real.len(),
        real.get(i),
        oracle.len(),
        oracle.get(i)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_cpu::HintSet;

    fn heap() -> HeapRange {
        HeapRange {
            start: Addr(0x10_0000),
            end: Addr(0x100_0000),
        }
    }

    /// A mixed workload exercising every access path: streaming loads,
    /// conflict-evicting strides, dependent chains, and stores.
    fn mixed_trace() -> Trace {
        let mut t = Trace::new();
        for i in 0..4_000u64 {
            t.push_load(Addr(0x20_0000 + i * 8), 8, RefId(0), HintSet::none(), None);
            if i % 3 == 0 {
                t.push_store(Addr(0x40_0000 + (i % 512) * 64), 8, RefId(1), HintSet::none());
            }
            t.push_compute((i % 7) as u32);
        }
        let mut prev = None;
        for i in 0..256u64 {
            let s = t.push_load(Addr(0x60_0000 + i * 4096), 8, RefId(2), HintSet::none(), prev);
            prev = Some(s);
        }
        t.finish();
        t
    }

    #[test]
    fn differential_passes_on_mixed_trace() {
        let mem = Memory::new();
        let rep = differential_check(
            &mixed_trace(),
            &mem,
            heap(),
            &SimConfig::paper(),
            OracleFault::None,
        )
        .expect("optimized system must match the oracle");
        assert!(rep.accesses > 5_000);
        assert!(rep.cycles > 0);
    }

    #[test]
    fn differential_passes_under_mshr_pressure() {
        // Dense all-miss loads saturate both MSHR files, exercising the
        // wait-for-free-register loops in both systems.
        let mem = Memory::new();
        let mut t = Trace::new();
        for i in 0..2_000u64 {
            t.push_load(Addr(0x20_0000 + i * 4096), 8, RefId(0), HintSet::none(), None);
        }
        t.finish();
        differential_check(&t, &mem, heap(), &SimConfig::paper(), OracleFault::None)
            .expect("MSHR-pressure trace must match");
    }

    #[test]
    fn differential_passes_under_every_builtin_fault_plan() {
        // The degradation contract: demand correctness survives every
        // built-in fault plan. The same plan is armed on both systems,
        // so stalls, outages, and MSHR squeezes land identically.
        let mem = Memory::new();
        let trace = mixed_trace();
        for (name, plan) in FaultPlan::builtin() {
            differential_check_faulted(
                &trace,
                &mem,
                heap(),
                &SimConfig::paper(),
                OracleFault::None,
                Some(&plan),
            )
            .unwrap_or_else(|e| panic!("faulted differential '{name}' failed: {e}"));
        }
    }

    #[test]
    fn differential_catches_injected_replacement_bug() {
        let mem = Memory::new();
        let err = differential_check(
            &mixed_trace(),
            &mem,
            heap(),
            &SimConfig::paper(),
            OracleFault::EvictMru,
        )
        .expect_err("evict-MRU fault must be detected");
        assert!(
            err.contains("diverge"),
            "error names the divergence: {err}"
        );
    }
}

//! Guided Region Prefetching — the paper's primary contribution.
//!
//! This crate implements the hardware half of the ISCA 2003 GRP paper
//! plus the simulation platform that evaluates it:
//!
//! * [`engine`] — the prefetch engines: [`engine::NoPrefetcher`],
//!   [`engine::stride::StridePrefetcher`] (predictor-directed stream
//!   buffers), and [`engine::region::RegionPrefetcher`] which realizes
//!   both SRP (Lin et al.) and GRP (this paper) depending on its
//!   [`engine::region::RegionConfig`].
//! * [`memsys`] — L1/L2/MSHRs/DRAM plus the access prioritizer that
//!   schedules prefetches into idle memory channels (Figure 2).
//! * [`sim`] — trace replay through the out-of-order window model.
//! * [`config`] — the §5.1 platform configuration and the experiment
//!   [`Scheme`]s.
//! * [`result`] — per-run metrics: IPC, speedup, coverage, accuracy,
//!   traffic, and the perfect-L2 gap.
//! * [`obs`] — the zero-cost observer layer: prefetch-lifecycle tracing
//!   and epoch metrics sampling, compiled away when disabled.
//! * [`faults`] — deterministic seeded fault injection ([`FaultPlan`])
//!   and the graceful-degradation contract it verifies.
//!
//! # Example
//!
//! ```
//! use grp_core::{run_trace, Scheme, SimConfig};
//! use grp_cpu::{HintSet, RefId, Trace};
//! use grp_mem::{Addr, HeapRange, Memory};
//!
//! // A little streaming kernel, hinted spatial.
//! let mut t = Trace::new();
//! for i in 0..1000u64 {
//!     t.push_load(Addr(0x10_0000 + i * 8), 8, RefId(0),
//!                 HintSet::none().with_spatial(), None);
//!     t.push_compute(4);
//! }
//! t.finish();
//! let mem = Memory::new();
//! let heap = HeapRange { start: Addr(0x10_0000), end: Addr(0x20_0000) };
//! let base = run_trace(&t, &mem, heap, Scheme::NoPrefetch, &SimConfig::paper());
//! let grp = run_trace(&t, &mem, heap, Scheme::GrpVar, &SimConfig::paper());
//! assert!(grp.speedup_vs(&base) >= 1.0);
//! ```

#![deny(missing_docs)]

pub mod config;
pub mod engine;
pub mod faults;
pub mod invariants;
pub mod memsys;
pub mod obs;
pub mod oracle;
pub mod result;
pub mod sim;

pub use config::{IdealMode, Scheme, SimConfig};
pub use faults::{FaultAction, FaultEvent, FaultKind, FaultPlan, FaultState};
pub use invariants::InvariantObserver;
pub use memsys::{MemSystem, MissAttribution};
pub use obs::{
    EpochSampler, EpochSnapshot, LatencyHist, LifecycleTracer, NullObserver, Observer,
    ObserverPair, PrefetchOutcome, PrefetchRecord, SquashReason,
};
pub use oracle::{
    differential_check, differential_check_faulted, AccessClass, DiffReport, OracleFault,
    OracleSystem,
};
pub use result::{geomean, RunResult};
pub use sim::{
    engine_for, replay, run_trace, run_trace_faulted, run_trace_observed,
    run_trace_observed_faulted, run_trace_packed, run_trace_with_engine,
    run_trace_with_engine_observed,
};
#[doc(hidden)]
pub use sim::replay_injected;

//! The full memory system: L1D, unified L2, MSHRs, DRAM, and the access
//! prioritizer that schedules prefetches into idle memory channels.
//!
//! Figure 2 of the paper: demand misses flow L1 → L2 → memory controller;
//! the prefetch engine's queue feeds an *access prioritizer* that
//! "forwards prefetch requests only when there are no outstanding demand
//! misses from the L2 cache" and only onto idle channels. Prefetched data
//! is inserted in the LRU way of its L2 set.
//!
//! The implementation is event-light: DRAM completion times are computed
//! analytically at issue, so every load's completion cycle is known when
//! it issues; pending fills are applied in time order before any later
//! action ([`MemSystem::advance_to`]).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use grp_mem::FastSet;

use grp_cpu::{HintSet, RefId};
use grp_mem::{
    Addr, BlockAddr, Cache, Dram, HeapRange, InsertPriority, Memory, MshrFile, MshrOutcome,
    RequestKind,
};

use crate::config::{IdealMode, SimConfig};
use crate::engine::Prefetcher;
use crate::faults::{FaultAction, FaultPlan, FaultState};
use crate::obs::{EngineEventKind, EpochSnapshot, NullObserver, Observer};

/// Per-reference L2 demand-miss attribution (Table 6's miss-cause data).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MissAttribution {
    counts: Vec<u64>,
}

impl MissAttribution {
    fn record(&mut self, r: RefId) {
        let i = r.0 as usize;
        if self.counts.len() <= i {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Misses attributed to reference site `r`.
    pub fn misses_of(&self, r: RefId) -> u64 {
        self.counts.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// All counts, indexed by ref id.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `n` sites with the most misses, descending.
    pub fn top(&self, n: usize) -> Vec<(RefId, u64)> {
        let mut v: Vec<(RefId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (RefId(i as u32), *c))
            .collect();
        v.sort_by_key(|(_, c)| Reverse(*c));
        v.truncate(n);
        v
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillLevel {
    /// L2 fill (from DRAM); `demand` fills propagate to L1.
    L2,
    /// L1 fill only (L2 hit path). `dirty` implements write-allocate.
    L1 { dirty: bool },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingFill {
    time: u64,
    block: BlockAddr,
    level: FillLevel,
}

impl Ord for PendingFill {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by time via Reverse at the call sites; tie-break on
        // block/level for determinism.
        (self.time, self.block.0, matches!(self.level, FillLevel::L2))
            .cmp(&(other.time, other.block.0, matches!(other.level, FillLevel::L2)))
    }
}

impl PartialOrd for PendingFill {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The memory system driven by the simulator.
///
/// Generic over an [`Observer`]; the default [`NullObserver`] disables
/// every hook at compile time, so the un-observed replay path is the
/// same machine code it was before the observer layer existed.
pub struct MemSystem<'m, O: Observer = NullObserver> {
    cfg: SimConfig,
    ideal: IdealMode,
    l1: Cache,
    l2: Cache,
    l1_mshrs: MshrFile,
    l2_mshrs: MshrFile,
    dram: Dram,
    engine: Box<dyn Prefetcher>,
    fills: BinaryHeap<Reverse<PendingFill>>,
    mem: &'m Memory,
    heap: HeapRange,
    cursor: u64,
    attribution: MissAttribution,
    prefetches_issued: u64,
    obs: O,
    /// Scratch buffer for draining engine-side lifecycle events (kept
    /// across drains to reuse its allocation).
    engine_events: Vec<crate::obs::EngineEvent>,
    /// Last-seen committed-event / dispatched-instruction counts from the
    /// replay loop, snapshotted into epochs.
    epoch_events: u64,
    epoch_instructions: u64,
    /// Armed fault plan, if any. `None` on the unfaulted path, whose only
    /// cost is one branch per fill/advance step.
    faults: Option<FaultState>,
    /// Blocks whose in-flight prefetch fill was marked dropped at issue
    /// time. Only probed by key, never iterated.
    dropped_marks: FastSet<u64>,
    /// Deliberately injected bug (`--inject drop-leak`): a dropped fill
    /// forgets to release its MSHR register. Never set in production.
    fault_drop_leak: bool,
}

impl<O: Observer> std::fmt::Debug for MemSystem<'_, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemSystem")
            .field("cursor", &self.cursor)
            .field("l1", self.l1.stats())
            .field("l2", self.l2.stats())
            .finish_non_exhaustive()
    }
}

impl<'m> MemSystem<'m> {
    /// Builds the system with observation disabled. `mem` is the
    /// functional memory whose contents the pointer-scan and indirect
    /// engines read; `heap` bounds the pointer base-and-bounds test.
    pub fn new(
        cfg: SimConfig,
        ideal: IdealMode,
        engine: Box<dyn Prefetcher>,
        mem: &'m Memory,
        heap: HeapRange,
    ) -> Self {
        Self::with_observer(cfg, ideal, engine, mem, heap, NullObserver)
    }
}

impl<'m, O: Observer> MemSystem<'m, O> {
    /// Builds the system with an attached observer. When `O::ENABLED`,
    /// the engine is switched into trace-buffering mode so queued and
    /// squashed candidates reach the observer.
    pub fn with_observer(
        cfg: SimConfig,
        ideal: IdealMode,
        mut engine: Box<dyn Prefetcher>,
        mem: &'m Memory,
        heap: HeapRange,
        obs: O,
    ) -> Self {
        if O::ENABLED {
            engine.set_trace_buffer(true);
        }
        Self {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l1_mshrs: MshrFile::new(cfg.l1_mshrs),
            l2_mshrs: MshrFile::new(cfg.l2_mshrs),
            dram: Dram::new(cfg.dram),
            engine,
            // Outstanding fills are bounded by the two MSHR files.
            fills: BinaryHeap::with_capacity(cfg.l1_mshrs + cfg.l2_mshrs),
            mem,
            heap,
            cursor: 0,
            attribution: MissAttribution::default(),
            prefetches_issued: 0,
            cfg,
            ideal,
            obs,
            engine_events: Vec::new(),
            epoch_events: 0,
            epoch_instructions: 0,
            faults: None,
            dropped_marks: FastSet::default(),
            fault_drop_leak: false,
        }
    }

    /// Arms a fault plan. The plan's timed actions are applied in
    /// timestamp order, interleaved with pending fills, as simulated time
    /// advances; an empty plan leaves every run bit-identical to an
    /// unfaulted one. Call before replaying any accesses.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        self.faults = Some(FaultState::new(plan));
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Consumes the system, returning the observer for result export.
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// L1 data cache state/stats.
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// L2 cache state/stats.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// DRAM state/stats.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The prefetch engine.
    pub fn engine(&self) -> &dyn Prefetcher {
        self.engine.as_ref()
    }

    /// L2 MSHR file (late-prefetch accounting lives here).
    pub fn l2_mshrs(&self) -> &MshrFile {
        &self.l2_mshrs
    }

    /// Per-site demand miss attribution.
    pub fn attribution(&self) -> &MissAttribution {
        &self.attribution
    }

    /// Prefetch blocks actually issued to DRAM.
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// L1 MSHR file.
    pub fn l1_mshrs(&self) -> &MshrFile {
        &self.l1_mshrs
    }

    #[doc(hidden)]
    pub fn inject_fault_evict_mru(&mut self) {
        // Flips both caches to evict the MRU way — the deliberately
        // injected replacement-policy bug the oracle gate must detect.
        self.l1.set_fault_evict_mru(true);
        self.l2.set_fault_evict_mru(true);
    }

    #[doc(hidden)]
    pub fn inject_fault_drop_leak(&mut self) {
        // Makes dropped prefetch fills leak their L2 MSHR register — the
        // deliberately unhandled fault the robustness gate must detect
        // (structural end-check + lifecycle conservation both fire).
        self.fault_drop_leak = true;
    }

    /// Applies every fault action due at or before `now`, in timestamp
    /// order. Both the real system and the oracle mirror call this at
    /// the same simulation points (before each fill, and when time
    /// advances), so faulted differential runs stay comparable.
    fn apply_faults(&mut self, now: u64) {
        if self.faults.is_none() {
            return;
        }
        while let Some(action) = self.faults.as_mut().unwrap().next_action(now) {
            match action {
                FaultAction::StallChannel {
                    channel,
                    until,
                    demands_too,
                } => self.dram.stall_channel(channel, until, demands_too),
                FaultAction::SetMshrSqueeze(n) => self.l2_mshrs.set_capacity_squeeze(n),
                FaultAction::SetQueuePressure(n) => {
                    self.engine.set_queue_pressure(n);
                    if O::ENABLED {
                        // Pressure trimming squashes queued candidates.
                        self.drain_engine_events(now);
                    }
                }
            }
            if O::ENABLED {
                self.obs.fault_injected(&action, now);
            }
        }
    }

    /// Forwards engine-buffered lifecycle events (queued/squashed) to the
    /// observer, stamped with `now`. Called after every engine call so
    /// event order tracks simulation order.
    fn drain_engine_events(&mut self, now: u64) {
        if !O::ENABLED {
            return;
        }
        let mut v = std::mem::take(&mut self.engine_events);
        self.engine.drain_trace_events(&mut v);
        for ev in v.drain(..) {
            match ev.kind {
                EngineEventKind::Queued => self.obs.prefetch_queued(ev.block, now),
                EngineEventKind::Squashed(r) => self.obs.prefetch_squashed(ev.block, r, now),
            }
        }
        self.engine_events = v;
    }

    /// Replay-loop heartbeat: records the committed-event and dispatched-
    /// instruction counts and emits an epoch snapshot every
    /// `epoch_interval` events. Free when the observer is disabled.
    pub fn epoch_tick(&mut self, events: u64, instructions: u64, core_cycle: u64) {
        if !O::ENABLED {
            return;
        }
        self.epoch_events = events;
        self.epoch_instructions = instructions;
        if let Some(interval) = self.obs.epoch_interval() {
            if events > 0 && events.is_multiple_of(interval) {
                self.emit_epoch(core_cycle.max(self.cursor));
            }
        }
        if self.obs.wants_structural_checks() {
            // Structural walks piggyback on the epoch cadence (or a
            // default one when the observer samples no epochs).
            let interval = self.obs.epoch_interval().unwrap_or(4096);
            if events > 0 && events.is_multiple_of(interval) {
                self.run_structural_checks(false);
            }
        }
    }

    /// Walks every component's structural invariants plus the
    /// cross-component stats identities, reporting violations through
    /// [`Observer::structural_violation`]. `at_end` additionally requires
    /// all in-flight state to have drained.
    fn run_structural_checks(&mut self, at_end: bool) {
        let mut violations: Vec<String> = Vec::new();
        for (tag, res) in [
            ("l1", self.l1.check_well_formed()),
            ("l2", self.l2.check_well_formed()),
            ("l1-mshr", self.l1_mshrs.check_invariants()),
            ("l2-mshr", self.l2_mshrs.check_invariants()),
            ("dram", self.dram.check_invariants()),
            ("engine", self.engine.validate()),
        ] {
            if let Err(e) = res {
                violations.push(format!("{tag}: {e}"));
            }
        }
        if self.ideal == IdealMode::None {
            let l1 = *self.l1.stats();
            let l2 = *self.l2.stats();
            let dram = *self.dram.stats();
            // Every L1 miss either merges into an in-flight L1 fetch or
            // performs exactly one L2 lookup.
            if l1.demand_misses != self.l1_mshrs.merges() + l2.demand_accesses {
                violations.push(format!(
                    "stats: L1 misses {} != L1-MSHR merges {} + L2 accesses {}",
                    l1.demand_misses,
                    self.l1_mshrs.merges(),
                    l2.demand_accesses
                ));
            }
            if self.prefetches_issued != dram.prefetch_blocks {
                violations.push(format!(
                    "stats: prefetches issued {} != DRAM prefetch blocks {}",
                    self.prefetches_issued, dram.prefetch_blocks
                ));
            }
            if dram.demand_blocks > l2.demand_misses {
                violations.push(format!(
                    "stats: DRAM demand blocks {} exceed L2 demand misses {}",
                    dram.demand_blocks, l2.demand_misses
                ));
            }
        }
        if at_end {
            if self.l1_mshrs.occupancy() != 0 {
                violations.push(format!(
                    "end: {} L1 MSHR entries never completed",
                    self.l1_mshrs.occupancy()
                ));
            }
            if self.l2_mshrs.occupancy() != 0 {
                violations.push(format!(
                    "end: {} L2 MSHR entries never completed",
                    self.l2_mshrs.occupancy()
                ));
            }
            if !self.fills.is_empty() {
                violations.push(format!("end: {} fills never applied", self.fills.len()));
            }
        }
        for v in violations {
            self.obs.structural_violation(&v);
        }
    }

    fn emit_epoch(&mut self, cycle: u64) {
        let l2 = self.l2.stats();
        let dram = self.dram.stats();
        let snap = EpochSnapshot {
            events: self.epoch_events,
            instructions: self.epoch_instructions,
            cycles: cycle,
            l2_demand_accesses: l2.demand_accesses,
            l2_demand_misses: l2.demand_misses,
            useful_prefetches: l2.useful_prefetches,
            useless_prefetches: l2.useless_prefetches,
            late_prefetch_merges: self.l2_mshrs.late_prefetch_merges(),
            prefetches_issued: self.prefetches_issued,
            queue_occupancy: self.engine.queue_occupancy(),
            l2_mshr_occupancy: self.l2_mshrs.occupancy(),
            l2_mshr_prefetches: self.l2_mshrs.prefetch_inflight(),
            demand_blocks: dram.demand_blocks,
            prefetch_blocks: dram.prefetch_blocks,
            writeback_blocks: dram.writeback_blocks,
            row_hits: dram.row_hits,
            row_misses: dram.row_misses,
            channel_busy_cycles: self.dram.channel_busy_cycles().to_vec(),
        };
        self.obs.epoch(&snap);
    }

    fn schedule_fill(&mut self, time: u64, block: BlockAddr, level: FillLevel) {
        self.fills.push(Reverse(PendingFill { time, block, level }));
        // The in-flight block set lives in the MSHR files (they already
        // track exactly these blocks); only the fill time is recorded.
        match level {
            FillLevel::L1 { .. } => self.l1_mshrs.set_fill_time(block, time),
            FillLevel::L2 => self.l2_mshrs.set_fill_time(block, time),
        }
    }

    fn insert_l2(&mut self, block: BlockAddr, prefetch: bool, fill_time: u64) {
        let prio = if prefetch && !self.cfg.prefetch_mru_insert {
            InsertPriority::Lru
        } else {
            InsertPriority::Mru
        };
        let out = self.l2.fill_ext(block, prio, prefetch, false);
        if O::ENABLED {
            if out.merged_useful {
                // A demand fill landed on a resident prefetched line: the
                // prefetch won the race and counts as used.
                self.obs.prefetch_first_use(block, fill_time);
            }
            if let Some(v) = out.victim {
                if v.was_unused_prefetch {
                    self.obs.prefetch_evicted_unused(v.block, fill_time);
                }
            }
        }
        if let Some(v) = out.victim {
            if v.dirty {
                self.dram.issue(v.block, RequestKind::Writeback, fill_time);
            }
        }
    }

    fn insert_l1(&mut self, block: BlockAddr, dirty: bool, fill_time: u64) {
        if let Some(v) = self.l1.fill(block, InsertPriority::Mru, false, dirty) {
            if v.dirty && !self.l2.set_dirty(v.block) {
                // Victim no longer in L2 (non-inclusive hierarchy):
                // write it back to memory directly.
                self.dram.issue(v.block, RequestKind::Writeback, fill_time);
            }
        }
    }

    fn process_fill(&mut self, f: PendingFill) {
        match f.level {
            FillLevel::L1 { dirty } => {
                self.l1_mshrs.complete(f.block);
                self.insert_l1(f.block, dirty, f.time);
            }
            FillLevel::L2 => {
                let marked =
                    !self.dropped_marks.is_empty() && self.dropped_marks.remove(&f.block.0);
                if marked && self.fault_drop_leak {
                    // Injected bug: forget the MSHR register along with
                    // the data. Caught by the end-of-run structural check
                    // and the invariant observer's conservation identity.
                    return;
                }
                let entry = self
                    .l2_mshrs
                    .complete(f.block)
                    .expect("L2 fill without MSHR entry");
                if marked && !entry.demand {
                    // Fault: the fill's data was lost in transit. The
                    // register is released on schedule but no line is
                    // installed. A demand that merged into the entry
                    // cancels the drop — demand correctness outranks the
                    // injected fault.
                    if O::ENABLED {
                        self.obs.prefetch_fill_dropped(f.block, f.time);
                    }
                    return;
                }
                if O::ENABLED {
                    // Before insert_l2, so the tracer records the fill
                    // before any first-use/eviction it triggers.
                    self.obs.l2_fill(f.block, entry.prefetch_fill, f.time);
                }
                self.insert_l2(f.block, entry.prefetch_fill, f.time);
                if entry.demand {
                    // Piggyback the L1 fill for the demand path.
                    self.l1_mshrs.complete(f.block);
                    self.insert_l1(f.block, entry.dirty_on_fill, f.time);
                }
                if entry.pointer_level > 0 {
                    self.engine
                        .on_fill(f.block, entry.pointer_level, self.mem, self.heap, &self.l2);
                    if O::ENABLED {
                        self.drain_engine_events(f.time);
                    }
                }
            }
        }
    }

    /// True when a prefetch may take another MSHR. The MSHRs "track all
    /// outstanding accesses, regardless of type" (§3.1); a demand miss
    /// that finds the file full waits for the earliest in-flight access —
    /// which is precisely the paper's "contention only from prefetches
    /// the memory controller has already issued".
    fn prefetch_mshr_headroom(&self) -> bool {
        // Keep two registers free so an arriving demand miss never waits
        // on a file saturated by prefetches. Measured against the
        // *effective* capacity so an injected squeeze throttles
        // prefetching instead of tripping the allocation assert below.
        self.l2_mshrs.occupancy() + 2 < self.l2_mshrs.effective_capacity()
    }

    /// Attempts one prefetch issue at `now`. Returns true on success.
    fn try_issue_prefetch(&mut self, now: u64) -> bool {
        if self.ideal != IdealMode::None {
            return false;
        }
        if !self.engine.has_candidates() {
            return false;
        }
        // §3.1: demand misses take priority. In this model demands are
        // forwarded to the controller the moment they are detected (there
        // is no demand queue at the prioritizer), so "no outstanding
        // demand misses [waiting]" reduces to two conditions: the target
        // channel must be idle (checked per candidate below) and MSHRs
        // must keep headroom so an arriving demand is never rejected
        // because prefetches hold every register.
        if !self.prefetch_mshr_headroom() {
            return false;
        }
        let cand = self
            .engine
            .next_candidate(&self.l2, &self.l2_mshrs, &self.dram, now);
        if O::ENABLED {
            // A scan can squash stale candidates even when it fails.
            self.drain_engine_events(now);
        }
        let Some(c) = cand else {
            return false;
        };
        let outcome =
            self.l2_mshrs
                .allocate_or_merge(c.block, false, None, c.pointer_level, false);
        debug_assert_eq!(outcome, MshrOutcome::Allocated);
        let req = self.dram.issue(c.block, RequestKind::Prefetch, now);
        self.prefetches_issued += 1;
        // Per-prefetch fill faults: a delay window makes the fill land
        // late; a drop window marks it to lose its data on arrival.
        let mut delayed = 0u64;
        if let Some(st) = self.faults.as_ref() {
            delayed = st.fill_delay(now);
            if st.fill_dropped(now) {
                self.dropped_marks.insert(c.block.0);
            }
        }
        let complete_at = req.complete_at + delayed;
        if O::ENABLED {
            let channel = self.dram.channel_of(c.block);
            self.obs
                .prefetch_issued(c.block, now, channel, req.row_hit, complete_at);
            if delayed > 0 {
                self.obs.prefetch_fill_delayed(c.block, delayed, now);
            }
        }
        self.schedule_fill(complete_at, c.block, FillLevel::L2);
        true
    }

    /// Advances internal time to `t`: applies fills and issues prefetches
    /// into idle-channel gaps, in time order.
    pub fn advance_to(&mut self, t: u64) {
        let mut now = self.cursor;
        loop {
            // Apply every fill due at or before `now` in one pass (the
            // heap is time-ordered, so this drains without re-entering
            // the issue logic between fills).
            while let Some(Reverse(f)) = self.fills.peek().copied() {
                if f.time > now {
                    break;
                }
                self.fills.pop();
                // Fault actions interleave with fills by timestamp, so
                // e.g. a stall lands before any writeback a later fill
                // triggers (and identically so in the oracle mirror).
                self.apply_faults(f.time);
                self.process_fill(f);
            }
            self.apply_faults(now);
            // Issue as many prefetches as possible at `now`.
            while self.try_issue_prefetch(now) {}
            // Find the next interesting time ≤ t. For the issue side, ask
            // the engine when one of *its candidates'* channels frees up
            // rather than stepping cycle-by-cycle through idle times on
            // channels no candidate maps to.
            let next_fill = self.fills.peek().map(|Reverse(f)| f.time);
            let next_issue = if self.engine.has_candidates() && self.prefetch_mshr_headroom() {
                Some(self.engine.next_issue_time(&self.dram).max(now + 1))
            } else {
                None
            };
            let next = match (next_fill, next_issue) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > t {
                break;
            }
            now = next;
        }
        // Catch up to the target time so the caller's next DRAM issue
        // sees every fault action due by then.
        self.apply_faults(self.cursor.max(t));
        self.cursor = self.cursor.max(t);
    }

    /// Earliest pending completion among blocks tracked at the given
    /// level — used to wait out a full MSHR file.
    fn earliest_l1_completion(&self) -> Option<u64> {
        self.l1_mshrs.earliest_fill_time()
    }

    fn earliest_l2_completion(&self) -> Option<u64> {
        self.l2_mshrs.earliest_fill_time()
    }

    /// Performs a load issued at cycle `t`; returns its completion cycle.
    pub fn load(&mut self, addr: Addr, t: u64, ref_id: RefId, hints: HintSet) -> u64 {
        self.access(addr, t, ref_id, hints, false)
    }

    /// Performs a store issued at cycle `t` (non-blocking for the core);
    /// returns the fill-completion cycle for bookkeeping.
    pub fn store(&mut self, addr: Addr, t: u64, ref_id: RefId, hints: HintSet) -> u64 {
        self.access(addr, t, ref_id, hints, true)
    }

    fn access(&mut self, addr: Addr, t: u64, ref_id: RefId, hints: HintSet, write: bool) -> u64 {
        self.advance_to(t);
        if self.ideal == IdealMode::PerfectL1 {
            return t + self.cfg.l1_latency;
        }
        let block = addr.block();
        let mut now = t;

        // L1 lookup.
        if self.l1.access(block, write) == grp_mem::LookupResult::Hit {
            return now + self.cfg.l1_latency;
        }
        // Merge into an outstanding L1-level fetch.
        if let Some(ft) = self.l1_mshrs.fill_time(block) {
            self.l1_mshrs
                .allocate_or_merge(block, true, None, 0, write);
            return ft.max(now + self.cfg.l1_latency);
        }
        // Wait out a full L1 MSHR file.
        while self.l1_mshrs.is_full() {
            let wake = self
                .earliest_l1_completion()
                .expect("full L1 MSHRs imply pending completions")
                .max(now + 1);
            self.advance_to(wake);
            now = wake;
        }
        let l2_time = now + self.cfg.l1_latency;

        if self.ideal == IdealMode::PerfectL2 {
            let done = l2_time + self.cfg.l2_latency;
            self.l1_mshrs.allocate_or_merge(block, true, None, 0, write);
            self.schedule_fill(done, block, FillLevel::L1 { dirty: write });
            return done;
        }

        // L2 lookup.
        let l2_out = self.l2.access_ext(block, false);
        if l2_out.hit {
            if O::ENABLED && l2_out.first_prefetch_use {
                self.obs.prefetch_first_use(block, l2_time);
            }
            let done = l2_time + self.cfg.l2_latency;
            self.l1_mshrs.allocate_or_merge(block, true, None, 0, write);
            self.schedule_fill(done, block, FillLevel::L1 { dirty: write });
            return done;
        }

        // L2 demand miss.
        self.attribution.record(ref_id);
        if O::ENABLED {
            self.obs.l2_demand_miss(block, l2_time);
        }
        let plevel = self
            .engine
            .on_demand_miss(block, addr, ref_id, hints, write, &self.l2);
        if O::ENABLED {
            self.drain_engine_events(l2_time);
        }

        // Merge with an in-flight fetch (possibly a late prefetch).
        if let Some(ft) = self.l2_mshrs.fill_time(block) {
            if O::ENABLED && self.l2_mshrs.get(block).is_some_and(|e| e.prefetch_fill) {
                self.obs.late_prefetch_merge(block, l2_time);
            }
            self.l2_mshrs
                .allocate_or_merge(block, true, None, plevel, write);
            self.l1_mshrs.allocate_or_merge(block, true, None, 0, write);
            // The L1 fill piggybacks on the L2 fill (process_fill), so the
            // L1-side wait also resolves at `ft`.
            self.l1_mshrs.set_fill_time(block, ft);
            return ft.max(l2_time + self.cfg.l2_latency);
        }
        // Wait out a full L2 MSHR file.
        let mut issue = l2_time + self.cfg.l2_latency;
        while self.l2_mshrs.is_full() {
            let wake = self
                .earliest_l2_completion()
                .expect("full L2 MSHRs imply pending completions")
                .max(issue + 1);
            self.advance_to(wake);
            issue = wake;
        }
        let req = self.dram.issue(block, RequestKind::Demand, issue);
        self.l1_mshrs.allocate_or_merge(block, true, None, 0, write);
        // The L1 fill piggybacks on the L2 demand fill at completion.
        self.l1_mshrs.set_fill_time(block, req.complete_at);
        // Waiting out the full MSHR file can let a prefetch for this very
        // block issue; the allocate below then merges into it — a late
        // prefetch, same as the fill-time merge path above.
        if O::ENABLED && self.l2_mshrs.get(block).is_some_and(|e| e.prefetch_fill) {
            self.obs.late_prefetch_merge(block, issue);
        }
        self.l2_mshrs
            .allocate_or_merge(block, true, None, plevel, write);
        self.schedule_fill(req.complete_at, block, FillLevel::L2);
        req.complete_at
    }

    /// Executes the `SetLoopBound` pseudo-instruction.
    pub fn set_loop_bound(&mut self, bound: u32) {
        self.engine.set_loop_bound(bound);
    }

    /// Executes the explicit indirect-prefetch instruction at cycle `t`.
    pub fn indirect_prefetch(&mut self, base: Addr, elem_size: u32, index_addr: Addr, t: u64) {
        self.advance_to(t);
        if self.ideal != IdealMode::None {
            return;
        }
        let (mem, l2) = (self.mem, &self.l2);
        self.engine
            .indirect_prefetch(base, elem_size, index_addr, mem, l2);
        if O::ENABLED {
            self.drain_engine_events(t);
        }
    }

    /// Drains all pending fills (and any prefetches issuable before the
    /// final cycle), then returns self for stats extraction.
    pub fn finish(&mut self, final_cycle: u64) {
        self.advance_to(final_cycle);
        // Apply remaining in-flight fills without issuing new prefetches.
        let mut last_fill = 0u64;
        while let Some(Reverse(f)) = self.fills.pop() {
            last_fill = last_fill.max(f.time);
            self.apply_faults(f.time);
            self.process_fill(f);
        }
        if O::ENABLED {
            let end = self.cursor.max(last_fill);
            if self.obs.epoch_interval().is_some() {
                // Close the time-series with a final snapshot so the last
                // partial epoch is never lost.
                self.emit_epoch(end);
            }
            if self.obs.wants_structural_checks() {
                self.run_structural_checks(true);
            }
            self.obs.run_end(end);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::engine::region::{RegionConfig, RegionPrefetcher};
    use crate::engine::NoPrefetcher;

    fn heap() -> HeapRange {
        HeapRange {
            start: Addr(0x10_0000),
            end: Addr(0x100_0000),
        }
    }

    fn sys<'m>(mem: &'m Memory, engine: Box<dyn Prefetcher>) -> MemSystem<'m> {
        MemSystem::new(SimConfig::paper(), IdealMode::None, engine, mem, heap())
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let a = Addr(0x20_0000);
        let t1 = ms.load(a, 0, RefId(0), HintSet::none());
        assert!(t1 > 100, "cold miss goes to DRAM: {t1}");
        let t2 = ms.load(a, t1, RefId(0), HintSet::none());
        assert_eq!(t2, t1 + 3, "warm hit costs L1 latency");
    }

    #[test]
    fn l2_hit_costs_l1_plus_l2() {
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let a = Addr(0x20_0000);
        let t1 = ms.load(a, 0, RefId(0), HintSet::none());
        // Evict from L1 by filling its set: L1 is 512 sets × 2 ways; same
        // set repeats every 512 blocks (32 KB).
        let way_stride = 512 * 64;
        let t2 = ms.load(a.offset(way_stride), t1, RefId(0), HintSet::none());
        let t3 = ms.load(a.offset(2 * way_stride), t2, RefId(0), HintSet::none());
        // `a` now evicted from L1 but resident in L2.
        let t4 = ms.load(a, t3, RefId(0), HintSet::none());
        assert_eq!(t4, t3 + 3 + 12, "L1 miss, L2 hit");
    }

    #[test]
    fn perfect_l1_never_touches_memory() {
        let mem = Memory::new();
        let mut ms = MemSystem::new(
            SimConfig::paper(),
            Scheme::PerfectL1.ideal_mode(),
            Box::new(NoPrefetcher),
            &mem,
            heap(),
        );
        let t = ms.load(Addr(0x20_0000), 0, RefId(0), HintSet::none());
        assert_eq!(t, 3);
        assert_eq!(ms.dram().stats().demand_blocks, 0);
    }

    #[test]
    fn perfect_l2_misses_l1_but_hits_l2() {
        let mem = Memory::new();
        let mut ms = MemSystem::new(
            SimConfig::paper(),
            Scheme::PerfectL2.ideal_mode(),
            Box::new(NoPrefetcher),
            &mem,
            heap(),
        );
        let t = ms.load(Addr(0x20_0000), 0, RefId(0), HintSet::none());
        assert_eq!(t, 15);
        ms.finish(t);
        assert_eq!(ms.dram().stats().demand_blocks, 0);
        // Second access hits L1 (it was filled).
        let t2 = ms.load(Addr(0x20_0000), 20, RefId(0), HintSet::none());
        assert_eq!(t2, 23);
    }

    #[test]
    fn srp_prefetches_fill_l2_and_later_loads_hit() {
        let mem = Memory::new();
        let engine = RegionPrefetcher::new(RegionConfig::srp(32));
        let mut ms = sys(&mem, Box::new(engine));
        let a = Addr(0x20_0000);
        let t1 = ms.load(a, 0, RefId(0), HintSet::none());
        // Give the engine idle time to stream the region in.
        ms.advance_to(t1 + 200_000);
        assert!(ms.prefetches_issued() > 0, "SRP issued prefetches");
        // The next block of the region should now be an L2 hit.
        let t2 = ms.load(a.offset(64), t1 + 200_000, RefId(0), HintSet::none());
        assert_eq!(t2, t1 + 200_000 + 15, "prefetched block hits in L2");
        assert!(ms.l2().stats().useful_prefetches > 0);
    }

    #[test]
    fn no_prefetch_baseline_issues_no_prefetch_traffic() {
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let mut t = 0;
        for i in 0..32 {
            t = ms.load(Addr(0x20_0000 + i * 64), t, RefId(0), HintSet::none());
        }
        ms.finish(t);
        assert_eq!(ms.dram().stats().prefetch_blocks, 0);
        assert_eq!(ms.dram().stats().demand_blocks, 32);
    }

    #[test]
    fn prefetches_use_idle_channels_while_demand_in_flight() {
        // A demand miss occupies one channel; the region engine streams
        // prefetches onto the three idle channels immediately.
        let mem = Memory::new();
        let engine = RegionPrefetcher::new(RegionConfig::srp(32));
        let mut ms = sys(&mem, Box::new(engine));
        let t1 = ms.load(Addr(0x20_0000), 0, RefId(0), HintSet::none());
        ms.advance_to(t1 - 1);
        assert!(
            ms.prefetches_issued() > 0,
            "idle channels carry prefetches before the demand returns"
        );
        ms.advance_to(t1 + 100_000);
        assert!(ms.prefetches_issued() >= 63);
    }

    #[test]
    fn prefetches_leave_mshr_headroom_for_demands() {
        let mem = Memory::new();
        let engine = RegionPrefetcher::new(RegionConfig::srp(32));
        let mut ms = sys(&mem, Box::new(engine));
        let t1 = ms.load(Addr(0x20_0000), 0, RefId(0), HintSet::none());
        // Let the engine stream for a while, then check that a demand
        // miss never found the MSHR file saturated by prefetches.
        ms.advance_to(t1 + 1_000);
        let t2 = ms.load(Addr(0x90_0000), t1 + 1_000, RefId(1), HintSet::none());
        // The far miss must complete in one DRAM round trip from issue
        // (plus at most one in-service transfer of bus contention).
        assert!(
            t2 < t1 + 1_000 + 400,
            "demand was not starved by prefetch MSHR pressure: {t2}"
        );
    }

    #[test]
    fn late_prefetch_merge_partially_hides_latency() {
        let mem = Memory::new();
        let engine = RegionPrefetcher::new(RegionConfig::srp(32));
        let mut ms = sys(&mem, Box::new(engine));
        let a = Addr(0x20_0000);
        let t1 = ms.load(a, 0, RefId(0), HintSet::none());
        // Poke while the prefetch for a+64 is still on the wires (it
        // issued almost immediately, completing around t1's timeframe).
        let poke = t1 - 40;
        let t2 = ms.load(a.offset(64), poke, RefId(1), HintSet::none());
        // The load completes when the in-flight prefetch returns — sooner
        // than a fresh DRAM round trip from `poke`.
        let fresh_roundtrip = 3 + 12 + 92; // min possible
        assert!(
            t2 < poke + fresh_roundtrip,
            "late prefetch hid some latency: {} vs {}",
            t2,
            poke + fresh_roundtrip
        );
        assert!(ms.l2_mshrs().late_prefetch_merges() > 0);
    }

    #[test]
    fn store_miss_write_allocates_and_writes_back() {
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let a = Addr(0x20_0000);
        let t = ms.store(a, 0, RefId(0), HintSet::none());
        ms.advance_to(t + 10);
        // Dirty line now in L1. Evict it through its set: 2-way L1.
        let way = 512 * 64;
        let t2 = ms.load(a.offset(way), t + 10, RefId(0), HintSet::none());
        let t3 = ms.load(a.offset(2 * way), t2, RefId(0), HintSet::none());
        ms.finish(t3 + 100_000);
        // The dirty L1 victim marked its L2 copy dirty; eventually L2
        // eviction would write back. At minimum the L2 line is dirty:
        assert!(ms.l2().contains(a.block()));
    }

    #[test]
    fn attribution_counts_per_site() {
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let mut t = 0;
        for i in 0..4 {
            t = ms.load(Addr(0x20_0000 + i * 4096), t, RefId(7), HintSet::none());
        }
        ms.load(Addr(0x90_0000), t, RefId(3), HintSet::none());
        assert_eq!(ms.attribution().misses_of(RefId(7)), 4);
        assert_eq!(ms.attribution().misses_of(RefId(3)), 1);
        let top = ms.attribution().top(1);
        assert_eq!(top[0].0, RefId(7));
    }

    #[test]
    fn mshr_pressure_serializes_excess_misses() {
        // 16 independent misses with only 8 L2 MSHRs: the 9th call's
        // completion must wait for an earlier fill.
        let mem = Memory::new();
        let mut ms = sys(&mem, Box::new(NoPrefetcher));
        let mut completions = Vec::new();
        for i in 0..16u64 {
            completions.push(ms.load(Addr(0x20_0000 + i * 4096), 0, RefId(0), HintSet::none()));
        }
        let first = completions[0];
        let last = *completions.last().unwrap();
        assert!(
            last > first + 50,
            "16 misses cannot all overlap with 8 MSHRs: {first} {last}"
        );
    }
}

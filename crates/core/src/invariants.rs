//! Live-run invariant checking, riding the [`Observer`] seam.
//!
//! [`InvariantObserver`] validates properties every scheme must satisfy
//! while a run is in progress: the prefetch in-flight lifecycle (no
//! double issue, every issued prefetch eventually fills, conservation at
//! run end), epoch-snapshot sanity (queue/MSHR occupancy bounds, counter
//! monotonicity, DRAM accounting identities), and — via
//! [`Observer::wants_structural_checks`] — the memory system's
//! structural walks over cache sets, MSHR files, DRAM bank state, and
//! the engine's queue. Violations are collected as messages rather than
//! panics so a fuzz harness can shrink a failing case before reporting.
//!
//! Compose with other observers through
//! [`ObserverPair`](crate::ObserverPair):
//!
//! ```
//! use grp_core::{InvariantObserver, LifecycleTracer, ObserverPair, SimConfig};
//! let cfg = SimConfig::paper();
//! let obs = ObserverPair(LifecycleTracer::new(), InvariantObserver::new(&cfg));
//! # let _ = obs;
//! ```

use std::collections::HashSet;

use grp_mem::BlockAddr;

use crate::config::SimConfig;
use crate::obs::{EpochSnapshot, Observer};

/// Cap on stored violation messages; further violations only count.
const MAX_STORED: usize = 32;

/// An [`Observer`] that checks run-wide invariants as the simulation
/// progresses. See the module docs for the property list.
#[derive(Debug, Clone)]
pub struct InvariantObserver {
    queue_capacity: usize,
    l2_mshr_capacity: usize,
    channels: usize,
    interval: u64,
    /// Prefetched blocks issued to DRAM and not yet filled.
    inflight: HashSet<u64>,
    issued: u64,
    prefetch_fills: u64,
    late_upgrades: u64,
    dropped: u64,
    last_epoch: Option<EpochSnapshot>,
    violations: Vec<String>,
    total_violations: u64,
}

impl InvariantObserver {
    /// Builds the checker from the run's configuration (queue and MSHR
    /// capacities, channel count), sampling every 1024 events.
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            queue_capacity: cfg.prefetch_queue,
            l2_mshr_capacity: cfg.l2_mshrs,
            channels: cfg.dram.channels,
            interval: 1024,
            inflight: HashSet::new(),
            issued: 0,
            prefetch_fills: 0,
            late_upgrades: 0,
            dropped: 0,
            last_epoch: None,
            violations: Vec::new(),
            total_violations: 0,
        }
    }

    /// Overrides the epoch/structural-check cadence (events per check).
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval.max(1);
        self
    }

    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.total_violations == 0
    }

    /// Stored violation messages (first [`MAX_STORED`]).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Total violations observed, including ones past the storage cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    fn report(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_STORED {
            self.violations.push(msg);
        }
    }

    fn check_monotone(&mut self, snap: &EpochSnapshot) {
        let Some(prev) = self.last_epoch.take() else {
            return;
        };
        let pairs: [(&str, u64, u64); 12] = [
            ("events", prev.events, snap.events),
            ("cycles", prev.cycles, snap.cycles),
            ("instructions", prev.instructions, snap.instructions),
            (
                "l2_demand_accesses",
                prev.l2_demand_accesses,
                snap.l2_demand_accesses,
            ),
            ("l2_demand_misses", prev.l2_demand_misses, snap.l2_demand_misses),
            ("useful_prefetches", prev.useful_prefetches, snap.useful_prefetches),
            (
                "late_prefetch_merges",
                prev.late_prefetch_merges,
                snap.late_prefetch_merges,
            ),
            ("prefetches_issued", prev.prefetches_issued, snap.prefetches_issued),
            ("demand_blocks", prev.demand_blocks, snap.demand_blocks),
            ("prefetch_blocks", prev.prefetch_blocks, snap.prefetch_blocks),
            ("row_hits", prev.row_hits, snap.row_hits),
            ("row_misses", prev.row_misses, snap.row_misses),
        ];
        for (name, before, after) in pairs {
            if after < before {
                self.report(format!(
                    "epoch: cumulative counter {name} went backwards: {before} -> {after}"
                ));
            }
        }
        for (ch, (b, a)) in prev
            .channel_busy_cycles
            .iter()
            .zip(snap.channel_busy_cycles.iter())
            .enumerate()
        {
            if a < b {
                self.report(format!(
                    "epoch: channel {ch} busy cycles went backwards: {b} -> {a}"
                ));
            }
        }
    }
}

impl Observer for InvariantObserver {
    fn epoch_interval(&self) -> Option<u64> {
        Some(self.interval)
    }

    fn wants_structural_checks(&self) -> bool {
        true
    }

    fn structural_violation(&mut self, msg: &str) {
        self.report(format!("structural: {msg}"));
    }

    fn prefetch_issued(
        &mut self,
        block: BlockAddr,
        now: u64,
        _channel: usize,
        _row_hit: bool,
        complete_at: u64,
    ) {
        if complete_at <= now {
            self.report(format!(
                "lifecycle: prefetch of {:#x} completes at {complete_at}, \
                 not after its issue at {now}",
                block.0
            ));
        }
        if !self.inflight.insert(block.0) {
            self.report(format!(
                "lifecycle: prefetch of {:#x} issued while already in flight",
                block.0
            ));
        }
        self.issued += 1;
    }

    fn l2_fill(&mut self, block: BlockAddr, prefetch: bool, _now: u64) {
        if prefetch {
            self.prefetch_fills += 1;
            if !self.inflight.remove(&block.0) {
                self.report(format!(
                    "lifecycle: prefetch fill of {:#x} with no in-flight prefetch",
                    block.0
                ));
            }
        } else {
            // A demand fill completes a late-upgraded prefetch if one was
            // in flight for this block.
            self.inflight.remove(&block.0);
        }
    }

    fn late_prefetch_merge(&mut self, block: BlockAddr, _now: u64) {
        self.late_upgrades += 1;
        if !self.inflight.contains(&block.0) {
            self.report(format!(
                "lifecycle: late merge into {:#x} with no in-flight prefetch",
                block.0
            ));
        }
    }

    fn prefetch_fill_dropped(&mut self, block: BlockAddr, _now: u64) {
        self.dropped += 1;
        if !self.inflight.remove(&block.0) {
            self.report(format!(
                "lifecycle: dropped fill of {:#x} with no in-flight prefetch",
                block.0
            ));
        }
    }

    fn epoch(&mut self, snap: &EpochSnapshot) {
        if snap.queue_occupancy > self.queue_capacity {
            self.report(format!(
                "epoch: engine queue occupancy {} exceeds capacity {}",
                snap.queue_occupancy, self.queue_capacity
            ));
        }
        if snap.l2_mshr_occupancy > self.l2_mshr_capacity {
            self.report(format!(
                "epoch: L2 MSHR occupancy {} exceeds capacity {}",
                snap.l2_mshr_occupancy, self.l2_mshr_capacity
            ));
        }
        if snap.l2_mshr_prefetches > snap.l2_mshr_occupancy {
            self.report(format!(
                "epoch: {} prefetch MSHR entries among {} occupied",
                snap.l2_mshr_prefetches, snap.l2_mshr_occupancy
            ));
        }
        if snap.channel_busy_cycles.len() != self.channels {
            self.report(format!(
                "epoch: busy-cycle vector has {} slots for {} channels",
                snap.channel_busy_cycles.len(),
                self.channels
            ));
        }
        if snap.prefetch_blocks != snap.prefetches_issued {
            self.report(format!(
                "epoch: DRAM prefetch blocks {} != prefetches issued {}",
                snap.prefetch_blocks, snap.prefetches_issued
            ));
        }
        if snap.l2_demand_misses > snap.l2_demand_accesses {
            self.report(format!(
                "epoch: L2 misses {} exceed accesses {}",
                snap.l2_demand_misses, snap.l2_demand_accesses
            ));
        }
        let total = snap.demand_blocks + snap.prefetch_blocks + snap.writeback_blocks;
        if snap.row_hits + snap.row_misses != total {
            self.report(format!(
                "epoch: row hits {} + misses {} != total DRAM accesses {total}",
                snap.row_hits, snap.row_misses
            ));
        }
        self.check_monotone(snap);
        self.last_epoch = Some(snap.clone());
    }

    fn run_end(&mut self, _final_cycle: u64) {
        if !self.inflight.is_empty() {
            self.report(format!(
                "end: {} issued prefetches never filled",
                self.inflight.len()
            ));
        }
        // Every issued prefetch resolves exactly once: as a prefetch
        // fill, as a demand fill after a late-merge upgrade, or — under
        // an injected fault — as an explicitly dropped fill. The
        // identity is never waived under a fault plan; the dropped leg
        // accounts for the faults instead.
        if self.issued != self.prefetch_fills + self.late_upgrades + self.dropped {
            self.report(format!(
                "end: conservation broken: issued {} != prefetch fills {} \
                 + late upgrades {} + dropped {}",
                self.issued, self.prefetch_fills, self.late_upgrades, self.dropped
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use crate::sim::{engine_for, run_trace_observed, run_trace_with_engine_observed};
    use grp_cpu::{HintSet, RefId, Trace};
    use grp_mem::{Addr, HeapRange, Memory};

    fn heap() -> HeapRange {
        HeapRange {
            start: Addr(0x10_0000),
            end: Addr(0x100_0000),
        }
    }

    fn hinted_stream(n: u64) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push_load(
                Addr(0x20_0000 + i * 8),
                8,
                RefId(0),
                HintSet::none().with_spatial(),
                None,
            );
            t.push_compute(4);
        }
        t.finish();
        t
    }

    #[test]
    fn clean_runs_have_no_violations() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = hinted_stream(20_000);
        for scheme in [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar, Scheme::Stride] {
            let obs = InvariantObserver::new(&cfg).with_interval(256);
            let (_, obs) = run_trace_observed(&trace, &mem, heap(), scheme, &cfg, obs);
            assert!(
                obs.ok(),
                "{scheme:?} violates invariants: {:?}",
                obs.violations()
            );
            if scheme == Scheme::Srp {
                assert!(obs.issued > 0, "SRP must actually prefetch");
            }
        }
    }

    #[test]
    fn unbounded_queue_fault_is_detected() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        // Sparse misses across many regions pile up queue entries; with
        // the drop loop disabled the queue exceeds its LIFO bound of 32.
        let mut t = Trace::new();
        for i in 0..4_000u64 {
            t.push_load(
                Addr(0x20_0000 + i * 4096),
                8,
                RefId(0),
                HintSet::none(),
                None,
            );
            t.push_compute(64);
        }
        t.finish();
        let mut engine = engine_for(Scheme::Srp, &cfg);
        engine.inject_fault_unbounded_queue();
        let obs = InvariantObserver::new(&cfg).with_interval(64);
        let (_, obs) =
            run_trace_with_engine_observed(&t, &mem, heap(), Scheme::Srp, &cfg, engine, obs);
        assert!(!obs.ok(), "unbounded queue must be detected");
        assert!(
            obs.violations()
                .iter()
                .any(|v| v.contains("exceeds capacity")),
            "violation names the bound: {:?}",
            obs.violations()
        );
    }

    #[test]
    fn violation_storage_is_capped() {
        let cfg = SimConfig::paper();
        let mut obs = InvariantObserver::new(&cfg);
        for i in 0..100 {
            obs.report(format!("synthetic {i}"));
        }
        assert_eq!(obs.violations().len(), MAX_STORED);
        assert_eq!(obs.total_violations(), 100);
    }
}

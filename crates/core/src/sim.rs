//! The trace-replay simulator: core window + memory system.

use grp_cpu::packed::{PseudoKind, FLAG_STORE, NO_DEP};
use grp_cpu::{PackedTrace, RefId, Trace, TraceEvent, Window};
use grp_mem::{Addr, HeapRange, Memory, TrafficStats};

use crate::config::{Scheme, SimConfig};
use crate::engine::region::{RegionConfig, RegionPrefetcher};
use crate::engine::stride::{StrideConfig, StridePrefetcher};
use crate::engine::{NoPrefetcher, Prefetcher};
use crate::faults::FaultPlan;
use crate::memsys::MemSystem;
use crate::obs::{NullObserver, Observer};
use crate::result::RunResult;

/// Builds the prefetch engine a scheme calls for.
pub fn engine_for(scheme: Scheme, cfg: &SimConfig) -> Box<dyn Prefetcher> {
    match scheme {
        Scheme::NoPrefetch | Scheme::PerfectL1 | Scheme::PerfectL2 => Box::new(NoPrefetcher),
        Scheme::Stride => Box::new(StridePrefetcher::new(StrideConfig::default())),
        Scheme::Srp => Box::new(RegionPrefetcher::new(RegionConfig::srp(cfg.prefetch_queue))),
        Scheme::GrpFix => Box::new(RegionPrefetcher::new(region_cfg(cfg, false))),
        // The §5.4 policy variants are GRP/Var with a different *compiler*
        // policy; the engine is the full variable-size one.
        Scheme::GrpVar | Scheme::GrpAggressive | Scheme::GrpConservative => {
            Box::new(RegionPrefetcher::new(region_cfg(cfg, true)))
        }
        Scheme::HwPointer => Box::new(RegionPrefetcher::new(RegionConfig::hw_pointer(
            cfg.prefetch_queue,
            cfg.hw_pointer_depth,
        ))),
        Scheme::SrpPointer => {
            let mut rc = RegionConfig::srp(cfg.prefetch_queue);
            rc.pointer_mode = crate::engine::region::PointerMode::AllMisses(cfg.hw_pointer_depth);
            Box::new(RegionPrefetcher::new(rc))
        }
        Scheme::GrpPointer => Box::new(RegionPrefetcher::new(RegionConfig::grp_pointer(
            cfg.prefetch_queue,
            cfg.recursive_depth,
        ))),
    }
}

fn region_cfg(cfg: &SimConfig, varsize: bool) -> RegionConfig {
    let mut rc = RegionConfig::grp(cfg.prefetch_queue, varsize, cfg.recursive_depth);
    rc.fifo = cfg.fifo_queue;
    rc
}

/// Replays a hinted trace through the timing model.
///
/// `mem` supplies the data values the pointer-scan and indirect engines
/// read; `heap` bounds the pointer base-and-bounds test.
pub fn run_trace(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
) -> RunResult {
    let engine = engine_for(scheme, cfg);
    run_trace_with_engine(trace, mem, heap, scheme, cfg, engine)
}

/// Replays a packed trace through the timing model — the fast tier.
///
/// The loop streams the packed struct-of-arrays directly: no per-event
/// enum dispatch, with the rare pseudo-events consulted from the sorted
/// side table. It reproduces the exact call sequence [`run_trace`] makes
/// into the window and memory system, so for any trace `t` the result is
/// bit-identical to `run_trace(&t, ..)` on `PackedTrace::pack(&t)` (the
/// `packed_replay_matches_materialized` determinism suite enforces this
/// across every kernel × scheme).
pub fn run_trace_packed(
    pt: &PackedTrace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
) -> RunResult {
    let engine = engine_for(scheme, cfg);
    let mut window = Window::new(cfg.window);
    let mut ms =
        MemSystem::with_observer(*cfg, scheme.ideal_mode(), engine, mem, heap, NullObserver);
    let mut load_completions: Vec<u64> = Vec::with_capacity(pt.loads() as usize);
    let mut load_latency_sum = 0u64;

    let (addrs, ref_ids, hints, flags, deps, pre_compute) = (
        pt.addrs(),
        pt.ref_ids(),
        pt.hints(),
        pt.flags(),
        pt.deps(),
        pt.pre_compute(),
    );
    let pseudos = pt.pseudos();
    let mut pi = 0usize;
    let fire_pseudo = |kind: PseudoKind, window: &mut Window, ms: &mut MemSystem<_>| match kind
    {
        PseudoKind::Compute(n) => window.dispatch_compute(n as u64),
        PseudoKind::SetLoopBound(b) => {
            let d = window.prepare_dispatch(1);
            ms.set_loop_bound(b);
            window.push(1, d + 1);
        }
        PseudoKind::IndirectPrefetch {
            base,
            elem_size,
            index_addr,
            ..
        } => {
            let d = window.prepare_dispatch(1);
            ms.indirect_prefetch(base, elem_size, index_addr, d);
            window.push(1, d + 1);
        }
    };

    for i in 0..pt.n_ops() {
        while pi < pseudos.len() && pseudos[pi].at_op as usize == i {
            fire_pseudo(pseudos[pi].kind, &mut window, &mut ms);
            pi += 1;
        }
        let pc = pre_compute[i];
        if pc != 0 {
            window.dispatch_compute(pc as u64);
        }
        let d = window.prepare_dispatch(1);
        let (addr, ref_id, h) = (Addr(addrs[i]), RefId(ref_ids[i]), hints[i]);
        if flags[i] & FLAG_STORE != 0 {
            ms.store(addr, d, ref_id, h);
            window.push(1, d + 1);
        } else {
            let dep = deps[i];
            let issue = if dep != NO_DEP {
                d.max(load_completions[dep as usize])
            } else {
                d
            };
            let done = ms.load(addr, issue, ref_id, h);
            load_latency_sum += done - issue;
            load_completions.push(done);
            window.push(1, done);
        }
    }
    while pi < pseudos.len() {
        fire_pseudo(pseudos[pi].kind, &mut window, &mut ms);
        pi += 1;
    }

    let cycles = window.finish();
    ms.finish(cycles);
    RunResult {
        scheme,
        cycles,
        instructions: window.retired(),
        l1: *ms.l1().stats(),
        l2: *ms.l2().stats(),
        traffic: TrafficStats::from_dram(ms.dram().stats()),
        engine: ms.engine().stats(),
        prefetches_issued: ms.prefetches_issued(),
        late_prefetch_merges: ms.l2_mshrs().late_prefetch_merges(),
        resident_unused_prefetches: ms.l2().resident_unused_prefetches(),
        attribution: ms.attribution().clone(),
        load_latency_sum,
    }
}

/// Like [`run_trace`], with a caller-supplied engine (ablation studies).
pub fn run_trace_with_engine(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    engine: Box<dyn Prefetcher>,
) -> RunResult {
    run_trace_with_engine_observed(trace, mem, heap, scheme, cfg, engine, NullObserver).0
}

/// Like [`run_trace`], threading an [`Observer`] through the replay.
///
/// Returns the observer alongside the result so callers can pull the
/// collected trace/metrics back out. With [`NullObserver`] this
/// monomorphizes to exactly the unobserved replay loop.
pub fn run_trace_observed<O: Observer>(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    obs: O,
) -> (RunResult, O) {
    let engine = engine_for(scheme, cfg);
    run_trace_with_engine_observed(trace, mem, heap, scheme, cfg, engine, obs)
}

/// Like [`run_trace`], replaying under a [`FaultPlan`]. An empty plan
/// yields a bit-identical result to the unfaulted run.
pub fn run_trace_faulted(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> RunResult {
    let engine = engine_for(scheme, cfg);
    replay(trace, mem, heap, scheme, cfg, engine, NullObserver, Some(plan)).0
}

/// Like [`run_trace_observed`], replaying under a [`FaultPlan`]. Every
/// injected fault is reported through the observer's fault hooks.
pub fn run_trace_observed_faulted<O: Observer>(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    obs: O,
    plan: &FaultPlan,
) -> (RunResult, O) {
    let engine = engine_for(scheme, cfg);
    replay(trace, mem, heap, scheme, cfg, engine, obs, Some(plan))
}

/// The fully general replay: caller-supplied engine *and* observer.
#[allow(clippy::too_many_arguments)]
pub fn run_trace_with_engine_observed<O: Observer>(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    engine: Box<dyn Prefetcher>,
    obs: O,
) -> (RunResult, O) {
    replay(trace, mem, heap, scheme, cfg, engine, obs, None)
}

/// Like [`run_trace_with_engine_observed`], optionally armed with a
/// [`FaultPlan`] — the superset entry point every wrapper above feeds.
#[allow(clippy::too_many_arguments)]
pub fn replay<O: Observer>(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    engine: Box<dyn Prefetcher>,
    obs: O,
    plan: Option<&FaultPlan>,
) -> (RunResult, O) {
    replay_injected(trace, mem, heap, scheme, cfg, engine, obs, plan, false)
}

/// [`replay`] with the dropped-fill MSHR-leak bug optionally armed —
/// the seam behind the `check` gate's `--inject drop-leak` teeth test.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn replay_injected<O: Observer>(
    trace: &Trace,
    mem: &Memory,
    heap: HeapRange,
    scheme: Scheme,
    cfg: &SimConfig,
    engine: Box<dyn Prefetcher>,
    obs: O,
    plan: Option<&FaultPlan>,
    drop_leak: bool,
) -> (RunResult, O) {
    let mut window = Window::new(cfg.window);
    let mut ms = MemSystem::with_observer(*cfg, scheme.ideal_mode(), engine, mem, heap, obs);
    if let Some(plan) = plan {
        ms.install_faults(plan);
    }
    if drop_leak {
        ms.inject_fault_drop_leak();
    }
    let mut events = 0u64;
    let mut load_completions: Vec<u64> = Vec::with_capacity(trace.loads() as usize);
    let mut load_latency_sum = 0u64;

    for ev in trace.events() {
        match ev {
            TraceEvent::Compute(n) => window.dispatch_compute(*n as u64),
            TraceEvent::Load {
                addr,
                ref_id,
                hints,
                dep,
                ..
            } => {
                let d = window.prepare_dispatch(1);
                // An address dependency delays issue until the producing
                // load's value returns (pointer chasing serializes).
                let issue = match dep {
                    Some(seq) => d.max(load_completions[*seq as usize]),
                    None => d,
                };
                let done = ms.load(*addr, issue, *ref_id, *hints);
                load_latency_sum += done - issue;
                load_completions.push(done);
                window.push(1, done);
            }
            TraceEvent::Store {
                addr,
                ref_id,
                hints,
                ..
            } => {
                let d = window.prepare_dispatch(1);
                // Stores retire through the write buffer: the window entry
                // completes immediately; the fill proceeds in background.
                ms.store(*addr, d, *ref_id, *hints);
                window.push(1, d + 1);
            }
            TraceEvent::SetLoopBound(b) => {
                let d = window.prepare_dispatch(1);
                ms.set_loop_bound(*b);
                window.push(1, d + 1);
            }
            TraceEvent::IndirectPrefetch {
                base,
                elem_size,
                index_addr,
                ..
            } => {
                let d = window.prepare_dispatch(1);
                ms.indirect_prefetch(*base, *elem_size, *index_addr, d);
                window.push(1, d + 1);
            }
        }
        // Epoch heartbeat: counted per committed trace event, stamped with
        // retired-instruction and core-cycle progress. Compiled out (with
        // the counter) when the observer is the no-op default.
        if O::ENABLED {
            events += 1;
            ms.epoch_tick(events, window.dispatched(), window.now());
        }
    }

    let cycles = window.finish();
    ms.finish(cycles);

    let result = RunResult {
        scheme,
        cycles,
        instructions: window.retired(),
        l1: *ms.l1().stats(),
        l2: *ms.l2().stats(),
        traffic: TrafficStats::from_dram(ms.dram().stats()),
        engine: ms.engine().stats(),
        prefetches_issued: ms.prefetches_issued(),
        late_prefetch_merges: ms.l2_mshrs().late_prefetch_merges(),
        resident_unused_prefetches: ms.l2().resident_unused_prefetches(),
        attribution: ms.attribution().clone(),
        load_latency_sum,
    };
    (result, ms.into_observer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use grp_cpu::{HintSet, RefId};
    use grp_mem::Addr;

    fn heap() -> HeapRange {
        HeapRange {
            start: Addr(0x10_0000),
            end: Addr(0x100_0000),
        }
    }

    /// A streaming trace: `n` sequential 8-byte loads with `gap` compute
    /// instructions between them.
    fn stream_trace(n: u64, gap: u32, hints: HintSet) -> Trace {
        let mut t = Trace::new();
        for i in 0..n {
            t.push_load(Addr(0x20_0000 + i * 8), 8, RefId(0), hints, None);
            t.push_compute(gap);
        }
        t.finish();
        t
    }

    #[test]
    fn srp_beats_no_prefetch_on_streams() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(20_000, 4, HintSet::none());
        let base = run_trace(&trace, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let srp = run_trace(&trace, &mem, heap(), Scheme::Srp, &cfg);
        assert!(
            srp.cycles < base.cycles * 9 / 10,
            "SRP speeds up streaming: {} vs {}",
            srp.cycles,
            base.cycles
        );
        assert!(srp.traffic.prefetch_blocks > 0);
    }

    #[test]
    fn grp_matches_srp_on_hinted_streams_without_it_on_unhinted() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let hinted = stream_trace(20_000, 4, HintSet::none().with_spatial());
        let unhinted = stream_trace(20_000, 4, HintSet::none());
        let grp_hinted = run_trace(&hinted, &mem, heap(), Scheme::GrpFix, &cfg);
        let grp_unhinted = run_trace(&unhinted, &mem, heap(), Scheme::GrpFix, &cfg);
        let base = run_trace(&unhinted, &mem, heap(), Scheme::NoPrefetch, &cfg);
        assert!(grp_hinted.cycles < base.cycles * 9 / 10);
        assert_eq!(
            grp_unhinted.traffic.prefetch_blocks, 0,
            "GRP without hints prefetches nothing"
        );
        assert!(grp_unhinted.cycles >= base.cycles * 99 / 100);
    }

    #[test]
    fn perfect_hierarchies_bound_everything() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(5_000, 4, HintSet::none());
        let base = run_trace(&trace, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let l2 = run_trace(&trace, &mem, heap(), Scheme::PerfectL2, &cfg);
        let l1 = run_trace(&trace, &mem, heap(), Scheme::PerfectL1, &cfg);
        assert!(l1.cycles <= l2.cycles);
        assert!(l2.cycles <= base.cycles);
        assert_eq!(l1.traffic.total_blocks(), 0);
        assert_eq!(l2.traffic.total_blocks(), 0);
    }

    #[test]
    fn stride_prefetching_helps_strided_streams() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        // Stride of 256 bytes with real compute between accesses (dense
        // all-miss streams saturate the MSHRs and leave no room for any
        // prefetcher): the stride engine must learn and cover it.
        let mut t = Trace::new();
        for i in 0..20_000u64 {
            t.push_load(Addr(0x20_0000 + i * 256), 8, RefId(0), HintSet::none(), None);
            t.push_compute(48);
        }
        t.finish();
        let base = run_trace(&t, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let stride = run_trace(&t, &mem, heap(), Scheme::Stride, &cfg);
        assert!(
            stride.cycles < base.cycles * 95 / 100,
            "stride engine learned the stream: {} vs {}",
            stride.cycles,
            base.cycles
        );
    }

    #[test]
    fn dependent_chain_is_slower_than_independent_loads() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        // Independent loads to distinct blocks.
        let mut ind = Trace::new();
        for i in 0..512u64 {
            ind.push_load(Addr(0x20_0000 + i * 4096), 8, RefId(0), HintSet::none(), None);
            ind.push_compute(2);
        }
        ind.finish();
        // Chained loads: each depends on the previous.
        let mut chain = Trace::new();
        let mut prev = None;
        for i in 0..512u64 {
            let s = chain.push_load(
                Addr(0x80_0000 + i * 4096),
                8,
                RefId(1),
                HintSet::none(),
                prev,
            );
            prev = Some(s);
            chain.push_compute(2);
        }
        chain.finish();
        let r_ind = run_trace(&ind, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let r_chain = run_trace(&chain, &mem, heap(), Scheme::NoPrefetch, &cfg);
        assert!(
            r_chain.cycles > r_ind.cycles * 2,
            "dependent chain serializes: {} vs {}",
            r_chain.cycles,
            r_ind.cycles
        );
    }

    #[test]
    fn srp_consumes_much_more_traffic_than_baseline() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        // Sparse access pattern: one block per region — SRP prefetches
        // 63 useless blocks per miss.
        let mut t = Trace::new();
        for i in 0..2_000u64 {
            t.push_load(Addr(0x20_0000 + i * 4096), 8, RefId(0), HintSet::none(), None);
            t.push_compute(64);
        }
        t.finish();
        let base = run_trace(&t, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let srp = run_trace(&t, &mem, heap(), Scheme::Srp, &cfg);
        assert!(
            srp.traffic_vs(&base) > 2.0,
            "sparse SRP wastes bandwidth: {}",
            srp.traffic_vs(&base)
        );
        // But performance must not collapse (prioritizer protects demand).
        assert!(srp.cycles < base.cycles * 21 / 20);
    }

    #[test]
    fn indirect_prefetch_drops_negative_indices_in_replay() {
        // Regression: an index block holding negative (corrupt or
        // uninitialized) i32 values used to wrap `base + idx * elem_size`
        // into a garbage high address and prefetch it. The engine must
        // drop out-of-range targets and count them, while still issuing
        // the valid entries from the same block.
        let mut mem = Memory::new();
        let index_addr = Addr(0x20_0000);
        for w in 0..16u64 {
            let v: i32 = match w % 4 {
                0 => i32::MIN,
                1 => -0x20_0000, // scaled past the base: target < 0
                _ => (w as i32) * 3,
            };
            mem.write_i32(Addr(index_addr.0 + w * 4), v);
        }
        let cfg = SimConfig::paper();
        let mut t = Trace::new();
        t.push_load(index_addr, 4, RefId(0), HintSet::none(), None);
        t.push_indirect_prefetch(Addr(0x40_0000), 4, index_addr, RefId(0));
        // Follow-on loads give the engine access slots to drain its queue.
        for i in 0..256u64 {
            t.push_load(Addr(0x60_0000 + i * 64), 8, RefId(1), HintSet::none(), None);
            t.push_compute(8);
        }
        t.finish();
        for scheme in [Scheme::GrpVar, Scheme::GrpPointer] {
            let r = run_trace(&t, &mem, heap(), scheme, &cfg);
            // 16 words per index block: 8 negative (w % 4 in {0, 1}),
            // 8 valid.
            assert_eq!(r.engine.indirect_dropped, 8, "{scheme:?}");
            assert_eq!(r.engine.indirect_entries, 8, "{scheme:?}");
        }
    }

    #[test]
    fn packed_replay_is_bit_identical_to_materialized() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        // A trace exercising every packed representation feature: deps
        // (chained loads), stores, pseudo-events adjacent to computes.
        let mut t = Trace::new();
        let mut prev = None;
        for i in 0..4_000u64 {
            let s = t.push_load(
                Addr(0x20_0000 + (i * 8) % 0x4_0000),
                8,
                RefId((i % 7) as u32),
                HintSet::none().with_spatial(),
                if i % 5 == 0 { prev } else { None },
            );
            prev = Some(s);
            if i % 3 == 0 {
                t.push_store(Addr(0x30_0000 + i * 16), 8, RefId(9), HintSet::none());
            }
            if i % 64 == 0 {
                t.push_compute(10);
                t.push_set_loop_bound((i % 1000) as u32);
                t.push_compute(5);
            }
            if i % 97 == 0 {
                t.push_indirect_prefetch(Addr(0x20_0000), 8, Addr(0x20_1000), RefId(11));
            }
            t.push_compute(4);
        }
        t.finish();
        let pt = grp_cpu::PackedTrace::pack(&t).expect("pack");
        for scheme in Scheme::ALL {
            let materialized = run_trace(&t, &mem, heap(), scheme, &cfg);
            let packed = run_trace_packed(&pt, &mem, heap(), scheme, &cfg);
            assert_eq!(materialized, packed, "{scheme:?}");
        }
    }

    #[test]
    fn zero_fault_plan_is_bit_identical_to_unfaulted_run() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(5_000, 4, HintSet::none().with_spatial());
        for scheme in [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar, Scheme::Stride] {
            let plain = run_trace(&trace, &mem, heap(), scheme, &cfg);
            let faulted =
                run_trace_faulted(&trace, &mem, heap(), scheme, &cfg, &FaultPlan::none());
            assert_eq!(plain, faulted, "{scheme:?}: empty plan must be inert");
        }
    }

    #[test]
    fn faulted_runs_complete_and_degrade_gracefully() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(10_000, 4, HintSet::none().with_spatial());
        let srp = run_trace(&trace, &mem, heap(), Scheme::Srp, &cfg);
        for (name, plan) in FaultPlan::builtin() {
            let faulted = run_trace_faulted(&trace, &mem, heap(), Scheme::Srp, &cfg, &plan);
            // Demand correctness: the same loads retire, stats stay sane.
            assert_eq!(faulted.instructions, srp.instructions, "{name}");
            // Faults only remove capacity/timeliness, so a faulted
            // prefetcher never beats its unfaulted self.
            assert!(faulted.cycles >= srp.cycles, "{name}: faults cannot speed up a run");
            // Graceful degradation: under the same fault plan, the
            // prefetching scheme lands in the vicinity of the
            // no-prefetch baseline — faults take away the benefit but
            // the prioritizer keeps prefetch traffic from compounding
            // the damage. Delayed fills are the one fault that can
            // actively hurt: a demand merging into an in-flight
            // prefetch MSHR inherits the delayed fill time (the block
            // is held hostage), so those plans get a wider bound.
            let faulted_base =
                run_trace_faulted(&trace, &mem, heap(), Scheme::NoPrefetch, &cfg, &plan);
            let delays_fills = plan
                .events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::DelayFills { .. }));
            let (num, den) = if delays_fills { (3, 1) } else { (5, 4) };
            assert!(
                faulted.cycles <= faulted_base.cycles * num / den,
                "{name}: degrades toward the no-prefetch baseline: {} vs faulted base {}",
                faulted.cycles,
                faulted_base.cycles
            );
        }
    }

    #[test]
    fn dropped_fills_are_refetched_on_demand() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(5_000, 4, HintSet::none());
        let (_, plan) = FaultPlan::builtin()
            .into_iter()
            .find(|(n, _)| *n == "dropped-fills")
            .unwrap();
        let srp = run_trace(&trace, &mem, heap(), Scheme::Srp, &cfg);
        let dropped = run_trace_faulted(&trace, &mem, heap(), Scheme::Srp, &cfg, &plan);
        // Every prefetch loses its data, so the stream's misses come
        // back; the run degrades toward (and lands near) no-prefetch.
        assert!(
            dropped.l2.demand_misses > srp.l2.demand_misses,
            "dropping fills costs misses: {} vs {}",
            dropped.l2.demand_misses,
            srp.l2.demand_misses
        );
    }

    #[test]
    fn run_result_metrics_are_consistent() {
        let mem = Memory::new();
        let cfg = SimConfig::paper();
        let trace = stream_trace(5_000, 16, HintSet::none());
        let base = run_trace(&trace, &mem, heap(), Scheme::NoPrefetch, &cfg);
        let srp = run_trace(&trace, &mem, heap(), Scheme::Srp, &cfg);
        assert_eq!(base.instructions, trace.instructions());
        assert!(base.ipc() > 0.0);
        assert!(srp.speedup_vs(&base) > 1.0);
        assert!(srp.coverage_vs(&base) > 0.5, "streaming coverage is high");
        assert!(srp.accuracy() > 0.5, "streaming accuracy is high");
        // Prefetching shortens the average load latency.
        assert!(
            srp.avg_load_latency(trace.loads()) < base.avg_load_latency(trace.loads()),
            "SRP {} vs base {}",
            srp.avg_load_latency(trace.loads()),
            base.avg_load_latency(trace.loads())
        );
    }
}

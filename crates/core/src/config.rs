//! Simulation configuration and the experiment schemes.

use grp_compiler::AnalysisConfig;
use grp_cpu::WindowConfig;
use grp_mem::{CacheConfig, DramConfig};

/// Cache-idealization modes used by Figure 1's bounding bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdealMode {
    /// Realistic memory hierarchy.
    #[default]
    None,
    /// Every memory access hits in L1 (perfect L1).
    PerfectL1,
    /// Every L2 access hits (perfect L2); L1 behaves normally.
    PerfectL2,
}

/// How the prefetch engine reacts to hints and misses — one row of the
/// paper's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// No prefetching (the normalization baseline).
    NoPrefetch,
    /// Predictor-directed stride stream buffers (Sherwood et al.), no
    /// compiler support.
    Stride,
    /// Scheduled region prefetching (Lin et al.): 4 KB regions on every
    /// L2 miss, no compiler support.
    Srp,
    /// GRP with fixed-size (4 KB) regions: all hints except `size`.
    GrpFix,
    /// GRP with variable-size regions: the full design.
    GrpVar,
    /// Hardware pointer prefetching alone (§3.2; Figure 9): scan every
    /// returned miss line for heap addresses, no hints, no regions.
    HwPointer,
    /// SRP and hardware pointer prefetching together (§5.2: "applying
    /// SRP and pointer prefetching together gives little benefit and
    /// sometimes degrades the performance due to much higher bandwidth
    /// consumption").
    SrpPointer,
    /// Pointer prefetching gated by `pointer`/`recursive` hints only
    /// (Figure 9's GRP-with-pointer-hints discussion): no region engine.
    GrpPointer,
    /// GRP/Var with the §5.4 aggressive spatial policy.
    GrpAggressive,
    /// GRP/Var with the §5.4 conservative spatial policy.
    GrpConservative,
    /// Ideal L1 (Figure 1 upper bound).
    PerfectL1,
    /// Ideal L2 (the paper's headline comparison point).
    PerfectL2,
}

impl Scheme {
    /// All schemes in the paper's usual presentation order.
    pub const ALL: [Scheme; 12] = [
        Scheme::NoPrefetch,
        Scheme::Stride,
        Scheme::Srp,
        Scheme::GrpFix,
        Scheme::GrpVar,
        Scheme::HwPointer,
        Scheme::SrpPointer,
        Scheme::GrpPointer,
        Scheme::GrpAggressive,
        Scheme::GrpConservative,
        Scheme::PerfectL1,
        Scheme::PerfectL2,
    ];

    /// The compiler configuration whose hints this scheme's *trace* must
    /// carry; `None` means hints are irrelevant (an empty hint map — the
    /// engine is hint-blind anyway).
    pub fn compiler_config(self) -> Option<AnalysisConfig> {
        match self {
            Scheme::GrpFix => Some(AnalysisConfig::grp_fix()),
            Scheme::GrpVar => Some(AnalysisConfig::grp_var()),
            // Pointer-hints-only GRP still runs the spatial *analysis*:
            // Figure 8's rule 3 marks spatial heap-pointer arrays as
            // `pointer`, so the spatial pass must execute even though the
            // engine ignores spatial hints in this configuration.
            Scheme::GrpPointer => Some(AnalysisConfig {
                indirect: false,
                varsize: false,
                ..AnalysisConfig::default()
            }),
            Scheme::GrpAggressive => Some(AnalysisConfig::aggressive()),
            Scheme::GrpConservative => Some(AnalysisConfig::conservative()),
            _ => None,
        }
    }

    /// The cache idealization this scheme runs under.
    pub fn ideal_mode(self) -> IdealMode {
        match self {
            Scheme::PerfectL1 => IdealMode::PerfectL1,
            Scheme::PerfectL2 => IdealMode::PerfectL2,
            _ => IdealMode::None,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::NoPrefetch => "none",
            Scheme::Stride => "stride",
            Scheme::Srp => "SRP",
            Scheme::GrpFix => "GRP/Fix",
            Scheme::GrpVar => "GRP/Var",
            Scheme::HwPointer => "hw-ptr",
            Scheme::SrpPointer => "SRP+ptr",
            Scheme::GrpPointer => "GRP-ptr",
            Scheme::GrpAggressive => "GRP/aggr",
            Scheme::GrpConservative => "GRP/cons",
            Scheme::PerfectL1 => "perfect-L1",
            Scheme::PerfectL2 => "perfect-L2",
        }
    }

    /// The scheme whose [`Scheme::label`] is `label` — the inverse
    /// lookup the perf harness and serve protocol parse requests with.
    pub fn by_label(label: &str) -> Option<Scheme> {
        Scheme::ALL.into_iter().find(|s| s.label() == label)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full platform configuration — defaults reproduce the paper's §5.1
/// machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Core window geometry (4-wide, 64-entry RUU).
    pub window: WindowConfig,
    /// L1 data cache (64 KB 2-way).
    pub l1: CacheConfig,
    /// Unified L2 (1 MB 4-way).
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (paper: 3).
    pub l1_latency: u64,
    /// L2 hit latency in cycles beyond L1 (paper: 12).
    pub l2_latency: u64,
    /// MSHRs per cache (paper: 8).
    pub l1_mshrs: usize,
    /// MSHRs at the L2 (paper: 8).
    pub l2_mshrs: usize,
    /// DRAM parameters (4-channel Rambus-like).
    pub dram: DramConfig,
    /// Prefetch queue capacity (paper: 32, LIFO).
    pub prefetch_queue: usize,
    /// Recursion depth seeded by a `recursive pointer` hint (paper: 6).
    pub recursive_depth: u8,
    /// Pointer-chase depth for hardware-only pointer prefetching.
    pub hw_pointer_depth: u8,
    /// Use FIFO instead of LIFO prefetch-queue scheduling (ablation; the
    /// paper uses LIFO).
    pub fifo_queue: bool,
    /// Insert prefetches at MRU instead of LRU (ablation; the paper
    /// inserts at LRU to bound pollution).
    pub prefetch_mru_insert: bool,
}

impl SimConfig {
    /// The paper's evaluation platform.
    pub fn paper() -> Self {
        Self {
            window: WindowConfig::default(),
            l1: CacheConfig::l1_spec(),
            l2: CacheConfig::l2_spec(),
            l1_latency: 3,
            l2_latency: 12,
            l1_mshrs: 8,
            l2_mshrs: 8,
            dram: DramConfig::default(),
            prefetch_queue: 32,
            recursive_depth: 6,
            hw_pointer_depth: 1,
            fifo_queue: false,
            prefetch_mru_insert: false,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_5_1() {
        let c = SimConfig::paper();
        assert_eq!(c.window.width, 4);
        assert_eq!(c.window.capacity, 64);
        assert_eq!(c.l1.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l1_latency, 3);
        assert_eq!(c.l2_latency, 12);
        assert_eq!(c.l1_mshrs, 8);
        assert_eq!(c.l2_mshrs, 8);
        assert_eq!(c.dram.channels, 4);
        assert_eq!(c.prefetch_queue, 32);
        assert_eq!(c.recursive_depth, 6);
    }

    #[test]
    fn scheme_compiler_configs() {
        assert!(Scheme::NoPrefetch.compiler_config().is_none());
        assert!(Scheme::Srp.compiler_config().is_none());
        assert!(Scheme::Stride.compiler_config().is_none());
        assert!(Scheme::HwPointer.compiler_config().is_none());
        let fix = Scheme::GrpFix.compiler_config().unwrap();
        assert!(!fix.varsize);
        let var = Scheme::GrpVar.compiler_config().unwrap();
        assert!(var.varsize);
        let ptr = Scheme::GrpPointer.compiler_config().unwrap();
        assert!(ptr.spatial && ptr.pointer && !ptr.indirect && !ptr.varsize);
    }

    #[test]
    fn scheme_ideal_modes_and_labels() {
        assert_eq!(Scheme::PerfectL1.ideal_mode(), IdealMode::PerfectL1);
        assert_eq!(Scheme::PerfectL2.ideal_mode(), IdealMode::PerfectL2);
        assert_eq!(Scheme::GrpVar.ideal_mode(), IdealMode::None);
        assert_eq!(Scheme::GrpVar.to_string(), "GRP/Var");
        assert_eq!(Scheme::ALL.len(), 12);
    }

    #[test]
    fn scheme_label_round_trips() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::by_label(s.label()), Some(s), "{s}");
        }
        assert_eq!(Scheme::by_label("nope"), None);
        assert_eq!(Scheme::by_label(""), None);
    }
}

//! Per-run results and the derived metrics the paper reports.

use grp_mem::{CacheStats, TrafficStats};

use crate::config::Scheme;
use crate::engine::EngineStats;
use crate::memsys::MissAttribution;

/// Everything one simulation produces. Every field is an exact integer
/// counter, so `PartialEq` means bit-identical runs — the property the
/// parallel-precompute determinism test checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// The scheme simulated.
    pub scheme: Scheme,
    /// Total execution cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// L1 data cache counters.
    pub l1: CacheStats,
    /// L2 cache counters.
    pub l2: CacheStats,
    /// Memory traffic ledger (demand + prefetch + writeback blocks).
    pub traffic: TrafficStats,
    /// Engine counters.
    pub engine: EngineStats,
    /// Prefetch blocks issued to DRAM.
    pub prefetches_issued: u64,
    /// Demand misses that merged with an in-flight prefetch (late
    /// prefetches: partially hidden latency).
    pub late_prefetch_merges: u64,
    /// Prefetched lines still resident and untouched at run end
    /// (folded into the accuracy denominator).
    pub resident_unused_prefetches: u64,
    /// Per-site L2 demand miss attribution.
    pub attribution: MissAttribution,
    /// Sum of (completion − issue) over all loads, in cycles.
    pub load_latency_sum: u64,
}

impl RunResult {
    /// Average load latency in cycles (issue to data return), across
    /// *all* loads — L1 hits and misses alike. The headline view of how
    /// much latency prefetching removed from the load stream.
    pub fn avg_load_latency(&self, loads: u64) -> f64 {
        if loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / loads as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run over `base` (same workload).
    pub fn speedup_vs(&self, base: &RunResult) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        base.cycles as f64 / self.cycles as f64
    }

    /// L2 demand misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2.demand_misses
    }

    /// Coverage versus a no-prefetch baseline: the fraction of baseline
    /// L2 misses eliminated (the paper's Table 5 metric). Can be negative
    /// when prefetching *adds* misses (pollution).
    pub fn coverage_vs(&self, base: &RunResult) -> f64 {
        if base.l2_misses() == 0 {
            return 0.0;
        }
        (base.l2_misses() as f64 - self.l2_misses() as f64) / base.l2_misses() as f64
    }

    /// Prefetch accuracy: prefetched blocks referenced before eviction,
    /// over all prefetched blocks (late merges count as useful; blocks
    /// still resident and untouched at the end count against).
    pub fn accuracy(&self) -> f64 {
        let useful = self.l2.useful_prefetches + self.late_prefetch_merges;
        let useless = self.l2.useless_prefetches + self.resident_unused_prefetches;
        let total = useful + useless;
        if total == 0 {
            0.0
        } else {
            useful as f64 / total as f64
        }
    }

    /// Traffic normalized to a baseline run.
    pub fn traffic_vs(&self, base: &RunResult) -> f64 {
        self.traffic.normalized_to(&base.traffic)
    }

    /// Performance gap versus a perfect-L2 run, in percent
    /// (the paper's "performance gap from perfect L2").
    pub fn gap_vs_perfect(&self, perfect: &RunResult) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (1.0 - perfect.cycles as f64 / self.cycles as f64) * 100.0
    }
}

/// Geometric mean over a nonempty slice (the paper summarizes with
/// geometric means). Returns 0.0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_mem::TrafficStats;

    fn result(cycles: u64, insts: u64) -> RunResult {
        RunResult {
            scheme: Scheme::NoPrefetch,
            cycles,
            instructions: insts,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            traffic: TrafficStats::default(),
            engine: EngineStats::default(),
            prefetches_issued: 0,
            late_prefetch_merges: 0,
            resident_unused_prefetches: 0,
            attribution: MissAttribution::default(),
            load_latency_sum: 0,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let base = result(1000, 2000);
        let fast = result(500, 2000);
        assert!((base.ipc() - 2.0).abs() < 1e-12);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert_eq!(result(0, 10).ipc(), 0.0);
    }

    #[test]
    fn coverage_math() {
        let mut base = result(1000, 1000);
        base.l2.demand_misses = 100;
        let mut pf = result(800, 1000);
        pf.l2.demand_misses = 40;
        assert!((pf.coverage_vs(&base) - 0.6).abs() < 1e-12);
        // Pollution case: more misses than baseline.
        let mut bad = result(900, 1000);
        bad.l2.demand_misses = 120;
        assert!(bad.coverage_vs(&base) < 0.0);
    }

    #[test]
    fn accuracy_includes_late_and_resident() {
        let mut r = result(100, 100);
        r.l2.useful_prefetches = 6;
        r.late_prefetch_merges = 2;
        r.l2.useless_prefetches = 1;
        r.resident_unused_prefetches = 1;
        assert!((r.accuracy() - 0.8).abs() < 1e-12);
        assert_eq!(result(1, 1).accuracy(), 0.0);
    }

    #[test]
    fn gap_vs_perfect() {
        let real = result(1500, 1000);
        let perfect = result(1000, 1000);
        assert!((real.gap_vs_perfect(&perfect) - 33.333).abs() < 0.01);
    }

    #[test]
    fn avg_load_latency_math() {
        let mut r = result(100, 100);
        r.load_latency_sum = 500;
        assert!((r.avg_load_latency(100) - 5.0).abs() < 1e-12);
        assert_eq!(r.avg_load_latency(0), 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-9);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
    }
}

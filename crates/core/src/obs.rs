//! Zero-cost observability layer: the [`Observer`] trait plus the two
//! production observers ([`LifecycleTracer`], [`EpochSampler`]).
//!
//! The simulator core ([`crate::MemSystem`]) is generic over an
//! `O: Observer` parameter that defaults to [`NullObserver`]. Every hook
//! call site is guarded by `if O::ENABLED { ... }`, and `NullObserver`
//! sets `ENABLED = false`, so with observers disabled the entire layer
//! monomorphizes to nothing — the replay hot path is byte-for-byte the
//! code it was before this module existed.
//!
//! Event model. Observers see the full prefetch lifecycle:
//!
//! ```text
//! queued ──► issued ──► filled ──► first-demand-use
//!    │          │          │
//!    │          │          └────► evicted-unused / resident-at-end
//!    │          └───► late (demand merged into the in-flight MSHR)
//!    └───► squashed (stale / dropped / demand-hit)
//! ```
//!
//! plus L2 demand misses (for coverage), per-fill events, epoch
//! boundaries, and the end-of-run sweep.

use std::collections::HashMap;
use std::fmt;

use grp_mem::BlockAddr;

use crate::faults::FaultAction;

/// Why a queued-but-not-issued prefetch candidate was discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SquashReason {
    /// The block was already resident in L2 or in flight in an MSHR when
    /// the engine went to issue it (staleness check at issue time).
    Stale,
    /// The candidate was dropped because its queue entry was evicted to
    /// make room (engine capacity pressure).
    Dropped,
    /// A demand miss to the same region cleared the pending bit before
    /// the candidate could issue.
    DemandHit,
}

impl SquashReason {
    /// Stable lowercase label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            SquashReason::Stale => "stale",
            SquashReason::Dropped => "dropped",
            SquashReason::DemandHit => "demand_hit",
        }
    }
}

/// What happened to a candidate inside a prefetch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineEventKind {
    /// A block address was enqueued as a prefetch candidate.
    Queued,
    /// A queued candidate was discarded before issue.
    Squashed(SquashReason),
}

/// A buffered engine-side lifecycle event, drained by the memory system
/// after each engine call and stamped with the current cycle.
#[derive(Debug, Clone, Copy)]
pub struct EngineEvent {
    /// The candidate block address.
    pub block: BlockAddr,
    /// What happened to it.
    pub kind: EngineEventKind,
}

impl EngineEvent {
    /// A queued-candidate event.
    pub fn queued(block: BlockAddr) -> Self {
        EngineEvent { block, kind: EngineEventKind::Queued }
    }

    /// A squashed-candidate event.
    pub fn squashed(block: BlockAddr, reason: SquashReason) -> Self {
        EngineEvent { block, kind: EngineEventKind::Squashed(reason) }
    }
}

/// One row of the epoch metrics time-series: a snapshot of the running
/// counters every N committed trace events.
///
/// All counters are cumulative since the start of the run (so rates can
/// be computed both "so far" and per-epoch by differencing rows).
#[derive(Debug, Clone, Default)]
pub struct EpochSnapshot {
    /// Committed trace events so far.
    pub events: u64,
    /// Dispatched instruction slots so far (IPC numerator).
    pub instructions: u64,
    /// Core cycle at the snapshot (IPC denominator).
    pub cycles: u64,
    /// L2 demand accesses so far.
    pub l2_demand_accesses: u64,
    /// L2 demand misses so far.
    pub l2_demand_misses: u64,
    /// Prefetched L2 lines touched by demand before eviction, so far.
    pub useful_prefetches: u64,
    /// Prefetched L2 lines evicted untouched, so far.
    pub useless_prefetches: u64,
    /// Demand misses merged into an in-flight prefetch MSHR, so far.
    pub late_prefetch_merges: u64,
    /// Prefetch requests issued to DRAM so far.
    pub prefetches_issued: u64,
    /// Prefetch-engine queue occupancy at the snapshot (live candidates).
    pub queue_occupancy: usize,
    /// L2 MSHR entries in flight at the snapshot.
    pub l2_mshr_occupancy: usize,
    /// L2 MSHR entries that are prefetch fills at the snapshot.
    pub l2_mshr_prefetches: usize,
    /// Demand blocks transferred from DRAM so far.
    pub demand_blocks: u64,
    /// Prefetch blocks transferred from DRAM so far.
    pub prefetch_blocks: u64,
    /// Writeback blocks transferred to DRAM so far.
    pub writeback_blocks: u64,
    /// DRAM row-buffer hits so far.
    pub row_hits: u64,
    /// DRAM row-buffer misses so far.
    pub row_misses: u64,
    /// Per-channel DRAM data-bus busy cycles so far.
    pub channel_busy_cycles: Vec<u64>,
}

impl EpochSnapshot {
    /// Instructions per cycle so far (0.0 before the first cycle).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 { 0.0 } else { self.instructions as f64 / self.cycles as f64 }
    }

    /// L2 demand miss rate so far (0.0 with no accesses).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_demand_accesses == 0 {
            0.0
        } else {
            self.l2_demand_misses as f64 / self.l2_demand_accesses as f64
        }
    }

    /// Running prefetch accuracy: (useful + late) / all resolved
    /// prefetched lines. Lines still resident or in flight are not yet
    /// resolved, so this converges to [`crate::RunResult::accuracy`] at
    /// the end of the run only up to the resident tail.
    pub fn running_accuracy(&self) -> f64 {
        let good = self.useful_prefetches + self.late_prefetch_merges;
        let denom = good + self.useless_prefetches;
        if denom == 0 { 0.0 } else { good as f64 / denom as f64 }
    }

    /// Running prefetch coverage in the canonical sense: the fraction of
    /// would-be demand misses served by a prefetched line,
    /// useful / (useful + demand misses).
    pub fn running_coverage(&self) -> f64 {
        let denom = self.useful_prefetches + self.l2_demand_misses;
        if denom == 0 { 0.0 } else { self.useful_prefetches as f64 / denom as f64 }
    }

    /// Fraction of cycles so far that channel `ch`'s data bus was busy.
    pub fn channel_busy_fraction(&self, ch: usize) -> f64 {
        if self.cycles == 0 || ch >= self.channel_busy_cycles.len() {
            0.0
        } else {
            self.channel_busy_cycles[ch] as f64 / self.cycles as f64
        }
    }
}

/// Simulator-wide observer hooks. Every method has an empty default so
/// an observer implements only what it cares about.
///
/// Implementors that do real work keep the default `ENABLED = true`;
/// [`NullObserver`] overrides it to `false`, which lets every call site
/// in the memory system const-fold away under monomorphization.
pub trait Observer {
    /// Whether this observer's hooks should be invoked at all. Call
    /// sites guard with `if O::ENABLED`, so a `false` here removes the
    /// entire observability layer from the compiled hot path.
    const ENABLED: bool = true;

    /// Epoch length in committed trace events, or `None` for no epoch
    /// sampling. Only consulted when `ENABLED`.
    fn epoch_interval(&self) -> Option<u64> {
        None
    }

    /// A prefetch candidate entered an engine queue at `now`.
    fn prefetch_queued(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// A queued candidate was discarded before issue.
    fn prefetch_squashed(&mut self, block: BlockAddr, reason: SquashReason, now: u64) {
        let _ = (block, reason, now);
    }

    /// A prefetch request was issued to DRAM channel `channel` at `now`;
    /// its fill completes at `complete_at`.
    fn prefetch_issued(
        &mut self,
        block: BlockAddr,
        now: u64,
        channel: usize,
        row_hit: bool,
        complete_at: u64,
    ) {
        let _ = (block, now, channel, row_hit, complete_at);
    }

    /// A fill arrived at L2 at `now`. `prefetch` is true when the fill
    /// still carries prefetch attribution (a late-merged demand clears
    /// it before the fill lands).
    fn l2_fill(&mut self, block: BlockAddr, prefetch: bool, now: u64) {
        let _ = (block, prefetch, now);
    }

    /// A demand access touched a prefetched L2 line for the first time.
    fn prefetch_first_use(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// A prefetched L2 line was evicted without ever being used.
    fn prefetch_evicted_unused(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// A demand miss merged into an in-flight prefetch MSHR (the
    /// prefetch was correct but late).
    fn late_prefetch_merge(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// A fault-injection action from the armed [`crate::FaultPlan`] was
    /// applied at `now`. Faults are first-class observable events, so
    /// lifecycle conservation is never waived under a fault plan.
    fn fault_injected(&mut self, action: &FaultAction, now: u64) {
        let _ = (action, now);
    }

    /// An in-flight prefetch fill lost its data to an injected fault:
    /// the MSHR register was released on schedule but no line was
    /// installed (the explicit `dropped` conservation leg).
    fn prefetch_fill_dropped(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// A prefetch issued at `now` will land `extra` cycles later than
    /// the DRAM timing says, due to an injected delay window.
    fn prefetch_fill_delayed(&mut self, block: BlockAddr, extra: u64, now: u64) {
        let _ = (block, extra, now);
    }

    /// An L2 demand miss was recorded (after attribution).
    fn l2_demand_miss(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
    }

    /// An epoch boundary was reached; `snap` holds the running counters.
    fn epoch(&mut self, snap: &EpochSnapshot) {
        let _ = snap;
    }

    /// The run finished (all in-flight fills drained) at `final_cycle`.
    fn run_end(&mut self, final_cycle: u64) {
        let _ = final_cycle;
    }

    /// When true, the memory system walks its component structures
    /// (cache sets, MSHR files, DRAM bank state, engine queues) at every
    /// epoch boundary and at run end, reporting any broken invariant via
    /// [`Observer::structural_violation`]. Off by default: the walk is
    /// O(cache size), far too slow for the perf path.
    fn wants_structural_checks(&self) -> bool {
        false
    }

    /// A structural invariant was found violated during a check pass.
    fn structural_violation(&mut self, msg: &str) {
        let _ = msg;
    }
}

/// The default observer: compiles every hook away (`ENABLED = false`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

/// Composes two observers; every event is forwarded to both.
///
/// The epoch interval is the minimum of the two components' intervals
/// (an epoch fires when either wants one; both see the snapshot).
#[derive(Debug, Clone, Default)]
pub struct ObserverPair<A, B>(pub A, pub B);

impl<A: Observer, B: Observer> Observer for ObserverPair<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn epoch_interval(&self) -> Option<u64> {
        match (self.0.epoch_interval(), self.1.epoch_interval()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn prefetch_queued(&mut self, block: BlockAddr, now: u64) {
        self.0.prefetch_queued(block, now);
        self.1.prefetch_queued(block, now);
    }

    fn prefetch_squashed(&mut self, block: BlockAddr, reason: SquashReason, now: u64) {
        self.0.prefetch_squashed(block, reason, now);
        self.1.prefetch_squashed(block, reason, now);
    }

    fn prefetch_issued(
        &mut self,
        block: BlockAddr,
        now: u64,
        channel: usize,
        row_hit: bool,
        complete_at: u64,
    ) {
        self.0.prefetch_issued(block, now, channel, row_hit, complete_at);
        self.1.prefetch_issued(block, now, channel, row_hit, complete_at);
    }

    fn l2_fill(&mut self, block: BlockAddr, prefetch: bool, now: u64) {
        self.0.l2_fill(block, prefetch, now);
        self.1.l2_fill(block, prefetch, now);
    }

    fn prefetch_first_use(&mut self, block: BlockAddr, now: u64) {
        self.0.prefetch_first_use(block, now);
        self.1.prefetch_first_use(block, now);
    }

    fn prefetch_evicted_unused(&mut self, block: BlockAddr, now: u64) {
        self.0.prefetch_evicted_unused(block, now);
        self.1.prefetch_evicted_unused(block, now);
    }

    fn late_prefetch_merge(&mut self, block: BlockAddr, now: u64) {
        self.0.late_prefetch_merge(block, now);
        self.1.late_prefetch_merge(block, now);
    }

    fn fault_injected(&mut self, action: &FaultAction, now: u64) {
        self.0.fault_injected(action, now);
        self.1.fault_injected(action, now);
    }

    fn prefetch_fill_dropped(&mut self, block: BlockAddr, now: u64) {
        self.0.prefetch_fill_dropped(block, now);
        self.1.prefetch_fill_dropped(block, now);
    }

    fn prefetch_fill_delayed(&mut self, block: BlockAddr, extra: u64, now: u64) {
        self.0.prefetch_fill_delayed(block, extra, now);
        self.1.prefetch_fill_delayed(block, extra, now);
    }

    fn l2_demand_miss(&mut self, block: BlockAddr, now: u64) {
        self.0.l2_demand_miss(block, now);
        self.1.l2_demand_miss(block, now);
    }

    fn epoch(&mut self, snap: &EpochSnapshot) {
        self.0.epoch(snap);
        self.1.epoch(snap);
    }

    fn run_end(&mut self, final_cycle: u64) {
        self.0.run_end(final_cycle);
        self.1.run_end(final_cycle);
    }

    fn wants_structural_checks(&self) -> bool {
        self.0.wants_structural_checks() || self.1.wants_structural_checks()
    }

    fn structural_violation(&mut self, msg: &str) {
        self.0.structural_violation(msg);
        self.1.structural_violation(msg);
    }
}

/// Power-of-two-bucketed latency histogram (cycles).
///
/// Bucket `i` holds values `v` with `2^(i-1) < v <= 2^i - 1`-ish: the
/// bucket index is the bit length of `v`, capped at 31 (bucket 0 is
/// exactly `v == 0`).
#[derive(Debug, Clone, Default)]
pub struct LatencyHist {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl LatencyHist {
    /// The bucket index for one sample: `v`'s bit length, capped at 31
    /// (bucket 0 is exactly `v == 0`). Public so external shard
    /// implementations (e.g. the bench harness's lock-free telemetry
    /// counters) bucket identically and can merge via
    /// [`LatencyHist::absorb_parts`].
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 { 0 } else { (64 - v.leading_zeros()) as usize }.min(31)
    }

    /// Record one latency sample (in cycles).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum as f64 / self.count as f64 }
    }

    /// Approximate `p`-quantile (`0.0..=1.0`): the inclusive upper
    /// bound of the first bucket whose cumulative count reaches
    /// `ceil(p · count)`, clamped to the largest sample seen. Exact to
    /// within one power-of-two bucket — the same resolution the
    /// histogram stores. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = Self::bucket_range(i);
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram's samples into this one (bucket-wise
    /// add) — server mode accumulates per-batch queue-wait histograms
    /// into one fleet-lifetime distribution this way.
    pub fn absorb(&mut self, other: &LatencyHist) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// [`LatencyHist::absorb`] from raw parts: folds in bucket counts
    /// produced elsewhere under the [`LatencyHist::bucket_index`]
    /// contract (e.g. a lock-free atomic shard snapshotted bucket by
    /// bucket). The sample count is derived from the buckets — not
    /// taken on trust — so a snapshot torn between a bucket update and
    /// a separate count update can never make `count()` disagree with
    /// the bucket totals. `sum`/`max` are advisory (mean/percentile
    /// clamping) and folded as given.
    pub fn absorb_parts(&mut self, buckets: &[u64; 32], sum: u64, max: u64) {
        let mut added = 0u64;
        for (b, o) in self.buckets.iter_mut().zip(buckets.iter()) {
            *b += o;
            added += o;
        }
        self.count += added;
        self.sum += sum;
        self.max = self.max.max(max);
    }

    /// Raw bucket counts; bucket `i` covers bit-length-`i` values.
    pub fn buckets(&self) -> &[u64; 32] {
        &self.buckets
    }

    /// Inclusive cycle range covered by bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            1 => (1, 1),
            31 => (1 << 30, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }
}

impl fmt::Display for LatencyHist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1} max={}", self.count, self.mean(), self.max)?;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_range(i);
            if lo == hi {
                write!(f, " [{lo}]={c}")?;
            } else if i == 31 {
                write!(f, " [{lo}+]={c}")?;
            } else {
                write!(f, " [{lo}-{hi}]={c}")?;
            }
        }
        Ok(())
    }
}

/// Final disposition of one tracked prefetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// Filled into L2 and later touched by a demand access.
    FirstUse,
    /// A demand miss merged into the in-flight MSHR before the fill.
    Late,
    /// Filled into L2 and evicted without a demand touch.
    EvictedUnused,
    /// Filled into L2 and still resident, untouched, at end of run.
    ResidentAtEnd,
    /// Issued to DRAM but the fill had not landed at end of run.
    InFlightAtEnd,
    /// Issued to DRAM but the fill's data was lost to an injected fault
    /// (the MSHR register was released; no line was installed).
    Dropped,
    /// Discarded by the engine before issue.
    Squashed(SquashReason),
    /// Still sitting in the engine queue at end of run.
    QueuedAtEnd,
}

impl PrefetchOutcome {
    /// Stable label used in JSONL / trace exports.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchOutcome::FirstUse => "first_use",
            PrefetchOutcome::Late => "late",
            PrefetchOutcome::EvictedUnused => "evicted_unused",
            PrefetchOutcome::ResidentAtEnd => "resident_at_end",
            PrefetchOutcome::InFlightAtEnd => "in_flight_at_end",
            PrefetchOutcome::Dropped => "dropped",
            PrefetchOutcome::Squashed(SquashReason::Stale) => "squashed_stale",
            PrefetchOutcome::Squashed(SquashReason::Dropped) => "squashed_dropped",
            PrefetchOutcome::Squashed(SquashReason::DemandHit) => "squashed_demand_hit",
            PrefetchOutcome::QueuedAtEnd => "queued_at_end",
        }
    }
}

/// One prefetch's full lifecycle: timestamps for each stage it reached.
#[derive(Debug, Clone)]
pub struct PrefetchRecord {
    /// Block address this record tracks.
    pub block: BlockAddr,
    /// Cycle the candidate was queued in the engine.
    pub queued_at: u64,
    /// Cycle the request was issued to DRAM, if it got that far.
    pub issued_at: Option<u64>,
    /// Cycle the fill landed in L2, if it got that far.
    pub filled_at: Option<u64>,
    /// DRAM channel the request used, if issued.
    pub channel: Option<usize>,
    /// Whether the DRAM access was a row-buffer hit, if issued.
    pub row_hit: Option<bool>,
    /// Final disposition (filled in by `run_end` for still-open records).
    pub outcome: Option<PrefetchOutcome>,
    /// Cycle the outcome was decided.
    pub outcome_at: Option<u64>,
}

/// The prefetch-lifecycle tracer: one [`PrefetchRecord`] per tracked
/// prefetch, timeliness histograms, and counters that reproduce
/// [`crate::RunResult`]'s accuracy/coverage inputs exactly.
#[derive(Debug, Clone, Default)]
pub struct LifecycleTracer {
    records: Vec<PrefetchRecord>,
    /// block -> index of the open (undecided) record for that block.
    open: HashMap<u64, usize>,
    fill_to_use: LatencyHist,
    queue_residency: LatencyHist,
    issue_to_fill: LatencyHist,
    demand_misses: u64,
    issued: u64,
    first_used: u64,
    late: u64,
    evicted_unused: u64,
    resident_at_end: u64,
    in_flight_at_end: u64,
    squashed: u64,
    queued_at_end: u64,
    dropped: u64,
    delayed: u64,
    faults_seen: u64,
    final_cycle: u64,
}

impl LifecycleTracer {
    /// A fresh tracer with no records.
    pub fn new() -> Self {
        Self::default()
    }

    /// All lifecycle records, in creation order.
    pub fn records(&self) -> &[PrefetchRecord] {
        &self.records
    }

    /// Fill-to-first-use latency histogram (timeliness headroom).
    pub fn fill_to_use(&self) -> &LatencyHist {
        &self.fill_to_use
    }

    /// Queue-entry-to-issue residency histogram.
    pub fn queue_residency(&self) -> &LatencyHist {
        &self.queue_residency
    }

    /// Issue-to-fill (DRAM service) latency histogram.
    pub fn issue_to_fill(&self) -> &LatencyHist {
        &self.issue_to_fill
    }

    /// Prefetches issued to DRAM.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Prefetched lines touched by demand before eviction.
    pub fn first_used(&self) -> u64 {
        self.first_used
    }

    /// Demand misses merged into an in-flight prefetch MSHR.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Prefetched lines evicted untouched.
    pub fn evicted_unused(&self) -> u64 {
        self.evicted_unused
    }

    /// Prefetched lines still resident and untouched at end of run.
    pub fn resident_at_end(&self) -> u64 {
        self.resident_at_end
    }

    /// Prefetches whose fill had not landed at end of run.
    pub fn in_flight_at_end(&self) -> u64 {
        self.in_flight_at_end
    }

    /// Candidates squashed before issue.
    pub fn squashed(&self) -> u64 {
        self.squashed
    }

    /// Candidates still queued at end of run.
    pub fn queued_at_end(&self) -> u64 {
        self.queued_at_end
    }

    /// Issued prefetches whose fill data was lost to an injected fault.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Issued prefetches whose fill was delayed by an injected fault.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Fault-plan actions applied during the run.
    pub fn faults_seen(&self) -> u64 {
        self.faults_seen
    }

    /// L2 demand misses observed.
    pub fn demand_misses(&self) -> u64 {
        self.demand_misses
    }

    /// Final cycle stamped by [`Observer::run_end`].
    pub fn final_cycle(&self) -> u64 {
        self.final_cycle
    }

    /// Prefetch accuracy from trace counters: identical inputs (and so a
    /// bit-identical result) to [`crate::RunResult::accuracy`].
    pub fn accuracy(&self) -> f64 {
        let good = self.first_used + self.late;
        let denom = good + self.evicted_unused + self.resident_at_end;
        if denom == 0 { 0.0 } else { good as f64 / denom as f64 }
    }

    /// Miss coverage versus a baseline's demand-miss count: identical
    /// arithmetic to [`crate::RunResult::coverage_vs`] given the
    /// baseline's `l2_misses()` (negative when prefetching added misses).
    pub fn coverage_vs_misses(&self, base_misses: u64) -> f64 {
        if base_misses == 0 {
            0.0
        } else {
            (base_misses as f64 - self.demand_misses as f64) / base_misses as f64
        }
    }

    fn open_record(&mut self, block: BlockAddr) -> Option<&mut PrefetchRecord> {
        let idx = *self.open.get(&block.0)?;
        Some(&mut self.records[idx])
    }

    /// Serialize every record as one JSON object per line.
    ///
    /// Fields: `block`, `queued`, `issued`, `filled`, `channel`,
    /// `row_hit`, `outcome`, `outcome_at`; absent stages are `null`.
    /// Record order is creation order, so same-seed runs produce
    /// byte-identical output.
    pub fn jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            write!(out, "{{\"block\":{},\"queued\":{}", r.block.0, r.queued_at).unwrap();
            match r.issued_at {
                Some(t) => write!(out, ",\"issued\":{t}").unwrap(),
                None => out.push_str(",\"issued\":null"),
            }
            match r.filled_at {
                Some(t) => write!(out, ",\"filled\":{t}").unwrap(),
                None => out.push_str(",\"filled\":null"),
            }
            match r.channel {
                Some(c) => write!(out, ",\"channel\":{c}").unwrap(),
                None => out.push_str(",\"channel\":null"),
            }
            match r.row_hit {
                Some(h) => write!(out, ",\"row_hit\":{h}").unwrap(),
                None => out.push_str(",\"row_hit\":null"),
            }
            match r.outcome {
                Some(o) => write!(out, ",\"outcome\":\"{}\"", o.label()).unwrap(),
                None => out.push_str(",\"outcome\":null"),
            }
            match r.outcome_at {
                Some(t) => write!(out, ",\"outcome_at\":{t}").unwrap(),
                None => out.push_str(",\"outcome_at\":null"),
            }
            out.push_str("}\n");
        }
        out
    }
}

impl Observer for LifecycleTracer {
    fn prefetch_queued(&mut self, block: BlockAddr, now: u64) {
        // Only one open record per block: re-queues of a block whose
        // prefetch is still in flight or resident keep the original
        // record (the engine-side candidate will be squashed as stale
        // or silently absorbed, never issued twice).
        if self.open.contains_key(&block.0) {
            return;
        }
        let idx = self.records.len();
        self.records.push(PrefetchRecord {
            block,
            queued_at: now,
            issued_at: None,
            filled_at: None,
            channel: None,
            row_hit: None,
            outcome: None,
            outcome_at: None,
        });
        self.open.insert(block.0, idx);
    }

    fn prefetch_squashed(&mut self, block: BlockAddr, reason: SquashReason, now: u64) {
        // A squash can only close a record that never issued; squashes
        // reported for a block whose open record is already in flight
        // refer to a redundant engine-side candidate, not the tracked
        // prefetch.
        let Some(&idx) = self.open.get(&block.0) else { return };
        if self.records[idx].issued_at.is_some() {
            return;
        }
        let r = &mut self.records[idx];
        r.outcome = Some(PrefetchOutcome::Squashed(reason));
        r.outcome_at = Some(now);
        self.squashed += 1;
        self.open.remove(&block.0);
    }

    fn prefetch_issued(
        &mut self,
        block: BlockAddr,
        now: u64,
        channel: usize,
        row_hit: bool,
        complete_at: u64,
    ) {
        let _ = complete_at;
        self.issued += 1;
        if self.open_record(block).is_none() {
            // Engines that issue without a queue phase (e.g. stride
            // streams issuing directly) get a record created at issue.
            let idx = self.records.len();
            self.records.push(PrefetchRecord {
                block,
                queued_at: now,
                issued_at: None,
                filled_at: None,
                channel: None,
                row_hit: None,
                outcome: None,
                outcome_at: None,
            });
            self.open.insert(block.0, idx);
        }
        let r = self.open_record(block).expect("record just ensured");
        debug_assert!(r.issued_at.is_none(), "double issue for block {:#x}", block.0);
        r.issued_at = Some(now);
        r.channel = Some(channel);
        r.row_hit = Some(row_hit);
        let queued_at = r.queued_at;
        // Demand-miss-driven enqueues are stamped at the cycle the L2
        // sees the miss, which can postdate the issue the engine makes
        // from the already-visible candidate: clamp to zero residency.
        self.queue_residency.record(now.saturating_sub(queued_at));
    }

    fn l2_fill(&mut self, block: BlockAddr, prefetch: bool, now: u64) {
        let _ = prefetch;
        let Some(&idx) = self.open.get(&block.0) else { return };
        let r = &mut self.records[idx];
        if r.issued_at.is_none() || r.filled_at.is_some() {
            return;
        }
        r.filled_at = Some(now);
        let issued_at = r.issued_at.unwrap();
        let late = r.outcome == Some(PrefetchOutcome::Late);
        self.issue_to_fill.record(now - issued_at);
        if late {
            // The late merge already decided the outcome; the fill just
            // closes the record (the line lands as a demand line, so no
            // first-use can follow).
            self.records[idx].outcome_at = Some(now);
            self.open.remove(&block.0);
        }
    }

    fn prefetch_first_use(&mut self, block: BlockAddr, now: u64) {
        let Some(&idx) = self.open.get(&block.0) else {
            debug_assert!(false, "first use without open record for {:#x}", block.0);
            return;
        };
        let r = &mut self.records[idx];
        debug_assert!(r.filled_at.is_some() && r.outcome.is_none());
        r.outcome = Some(PrefetchOutcome::FirstUse);
        r.outcome_at = Some(now);
        let filled_at = r.filled_at.unwrap_or(now);
        // A demand access's L2 timestamp can slightly predate the fill's
        // DRAM timestamp when an earlier event already advanced the fill
        // cursor past it; clamp those to zero headroom.
        self.fill_to_use.record(now.saturating_sub(filled_at));
        self.first_used += 1;
        self.open.remove(&block.0);
    }

    fn prefetch_evicted_unused(&mut self, block: BlockAddr, now: u64) {
        let Some(&idx) = self.open.get(&block.0) else {
            debug_assert!(false, "unused eviction without open record for {:#x}", block.0);
            return;
        };
        let r = &mut self.records[idx];
        debug_assert!(r.filled_at.is_some() && r.outcome.is_none());
        r.outcome = Some(PrefetchOutcome::EvictedUnused);
        r.outcome_at = Some(now);
        self.evicted_unused += 1;
        self.open.remove(&block.0);
    }

    fn late_prefetch_merge(&mut self, block: BlockAddr, now: u64) {
        let Some(&idx) = self.open.get(&block.0) else {
            debug_assert!(false, "late merge without open record for {:#x}", block.0);
            return;
        };
        let r = &mut self.records[idx];
        debug_assert!(r.issued_at.is_some() && r.filled_at.is_none() && r.outcome.is_none());
        r.outcome = Some(PrefetchOutcome::Late);
        // outcome_at is stamped when the fill closes the record; if the
        // run ends first, run_end stamps it.
        let _ = now;
        self.late += 1;
    }

    fn fault_injected(&mut self, action: &FaultAction, now: u64) {
        let _ = (action, now);
        self.faults_seen += 1;
    }

    fn prefetch_fill_dropped(&mut self, block: BlockAddr, now: u64) {
        let Some(&idx) = self.open.get(&block.0) else {
            debug_assert!(false, "dropped fill without open record for {:#x}", block.0);
            return;
        };
        let r = &mut self.records[idx];
        // A demand merge cancels the drop before this hook can fire, so
        // the record is always still issued-and-undecided here.
        debug_assert!(r.issued_at.is_some() && r.outcome.is_none());
        r.outcome = Some(PrefetchOutcome::Dropped);
        r.outcome_at = Some(now);
        self.dropped += 1;
        self.open.remove(&block.0);
    }

    fn prefetch_fill_delayed(&mut self, block: BlockAddr, extra: u64, now: u64) {
        let _ = (block, extra, now);
        self.delayed += 1;
    }

    fn l2_demand_miss(&mut self, block: BlockAddr, now: u64) {
        let _ = (block, now);
        self.demand_misses += 1;
    }

    fn run_end(&mut self, final_cycle: u64) {
        self.final_cycle = final_cycle;
        // Sweep in record order (not HashMap order) for determinism.
        for r in &mut self.records {
            if r.outcome.is_some() && r.outcome_at.is_some() {
                continue;
            }
            match r.outcome {
                Some(PrefetchOutcome::Late) => {
                    // Late merge whose fill never landed before the end.
                    r.outcome_at = Some(final_cycle);
                }
                Some(_) => {}
                None => {
                    let o = if r.filled_at.is_some() {
                        self.resident_at_end += 1;
                        PrefetchOutcome::ResidentAtEnd
                    } else if r.issued_at.is_some() {
                        self.in_flight_at_end += 1;
                        PrefetchOutcome::InFlightAtEnd
                    } else {
                        self.queued_at_end += 1;
                        PrefetchOutcome::QueuedAtEnd
                    };
                    r.outcome = Some(o);
                    r.outcome_at = Some(final_cycle);
                }
            }
        }
        self.open.clear();
    }
}

/// The epoch metrics sampler: collects one [`EpochSnapshot`] every
/// `interval` committed trace events (plus a final one at end of run).
#[derive(Debug, Clone)]
pub struct EpochSampler {
    interval: u64,
    snapshots: Vec<EpochSnapshot>,
}

impl EpochSampler {
    /// A sampler snapshotting every `interval` committed events.
    ///
    /// # Panics
    /// Panics if `interval` is zero.
    pub fn new(interval: u64) -> Self {
        assert!(interval > 0, "epoch interval must be positive");
        EpochSampler { interval, snapshots: Vec::new() }
    }

    /// The configured epoch length in events.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Snapshots collected so far, oldest first.
    pub fn snapshots(&self) -> &[EpochSnapshot] {
        &self.snapshots
    }

    /// Consume the sampler, returning its snapshots.
    pub fn into_snapshots(self) -> Vec<EpochSnapshot> {
        self.snapshots
    }
}

impl Observer for EpochSampler {
    fn epoch_interval(&self) -> Option<u64> {
        Some(self.interval)
    }

    fn epoch(&mut self, snap: &EpochSnapshot) {
        self.snapshots.push(snap.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    #[test]
    fn hist_buckets_and_display() {
        let mut h = LatencyHist::default();
        for v in [0, 1, 2, 3, 4, 100, 1 << 20] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 1 << 20);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2..3
        assert_eq!(h.buckets()[3], 1); // 4..7
        assert_eq!(h.buckets()[7], 1); // 64..127
        assert_eq!(h.buckets()[21], 1); // 2^20
        // Percentiles resolve to bucket upper bounds, clamped to max.
        assert_eq!(LatencyHist::default().percentile(0.5), 0, "empty hist");
        assert_eq!(h.percentile(0.0), 0); // rank clamps to the first sample
        assert_eq!(h.percentile(0.5), 3); // 4th of 7 samples sits in bucket 2..3
        assert_eq!(h.percentile(0.99), 1 << 20);
        assert_eq!(h.percentile(1.0), 1 << 20);
        let mut one = LatencyHist::default();
        one.record(5);
        assert_eq!(one.percentile(0.5), 5, "upper bound clamps to max seen");
        // absorb folds sample-for-sample: equivalent to recording both.
        let mut folded = one.clone();
        folded.absorb(&h);
        assert_eq!(folded.count(), h.count() + 1);
        assert_eq!(folded.sum(), h.sum() + 5);
        assert_eq!(folded.max(), h.max());
        assert_eq!(folded.buckets()[3], h.buckets()[3] + 1); // 5 lands in 4..7
        let s = format!("{h}");
        assert!(s.contains("n=7"), "{s}");
        assert!(s.contains("[64-127]=1"), "{s}");
    }

    #[test]
    fn hist_absorb_parts_matches_absorb() {
        // bucket_index is the single bucketing contract.
        assert_eq!(LatencyHist::bucket_index(0), 0);
        assert_eq!(LatencyHist::bucket_index(1), 1);
        assert_eq!(LatencyHist::bucket_index(2), 2);
        assert_eq!(LatencyHist::bucket_index(3), 2);
        assert_eq!(LatencyHist::bucket_index(4), 3);
        assert_eq!(LatencyHist::bucket_index(u64::MAX), 31);
        let mut other = LatencyHist::default();
        for v in [0, 7, 9000, 1 << 40] {
            other.record(v);
        }
        let mut via_absorb = LatencyHist::default();
        via_absorb.record(12);
        let mut via_parts = via_absorb.clone();
        via_absorb.absorb(&other);
        via_parts.absorb_parts(other.buckets(), other.sum(), other.max());
        assert_eq!(via_parts.count(), via_absorb.count());
        assert_eq!(via_parts.sum(), via_absorb.sum());
        assert_eq!(via_parts.max(), via_absorb.max());
        assert_eq!(via_parts.buckets(), via_absorb.buckets());
        // The count is derived from the buckets, never taken on trust:
        // absorbing parts twice doubles count in lockstep with buckets.
        let before = via_parts.count();
        via_parts.absorb_parts(other.buckets(), other.sum(), other.max());
        assert_eq!(via_parts.count(), before + other.count());
        assert_eq!(
            via_parts.buckets().iter().sum::<u64>(),
            via_parts.count(),
            "bucket totals always equal count"
        );
    }

    #[test]
    fn full_lifecycle_first_use() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x40), 10);
        t.prefetch_issued(b(0x40), 20, 1, true, 60);
        t.l2_fill(b(0x40), true, 60);
        t.prefetch_first_use(b(0x40), 100);
        t.run_end(200);
        assert_eq!(t.first_used(), 1);
        assert_eq!(t.issued(), 1);
        assert_eq!(t.records().len(), 1);
        let r = &t.records()[0];
        assert_eq!(r.outcome, Some(PrefetchOutcome::FirstUse));
        assert_eq!(r.outcome_at, Some(100));
        assert_eq!(t.queue_residency().sum(), 10);
        assert_eq!(t.issue_to_fill().sum(), 40);
        assert_eq!(t.fill_to_use().sum(), 40);
        assert_eq!(t.accuracy(), 1.0);
    }

    #[test]
    fn late_merge_closes_on_fill() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x80), 0);
        t.prefetch_issued(b(0x80), 5, 0, false, 105);
        t.late_prefetch_merge(b(0x80), 50);
        t.l2_fill(b(0x80), false, 105);
        t.run_end(300);
        assert_eq!(t.late(), 1);
        let r = &t.records()[0];
        assert_eq!(r.outcome, Some(PrefetchOutcome::Late));
        assert_eq!(r.outcome_at, Some(105));
    }

    #[test]
    fn squash_only_closes_unissued() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x100), 0);
        t.prefetch_squashed(b(0x100), SquashReason::DemandHit, 8);
        assert_eq!(t.squashed(), 1);
        // Re-queue after squash opens a fresh record.
        t.prefetch_queued(b(0x100), 20);
        t.prefetch_issued(b(0x100), 25, 0, true, 60);
        // A stale squash for an issued record is ignored.
        t.prefetch_squashed(b(0x100), SquashReason::Stale, 30);
        t.run_end(100);
        assert_eq!(t.squashed(), 1);
        assert_eq!(t.in_flight_at_end(), 1);
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn end_sweep_is_conservative() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x40), 0); // stays queued
        t.prefetch_queued(b(0x80), 0);
        t.prefetch_issued(b(0x80), 2, 0, true, 40); // in flight
        t.prefetch_queued(b(0xc0), 0);
        t.prefetch_issued(b(0xc0), 3, 1, true, 40);
        t.l2_fill(b(0xc0), true, 40); // resident
        t.run_end(50);
        assert_eq!(t.queued_at_end(), 1);
        assert_eq!(t.in_flight_at_end(), 1);
        assert_eq!(t.resident_at_end(), 1);
        assert_eq!(
            t.issued(),
            t.first_used()
                + t.late()
                + t.evicted_unused()
                + t.resident_at_end()
                + t.in_flight_at_end()
                + t.dropped()
        );
    }

    #[test]
    fn dropped_fill_closes_record_with_dropped_leg() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x40), 0);
        t.prefetch_issued(b(0x40), 5, 0, true, 105);
        t.prefetch_fill_delayed(b(0x40), 60, 5);
        t.prefetch_fill_dropped(b(0x40), 165);
        t.run_end(300);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.delayed(), 1);
        let r = &t.records()[0];
        assert_eq!(r.outcome, Some(PrefetchOutcome::Dropped));
        assert_eq!(r.outcome_at, Some(165));
        assert_eq!(r.filled_at, None, "no data ever landed");
        assert_eq!(
            t.issued(),
            t.first_used()
                + t.late()
                + t.evicted_unused()
                + t.resident_at_end()
                + t.in_flight_at_end()
                + t.dropped()
        );
        assert!(t.jsonl().contains("\"outcome\":\"dropped\""));
    }

    #[test]
    fn jsonl_shape() {
        let mut t = LifecycleTracer::new();
        t.prefetch_queued(b(0x40), 1);
        t.run_end(9);
        let s = t.jsonl();
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\"block\":64"), "{s}");
        assert!(s.contains("\"issued\":null"), "{s}");
        assert!(s.contains("\"outcome\":\"queued_at_end\""), "{s}");
    }

    #[test]
    fn epoch_snapshot_metrics() {
        let snap = EpochSnapshot {
            events: 100,
            instructions: 200,
            cycles: 400,
            l2_demand_accesses: 50,
            l2_demand_misses: 10,
            useful_prefetches: 6,
            useless_prefetches: 2,
            late_prefetch_merges: 2,
            channel_busy_cycles: vec![100, 0],
            ..Default::default()
        };
        assert_eq!(snap.ipc(), 0.5);
        assert_eq!(snap.l2_miss_rate(), 0.2);
        assert_eq!(snap.running_accuracy(), 0.8);
        assert_eq!(snap.running_coverage(), 6.0 / 16.0);
        assert_eq!(snap.channel_busy_fraction(0), 0.25);
        assert_eq!(snap.channel_busy_fraction(5), 0.0);
    }

    #[test]
    fn pair_forwards_and_merges_interval() {
        let pair = ObserverPair(LifecycleTracer::new(), EpochSampler::new(500));
        assert_eq!(pair.epoch_interval(), Some(500));
        let mut pair = ObserverPair(EpochSampler::new(100), EpochSampler::new(300));
        assert_eq!(pair.epoch_interval(), Some(100));
        pair.epoch(&EpochSnapshot::default());
        assert_eq!(pair.0.snapshots().len(), 1);
        assert_eq!(pair.1.snapshots().len(), 1);
    }
}

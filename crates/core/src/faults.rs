//! Deterministic, seeded fault injection for the memory system.
//!
//! A [`FaultPlan`] is a reproducible list of timed fault events —
//! transient DRAM channel stalls, a full channel outage window, delayed
//! and dropped prefetch fills, an MSHR-capacity squeeze, and region-queue
//! back-pressure bursts — generated from a single seed via the testkit
//! RNG. The plan is *data*: installing it on a
//! [`MemSystem`](crate::MemSystem) (or mirroring it into the
//! [`OracleSystem`](crate::OracleSystem)) arms narrow seams in the DRAM,
//! MSHR, and engine models; an empty plan is behaviourally inert, so a
//! zero-fault run is bit-identical to an unfaulted one.
//!
//! The degradation contract the plan verifies (see DESIGN.md §11):
//! under any plan the simulator never panics, demand correctness is
//! preserved (a faulted no-prefetch run still passes the oracle
//! differential when the oracle mirrors the same plan), lifecycle
//! conservation holds with explicit `dropped`/`delayed` legs, and
//! prefetch schemes degrade toward the no-prefetch baseline.

use grp_testkit::proptest::Arbitrary;
use grp_testkit::Rng;

/// What goes wrong, and for how long. Durations are relative to the
/// event's [`FaultEvent::at`] cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient stall: the channel's data bus is busy until
    /// `at + duration` for prefetches and writebacks; demands still
    /// preempt through at the usual `t_preempt` penalty.
    ChannelStall {
        /// Channel index (reduced modulo the configured channel count).
        channel: u8,
        /// Stall length in cycles.
        duration: u64,
    },
    /// Full outage: the channel serves *nothing* — demands included —
    /// until `at + duration`.
    ChannelOutage {
        /// Channel index (reduced modulo the configured channel count).
        channel: u8,
        /// Outage length in cycles.
        duration: u64,
    },
    /// Every prefetch issued inside the window lands `extra` cycles
    /// later than the DRAM timing says it should.
    DelayFills {
        /// Window length in cycles.
        duration: u64,
        /// Added fill latency in cycles.
        extra: u64,
    },
    /// Every prefetch issued inside the window loses its data: the MSHR
    /// register is released on schedule but no line is installed.
    DropFills {
        /// Window length in cycles.
        duration: u64,
    },
    /// The L2 MSHR file loses `amount` registers for the window
    /// (floored at one usable register).
    MshrSqueeze {
        /// Registers withheld.
        amount: u8,
        /// Window length in cycles.
        duration: u64,
    },
    /// The prefetch queue loses `amount` entries of capacity for the
    /// window; over-capacity entries are dropped off the tail exactly
    /// like ordinary §3.1 back-pressure.
    QueuePressure {
        /// Queue entries withheld.
        amount: u8,
        /// Window length in cycles.
        duration: u64,
    },
}

/// One timed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault takes effect.
    pub at: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A reproducible schedule of fault events. The empty plan is inert.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The events, in no particular order (application is by timestamp).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan over the given events.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// The inert plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A fully reproducible random plan: same seed, same plan, on every
    /// build and machine (xoshiro256** seeded through splitmix64).
    pub fn generate(seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        Self::arbitrary(&mut rng)
    }

    /// The named built-in plans the correctness gate sweeps: one plan
    /// per fault class plus a combined "storm". Windows are sized to
    /// cover test-scale runs from (near) cycle zero.
    pub fn builtin() -> Vec<(&'static str, FaultPlan)> {
        // Long enough to outlast any test-scale run.
        const WHOLE_RUN: u64 = 1 << 40;
        vec![
            (
                "channel-stall",
                FaultPlan::new(vec![
                    FaultEvent {
                        at: 1_000,
                        kind: FaultKind::ChannelStall {
                            channel: 0,
                            duration: 30_000,
                        },
                    },
                    FaultEvent {
                        at: 40_000,
                        kind: FaultKind::ChannelStall {
                            channel: 2,
                            duration: 30_000,
                        },
                    },
                ]),
            ),
            (
                "channel-outage",
                FaultPlan::new(vec![FaultEvent {
                    at: 5_000,
                    kind: FaultKind::ChannelOutage {
                        channel: 1,
                        duration: 200_000,
                    },
                }]),
            ),
            (
                "delayed-fills",
                FaultPlan::new(vec![FaultEvent {
                    at: 0,
                    kind: FaultKind::DelayFills {
                        duration: WHOLE_RUN,
                        extra: 600,
                    },
                }]),
            ),
            (
                "dropped-fills",
                FaultPlan::new(vec![FaultEvent {
                    at: 0,
                    kind: FaultKind::DropFills {
                        duration: WHOLE_RUN,
                    },
                }]),
            ),
            (
                "mshr-squeeze",
                FaultPlan::new(vec![FaultEvent {
                    at: 0,
                    kind: FaultKind::MshrSqueeze {
                        amount: 6,
                        duration: WHOLE_RUN,
                    },
                }]),
            ),
            (
                "queue-pressure",
                FaultPlan::new(vec![
                    FaultEvent {
                        at: 2_000,
                        kind: FaultKind::QueuePressure {
                            amount: 30,
                            duration: 50_000,
                        },
                    },
                    FaultEvent {
                        at: 100_000,
                        kind: FaultKind::QueuePressure {
                            amount: 30,
                            duration: 50_000,
                        },
                    },
                ]),
            ),
            (
                "storm",
                FaultPlan::new(vec![
                    FaultEvent {
                        at: 500,
                        kind: FaultKind::ChannelOutage {
                            channel: 3,
                            duration: 60_000,
                        },
                    },
                    FaultEvent {
                        at: 1_000,
                        kind: FaultKind::DelayFills {
                            duration: 80_000,
                            extra: 300,
                        },
                    },
                    FaultEvent {
                        at: 20_000,
                        kind: FaultKind::DropFills { duration: 40_000 },
                    },
                    FaultEvent {
                        at: 10_000,
                        kind: FaultKind::MshrSqueeze {
                            amount: 5,
                            duration: 120_000,
                        },
                    },
                    FaultEvent {
                        at: 15_000,
                        kind: FaultKind::QueuePressure {
                            amount: 28,
                            duration: 90_000,
                        },
                    },
                ]),
            ),
        ]
    }
}

impl Arbitrary for FaultEvent {
    fn arbitrary(rng: &mut Rng) -> Self {
        let at = rng.gen_range(0u64..1 << 17);
        let kind = match rng.gen_range(0u32..6) {
            0 => FaultKind::ChannelStall {
                channel: rng.gen_range(0u8..8),
                duration: rng.gen_range(64u64..=16_384),
            },
            1 => FaultKind::ChannelOutage {
                channel: rng.gen_range(0u8..8),
                duration: rng.gen_range(64u64..=16_384),
            },
            2 => FaultKind::DelayFills {
                duration: rng.gen_range(256u64..=32_768),
                extra: rng.gen_range(16u64..=4_096),
            },
            3 => FaultKind::DropFills {
                duration: rng.gen_range(256u64..=32_768),
            },
            4 => FaultKind::MshrSqueeze {
                amount: rng.gen_range(1u8..=7),
                duration: rng.gen_range(256u64..=32_768),
            },
            _ => FaultKind::QueuePressure {
                amount: rng.gen_range(1u8..=31),
                duration: rng.gen_range(256u64..=32_768),
            },
        };
        Self { at, kind }
    }

    fn shrink_value(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.at > 0 {
            out.push(Self {
                at: self.at / 2,
                kind: self.kind,
            });
        }
        let halved = match self.kind {
            FaultKind::ChannelStall { channel, duration } if duration > 64 => {
                Some(FaultKind::ChannelStall {
                    channel,
                    duration: duration / 2,
                })
            }
            FaultKind::ChannelOutage { channel, duration } if duration > 64 => {
                Some(FaultKind::ChannelOutage {
                    channel,
                    duration: duration / 2,
                })
            }
            FaultKind::DelayFills { duration, extra } if duration > 256 || extra > 16 => {
                Some(FaultKind::DelayFills {
                    duration: (duration / 2).max(256),
                    extra: (extra / 2).max(16),
                })
            }
            FaultKind::DropFills { duration } if duration > 256 => Some(FaultKind::DropFills {
                duration: duration / 2,
            }),
            FaultKind::MshrSqueeze { amount, duration } if amount > 1 || duration > 256 => {
                Some(FaultKind::MshrSqueeze {
                    amount: (amount / 2).max(1),
                    duration: (duration / 2).max(256),
                })
            }
            FaultKind::QueuePressure { amount, duration } if amount > 1 || duration > 256 => {
                Some(FaultKind::QueuePressure {
                    amount: (amount / 2).max(1),
                    duration: (duration / 2).max(256),
                })
            }
            _ => None,
        };
        if let Some(kind) = halved {
            out.push(Self { at: self.at, kind });
        }
        out
    }
}

impl Arbitrary for FaultPlan {
    fn arbitrary(rng: &mut Rng) -> Self {
        let n = rng.gen_range(0usize..=4);
        Self::new((0..n).map(|_| FaultEvent::arbitrary(rng)).collect())
    }

    fn shrink_value(&self) -> Vec<Self> {
        if self.events.is_empty() {
            return Vec::new();
        }
        // Structure first — an empty plan is the single most diagnostic
        // simplification (it separates fault bugs from plan bugs) — then
        // fewer events, then smaller events.
        let mut out = vec![FaultPlan::none()];
        if self.events.len() > 1 {
            out.push(FaultPlan::new(
                self.events[..self.events.len() / 2].to_vec(),
            ));
            out.push(FaultPlan::new(self.events[1..].to_vec()));
            out.push(FaultPlan::new(
                self.events[..self.events.len() - 1].to_vec(),
            ));
        }
        for (i, ev) in self.events.iter().enumerate() {
            for shrunk in ev.shrink_value() {
                let mut events = self.events.clone();
                events[i] = shrunk;
                out.push(FaultPlan::new(events));
            }
        }
        out
    }
}

/// A fault the runtime has just armed — what the observer layer sees via
/// [`Observer::fault_injected`](crate::Observer::fault_injected), and
/// what the memory system applies to its components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Hold a DRAM channel's bus busy until the given cycle.
    StallChannel {
        /// Channel index (already reduced by the DRAM model if needed).
        channel: usize,
        /// Cycle at which the bus frees again.
        until: u64,
        /// True for an outage (demands blocked too).
        demands_too: bool,
    },
    /// Set the L2 MSHR capacity squeeze to this many withheld registers
    /// (zero restores full capacity).
    SetMshrSqueeze(usize),
    /// Set the prefetch-queue capacity pressure to this many withheld
    /// entries (zero restores full capacity).
    SetQueuePressure(usize),
}

/// Raw timed action before window bookkeeping: squeeze windows expand
/// into a begin/end delta pair so overlapping windows compose.
#[derive(Debug, Clone, Copy)]
enum RawAction {
    Stall {
        channel: usize,
        until: u64,
        demands_too: bool,
    },
    MshrDelta(i64),
    QueueDelta(i64),
}

/// Runtime cursor over a [`FaultPlan`]: timed one-shot actions (channel
/// stalls, squeeze window edges) popped in timestamp order, plus pure
/// window queries for the per-prefetch fill faults. Cloneable so the
/// oracle side of a differential run can mirror the same plan.
#[derive(Debug, Clone)]
pub struct FaultState {
    /// Timed actions, sorted by cycle (stable, so plan order breaks ties).
    actions: Vec<(u64, RawAction)>,
    next: usize,
    mshr_squeeze: i64,
    queue_pressure: i64,
    /// `(from, to, extra)` delayed-fill windows.
    delay_windows: Vec<(u64, u64, u64)>,
    /// `(from, to)` dropped-fill windows.
    drop_windows: Vec<(u64, u64)>,
}

impl FaultState {
    /// Compiles `plan` into its runtime form.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut actions: Vec<(u64, RawAction)> = Vec::new();
        let mut delay_windows = Vec::new();
        let mut drop_windows = Vec::new();
        for ev in &plan.events {
            let end = |d: u64| ev.at.saturating_add(d);
            match ev.kind {
                FaultKind::ChannelStall { channel, duration } => actions.push((
                    ev.at,
                    RawAction::Stall {
                        channel: channel as usize,
                        until: end(duration),
                        demands_too: false,
                    },
                )),
                FaultKind::ChannelOutage { channel, duration } => actions.push((
                    ev.at,
                    RawAction::Stall {
                        channel: channel as usize,
                        until: end(duration),
                        demands_too: true,
                    },
                )),
                FaultKind::DelayFills { duration, extra } => {
                    delay_windows.push((ev.at, end(duration), extra));
                }
                FaultKind::DropFills { duration } => {
                    drop_windows.push((ev.at, end(duration)));
                }
                FaultKind::MshrSqueeze { amount, duration } => {
                    actions.push((ev.at, RawAction::MshrDelta(amount as i64)));
                    actions.push((end(duration), RawAction::MshrDelta(-(amount as i64))));
                }
                FaultKind::QueuePressure { amount, duration } => {
                    actions.push((ev.at, RawAction::QueueDelta(amount as i64)));
                    actions.push((end(duration), RawAction::QueueDelta(-(amount as i64))));
                }
            }
        }
        actions.sort_by_key(|(at, _)| *at);
        Self {
            actions,
            next: 0,
            mshr_squeeze: 0,
            queue_pressure: 0,
            delay_windows,
            drop_windows,
        }
    }

    /// Pops the next action due at or before `now`, folding squeeze
    /// window edges into the running totals so overlapping windows
    /// compose (the reported level is the sum of active amounts).
    pub fn next_action(&mut self, now: u64) -> Option<FaultAction> {
        let &(at, raw) = self.actions.get(self.next)?;
        if at > now {
            return None;
        }
        self.next += 1;
        Some(match raw {
            RawAction::Stall {
                channel,
                until,
                demands_too,
            } => FaultAction::StallChannel {
                channel,
                until,
                demands_too,
            },
            RawAction::MshrDelta(d) => {
                self.mshr_squeeze += d;
                FaultAction::SetMshrSqueeze(self.mshr_squeeze.max(0) as usize)
            }
            RawAction::QueueDelta(d) => {
                self.queue_pressure += d;
                FaultAction::SetQueuePressure(self.queue_pressure.max(0) as usize)
            }
        })
    }

    /// Extra latency a prefetch fill issued at `now` suffers: the
    /// largest `extra` among active delayed-fill windows, zero outside.
    pub fn fill_delay(&self, now: u64) -> u64 {
        self.delay_windows
            .iter()
            .filter(|(from, to, _)| *from <= now && now < *to)
            .map(|(_, _, extra)| *extra)
            .max()
            .unwrap_or(0)
    }

    /// True when a prefetch issued at `now` will lose its fill data.
    pub fn fill_dropped(&self, now: u64) -> bool {
        self.drop_windows
            .iter()
            .any(|(from, to)| *from <= now && now < *to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(0x5eed_fa01);
        let b = FaultPlan::generate(0x5eed_fa01);
        assert_eq!(a, b);
        // Different seeds give different plans (with overwhelming odds
        // over the tiny set of tried seeds).
        let plans: Vec<FaultPlan> = (0..16).map(|i| FaultPlan::generate(0x5eed_fa00 + i)).collect();
        assert!(plans.iter().any(|p| !p.is_empty()));
        assert!(plans.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn empty_plan_state_is_inert() {
        let mut st = FaultState::new(&FaultPlan::none());
        assert!(st.next_action(u64::MAX).is_none());
        assert_eq!(st.fill_delay(123), 0);
        assert!(!st.fill_dropped(123));
    }

    #[test]
    fn squeeze_windows_compose_and_expire() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 10,
                kind: FaultKind::MshrSqueeze {
                    amount: 3,
                    duration: 90,
                },
            },
            FaultEvent {
                at: 50,
                kind: FaultKind::MshrSqueeze {
                    amount: 2,
                    duration: 10,
                },
            },
        ]);
        let mut st = FaultState::new(&plan);
        assert!(st.next_action(5).is_none());
        assert_eq!(st.next_action(10), Some(FaultAction::SetMshrSqueeze(3)));
        assert!(st.next_action(10).is_none());
        assert_eq!(st.next_action(55), Some(FaultAction::SetMshrSqueeze(5)));
        assert_eq!(st.next_action(60), Some(FaultAction::SetMshrSqueeze(3)));
        assert_eq!(st.next_action(1_000), Some(FaultAction::SetMshrSqueeze(0)));
        assert!(st.next_action(u64::MAX).is_none());
    }

    #[test]
    fn fill_windows_are_half_open() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 100,
                kind: FaultKind::DelayFills {
                    duration: 50,
                    extra: 7,
                },
            },
            FaultEvent {
                at: 120,
                kind: FaultKind::DropFills { duration: 10 },
            },
        ]);
        let st = FaultState::new(&plan);
        assert_eq!(st.fill_delay(99), 0);
        assert_eq!(st.fill_delay(100), 7);
        assert_eq!(st.fill_delay(149), 7);
        assert_eq!(st.fill_delay(150), 0);
        assert!(!st.fill_dropped(119));
        assert!(st.fill_dropped(120));
        assert!(st.fill_dropped(129));
        assert!(!st.fill_dropped(130));
    }

    #[test]
    fn stall_actions_carry_their_windows() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 40,
            kind: FaultKind::ChannelOutage {
                channel: 2,
                duration: 100,
            },
        }]);
        let mut st = FaultState::new(&plan);
        assert_eq!(
            st.next_action(40),
            Some(FaultAction::StallChannel {
                channel: 2,
                until: 140,
                demands_too: true,
            })
        );
    }

    #[test]
    fn shrinking_reaches_the_empty_plan() {
        let plan = FaultPlan::generate(0x5eed_fa11);
        if plan.is_empty() {
            return;
        }
        let shrinks = plan.shrink_value();
        assert_eq!(shrinks[0], FaultPlan::none(), "empty plan offered first");
        for s in &shrinks {
            assert!(
                s.events.len() < plan.events.len()
                    || s.events
                        .iter()
                        .zip(plan.events.iter())
                        .any(|(a, b)| a != b),
                "every shrink differs from the original"
            );
        }
    }

    #[test]
    fn builtin_plans_cover_every_fault_kind() {
        let plans = FaultPlan::builtin();
        assert!(plans.len() >= 6);
        let all: Vec<FaultKind> = plans
            .iter()
            .flat_map(|(_, p)| p.events.iter().map(|e| e.kind))
            .collect();
        assert!(all.iter().any(|k| matches!(k, FaultKind::ChannelStall { .. })));
        assert!(all.iter().any(|k| matches!(k, FaultKind::ChannelOutage { .. })));
        assert!(all.iter().any(|k| matches!(k, FaultKind::DelayFills { .. })));
        assert!(all.iter().any(|k| matches!(k, FaultKind::DropFills { .. })));
        assert!(all.iter().any(|k| matches!(k, FaultKind::MshrSqueeze { .. })));
        assert!(all.iter().any(|k| matches!(k, FaultKind::QueuePressure { .. })));
    }
}

//! Prefetch engines: the pluggable half of the memory system.
//!
//! [`Prefetcher`] is the interface between the memory system and a
//! prefetching scheme. The three implementations reproduce the paper's
//! comparison set:
//!
//! * [`NoPrefetcher`] — the baseline,
//! * [`stride::StridePrefetcher`] — predictor-directed stream buffers,
//! * [`region::RegionPrefetcher`] — SRP and, with hints enabled, GRP.

pub mod region;
pub mod stride;

use grp_cpu::{HintSet, RefId};
use grp_mem::{Addr, BlockAddr, Cache, Dram, HeapRange, Memory, MshrFile};

/// A block the engine wants prefetched, with the pointer-chase depth to
/// attach to its MSHR entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Block to fetch.
    pub block: BlockAddr,
    /// Remaining pointer-chase depth for the returned line.
    pub pointer_level: u8,
}

/// Counters every engine maintains.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Region-style entries allocated.
    pub entries_allocated: u64,
    /// Entries dropped off the bounded queue's tail.
    pub entries_dropped: u64,
    /// Candidates handed to the prioritizer.
    pub candidates_issued: u64,
    /// Entries created by pointer scans.
    pub pointer_entries: u64,
    /// Entries created by indirect prefetch instructions.
    pub indirect_entries: u64,
    /// Indirect index elements dropped because `base + idx * elem_size`
    /// left the address space (negative or > u64::MAX) — corrupt or
    /// uninitialized index data must not prefetch wrapped garbage.
    pub indirect_dropped: u64,
    /// Histogram of allocated region sizes, indexed by log2(blocks)
    /// (index 0 = 1 block … index 6 = 64 blocks).
    pub region_size_hist: [u64; 7],
}

/// The engine interface. All timing decisions (when a candidate may
/// issue) stay in the memory system's prioritizer; engines only maintain
/// candidate state.
pub trait Prefetcher: std::fmt::Debug {
    /// Reacts to an L2 demand (tag-array) miss. Returns the pointer-chase
    /// depth the memory system should attach to the miss's MSHR entry
    /// (0 = no scan of the returned line).
    fn on_demand_miss(
        &mut self,
        block: BlockAddr,
        addr: Addr,
        ref_id: RefId,
        hints: HintSet,
        write: bool,
        l2: &Cache,
    ) -> u8;

    /// Reacts to a completed fill whose MSHR carried pointer-chase depth
    /// `level` — the GRP pointer-scan hook (§3.2/§3.3.1).
    fn on_fill(&mut self, block: BlockAddr, level: u8, mem: &Memory, heap: HeapRange, l2: &Cache);

    /// The `SetLoopBound` pseudo-instruction executed (§3.3.2).
    fn set_loop_bound(&mut self, _bound: u32) {}

    /// The explicit indirect-prefetch instruction executed (§3.3.3).
    fn indirect_prefetch(
        &mut self,
        _base: Addr,
        _elem_size: u32,
        _index_addr: Addr,
        _mem: &Memory,
        _l2: &Cache,
    ) {
    }

    /// True when the engine holds any candidate (used by the prioritizer
    /// to decide whether idle-channel times are interesting).
    fn has_candidates(&self) -> bool;

    /// Pops the next candidate that can issue at `now`: not resident in
    /// `l2`, not in flight in `mshrs`, and on an idle channel — preferring
    /// open DRAM rows (§3.1's bank-aware scheduling).
    fn next_candidate(
        &mut self,
        l2: &Cache,
        mshrs: &MshrFile,
        dram: &Dram,
        now: u64,
    ) -> Option<Candidate>;

    /// Earliest future cycle at which a `next_candidate` scan could
    /// succeed, given that a scan just failed. The default — the earliest
    /// time any channel's bus frees — is always sound; engines that know
    /// which channels their candidates map to can return a tighter bound
    /// so the prioritizer skips scans that cannot issue anything.
    fn next_issue_time(&self, dram: &Dram) -> u64 {
        dram.earliest_channel_free()
    }

    /// Counter snapshot.
    fn stats(&self) -> EngineStats;

    /// Enables (or disables) internal buffering of lifecycle events
    /// (candidate queued / squashed) for the observer layer. Engines
    /// that don't queue candidates may ignore this.
    fn set_trace_buffer(&mut self, _enabled: bool) {}

    /// Moves any buffered lifecycle events into `sink`, oldest first.
    /// Called by the memory system after each engine interaction so the
    /// events can be stamped with the current cycle.
    fn drain_trace_events(&mut self, _sink: &mut Vec<crate::obs::EngineEvent>) {}

    /// Live candidates currently queued in the engine (for epoch
    /// occupancy sampling).
    fn queue_occupancy(&self) -> usize {
        0
    }

    /// Checks the engine's internal structures for consistency (queue
    /// bounds, slab/list/index agreement). Called by the memory system's
    /// structural-check pass; the default has nothing to check.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }

    /// Fault-injection seam: withholds `amount` entries of candidate-queue
    /// capacity until reset with zero (the effective capacity never drops
    /// below one). Engines with a bounded queue trim immediately, emitting
    /// the same squash events as ordinary back-pressure; engines without
    /// one ignore it.
    fn set_queue_pressure(&mut self, _amount: usize) {}

    #[doc(hidden)]
    fn inject_fault_unbounded_queue(&mut self) {}
}

/// The no-prefetching baseline.
#[derive(Debug, Default)]
pub struct NoPrefetcher;

impl Prefetcher for NoPrefetcher {
    fn on_demand_miss(
        &mut self,
        _block: BlockAddr,
        _addr: Addr,
        _ref_id: RefId,
        _hints: HintSet,
        _write: bool,
        _l2: &Cache,
    ) -> u8 {
        0
    }

    fn on_fill(
        &mut self,
        _block: BlockAddr,
        _level: u8,
        _mem: &Memory,
        _heap: HeapRange,
        _l2: &Cache,
    ) {
    }

    fn has_candidates(&self) -> bool {
        false
    }

    fn next_candidate(
        &mut self,
        _l2: &Cache,
        _mshrs: &MshrFile,
        _dram: &Dram,
        _now: u64,
    ) -> Option<Candidate> {
        None
    }

    fn stats(&self) -> EngineStats {
        EngineStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_mem::CacheConfig;

    #[test]
    fn no_prefetcher_is_inert() {
        let mut p = NoPrefetcher;
        let l2 = Cache::new(CacheConfig::l2_spec());
        let mshrs = MshrFile::new(8);
        let dram = Dram::new(Default::default());
        assert_eq!(
            p.on_demand_miss(
                BlockAddr(1),
                Addr(64),
                RefId(0),
                HintSet::none(),
                false,
                &l2
            ),
            0
        );
        assert!(!p.has_candidates());
        assert!(p.next_candidate(&l2, &mshrs, &dram, 0).is_none());
        assert_eq!(p.stats(), EngineStats::default());
    }
}

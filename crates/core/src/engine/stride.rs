//! Stride prefetching via predictor-directed stream buffers
//! (Sherwood, Sair & Calder, MICRO 2000) — the paper's pure-hardware
//! comparison point.
//!
//! Configuration follows §5.1: "the stride predictor uses a 4-way history
//! table with 1K entries. There are 8 entries in each of 8 streaming
//! buffers sharing the history table." The paper's GRP study omits the
//! Markov predictor half of Sherwood's design ("the Markov predictor
//! consumes too much state to be practical", §2) and so do we.
//!
//! One simplification is documented in DESIGN.md: stream-buffer fills are
//! modelled as LRU-priority L2 fills rather than a separate buffer array.
//! Hit/coverage/traffic behaviour — what the paper compares — is
//! preserved; only the (tiny) buffer-capacity displacement differs.

use grp_cpu::{HintSet, RefId};
use grp_mem::{Addr, BlockAddr, Cache, Dram, HeapRange, Memory, MshrFile};

use super::{Candidate, EngineStats, Prefetcher};
use crate::obs::{EngineEvent, EngineEventKind, SquashReason};

/// Geometry of the stride predictor + stream buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideConfig {
    /// History-table entries (paper: 1024).
    pub table_entries: usize,
    /// History-table associativity (paper: 4).
    pub table_ways: usize,
    /// Number of stream buffers (paper: 8).
    pub buffers: usize,
    /// Depth of each stream buffer (paper: 8).
    pub buffer_depth: u8,
    /// Confidence threshold before a stream is allocated.
    pub confidence: u8,
}

impl Default for StrideConfig {
    fn default() -> Self {
        Self {
            table_entries: 1024,
            table_ways: 4,
            buffers: 8,
            buffer_depth: 8,
            confidence: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TableEntry {
    valid: bool,
    tag: u32,
    last_addr: u64,
    stride: i64,
    conf: u8,
    lru: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    valid: bool,
    next: u64,
    stride: i64,
    credits: u8,
    lru: u64,
}

/// The stride/stream-buffer engine.
#[derive(Debug)]
pub struct StridePrefetcher {
    cfg: StrideConfig,
    table: Vec<TableEntry>,
    streams: Vec<Stream>,
    clock: u64,
    stats: EngineStats,
    /// Buffer queued/squashed lifecycle events for the observer layer.
    trace: bool,
    events: Vec<EngineEvent>,
}

impl StridePrefetcher {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics unless the table geometry divides evenly.
    pub fn new(cfg: StrideConfig) -> Self {
        assert!(cfg.table_entries.is_multiple_of(cfg.table_ways));
        Self {
            table: vec![TableEntry::default(); cfg.table_entries],
            streams: vec![Stream::default(); cfg.buffers],
            clock: 0,
            cfg,
            stats: EngineStats::default(),
            trace: false,
            events: Vec::new(),
        }
    }

    /// Emits one lifecycle event per distinct block a stream window
    /// covers: `credits` steps of `stride` bytes starting at `next`.
    /// Sub-block strides revisit the same block on consecutive steps, so
    /// consecutive duplicates are collapsed.
    fn emit_window(&mut self, next: u64, stride: i64, credits: u8, kind: EngineEventKind) {
        let mut a = next;
        let mut last: Option<BlockAddr> = None;
        for _ in 0..credits {
            let b = Addr(a).block();
            if last != Some(b) {
                self.events.push(EngineEvent { block: b, kind });
                last = Some(b);
            }
            a = a.wrapping_add(stride as u64);
        }
    }

    fn sets(&self) -> usize {
        self.cfg.table_entries / self.cfg.table_ways
    }

    /// Updates the history table for (pc, addr); returns a confident
    /// stride if one is established.
    fn update_table(&mut self, pc: u32, addr: u64) -> Option<i64> {
        self.clock += 1;
        let set = (pc as usize) % self.sets();
        let ways = self.cfg.table_ways;
        let slice = &mut self.table[set * ways..(set + 1) * ways];
        if let Some(e) = slice.iter_mut().find(|e| e.valid && e.tag == pc) {
            let stride = addr.wrapping_sub(e.last_addr) as i64;
            if stride == e.stride && stride != 0 {
                e.conf = (e.conf + 1).min(3);
            } else {
                e.conf = e.conf.saturating_sub(1);
                if e.conf == 0 {
                    e.stride = stride;
                }
            }
            e.last_addr = addr;
            e.lru = self.clock;
            if e.conf >= self.cfg.confidence && e.stride != 0 {
                return Some(e.stride);
            }
            return None;
        }
        // Replace the LRU way.
        let victim = slice
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("nonzero ways");
        *victim = TableEntry {
            valid: true,
            tag: pc,
            last_addr: addr,
            stride: 0,
            conf: 0,
            lru: self.clock,
        };
        None
    }

    /// Allocates or redirects a stream buffer at `addr + stride`.
    fn direct_stream(&mut self, addr: u64, stride: i64) {
        self.clock += 1;
        let depth = self.cfg.buffer_depth as u64;
        // An existing stream covering this address path gets refreshed.
        let mut refreshed = None;
        if let Some(s) = self.streams.iter_mut().find(|s| {
            s.valid && s.stride == stride && {
                // The miss falls on the stream's recent path.
                let diff = addr.wrapping_sub(s.next) as i64;
                stride != 0
                    && diff % stride == 0
                    && (diff / stride).unsigned_abs() <= depth
            }
        }) {
            s.next = addr.wrapping_add(stride as u64);
            s.credits = self.cfg.buffer_depth;
            s.lru = self.clock;
            refreshed = Some((s.next, s.stride, s.credits));
        }
        if let Some((next, st, credits)) = refreshed {
            if self.trace {
                // The redirected window mostly overlaps the old one; the
                // tracer keeps one open record per block, so re-queues of
                // already-tracked blocks are absorbed there.
                self.emit_window(next, st, credits, EngineEventKind::Queued);
            }
            return;
        }
        let victim = self
            .streams
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("nonzero buffers");
        let old = *victim;
        *victim = Stream {
            valid: true,
            next: addr.wrapping_add(stride as u64),
            stride,
            credits: self.cfg.buffer_depth,
            lru: self.clock,
        };
        self.stats.entries_allocated += 1;
        if self.trace {
            if old.valid && old.credits > 0 {
                self.emit_window(
                    old.next,
                    old.stride,
                    old.credits,
                    EngineEventKind::Squashed(SquashReason::Dropped),
                );
            }
            self.emit_window(
                addr.wrapping_add(stride as u64),
                stride,
                self.cfg.buffer_depth,
                EngineEventKind::Queued,
            );
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_demand_miss(
        &mut self,
        _block: BlockAddr,
        addr: Addr,
        ref_id: RefId,
        _hints: HintSet,
        _write: bool,
        _l2: &Cache,
    ) -> u8 {
        if let Some(stride) = self.update_table(ref_id.0, addr.0) {
            self.direct_stream(addr.0, stride);
        }
        0
    }

    fn on_fill(
        &mut self,
        _block: BlockAddr,
        _level: u8,
        _mem: &Memory,
        _heap: HeapRange,
        _l2: &Cache,
    ) {
    }

    fn has_candidates(&self) -> bool {
        self.streams.iter().any(|s| s.valid && s.credits > 0)
    }

    fn next_candidate(
        &mut self,
        l2: &Cache,
        mshrs: &MshrFile,
        dram: &Dram,
        now: u64,
    ) -> Option<Candidate> {
        // Round-robin over buffers (by LRU order: least-recently-serviced
        // first would starve hot streams; simple scan is what stream
        // buffers do — each has its own prefetch pointer).
        for s in self.streams.iter_mut() {
            if !s.valid || s.credits == 0 {
                continue;
            }
            while s.credits > 0 {
                let block = Addr(s.next).block();
                if l2.contains(block) || mshrs.contains(block) {
                    if self.trace {
                        self.events.push(EngineEvent::squashed(block, SquashReason::Stale));
                    }
                    s.next = s.next.wrapping_add(s.stride as u64);
                    s.credits -= 1;
                    continue;
                }
                if !dram.channel_idle(block, now) {
                    break; // try another stream
                }
                s.next = s.next.wrapping_add(s.stride as u64);
                s.credits -= 1;
                self.stats.candidates_issued += 1;
                return Some(Candidate {
                    block,
                    pointer_level: 0,
                });
            }
        }
        None
    }

    fn next_issue_time(&self, dram: &Dram) -> u64 {
        // After a failed scan every live stream head sits on a busy
        // channel (resident heads were consumed by the scan), so the next
        // time anything can issue is when one of *those* channels frees.
        let mut t = u64::MAX;
        for s in self.streams.iter() {
            if s.valid && s.credits > 0 {
                t = t.min(dram.channel_free_at(Addr(s.next).block()));
            }
        }
        if t == u64::MAX {
            dram.earliest_channel_free()
        } else {
            t
        }
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn set_trace_buffer(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    fn drain_trace_events(&mut self, sink: &mut Vec<EngineEvent>) {
        sink.append(&mut self.events);
    }

    fn queue_occupancy(&self) -> usize {
        self.streams.iter().filter(|s| s.valid && s.credits > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_mem::CacheConfig;

    fn parts() -> (Cache, MshrFile, Dram) {
        (
            Cache::new(CacheConfig::l2_spec()),
            MshrFile::new(8),
            Dram::new(Default::default()),
        )
    }

    fn miss(p: &mut StridePrefetcher, l2: &Cache, pc: u32, addr: u64) {
        p.on_demand_miss(
            Addr(addr).block(),
            Addr(addr),
            RefId(pc),
            HintSet::none(),
            false,
            l2,
        );
    }

    #[test]
    fn stride_learned_after_confidence_builds() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (l2, mshrs, dram) = parts();
        // Three strided misses from one PC: stride 256.
        miss(&mut p, &l2, 1, 0x10_0000);
        assert!(!p.has_candidates());
        miss(&mut p, &l2, 1, 0x10_0100);
        assert!(!p.has_candidates(), "one stride sample isn't confident yet");
        miss(&mut p, &l2, 1, 0x10_0200);
        miss(&mut p, &l2, 1, 0x10_0300);
        assert!(p.has_candidates());
        let c = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        assert_eq!(c.block, Addr(0x10_0400).block(), "prefetches ahead of the stream");
    }

    #[test]
    fn random_addresses_never_allocate_streams() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (l2, _mshrs, _dram) = parts();
        let addrs = [0x1000u64, 0x909000, 0x33000, 0x510000, 0x77000, 0x120000];
        for a in addrs {
            miss(&mut p, &l2, 9, a);
        }
        assert!(!p.has_candidates());
        assert_eq!(p.stats().entries_allocated, 0);
    }

    #[test]
    fn stream_depth_limits_runahead() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (l2, mshrs, dram) = parts();
        for k in 0..4u64 {
            miss(&mut p, &l2, 1, 0x10_0000 + k * 64);
        }
        let mut n = 0;
        let mut now = 0;
        while p.next_candidate(&l2, &mshrs, &dram, now).is_some() {
            n += 1;
            now += 10_000;
        }
        assert!(n <= 8, "at most buffer_depth blocks ahead, got {n}");
        assert!(n >= 4);
    }

    #[test]
    fn continued_misses_refresh_the_stream() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (l2, mshrs, dram) = parts();
        for k in 0..4u64 {
            miss(&mut p, &l2, 1, 0x10_0000 + k * 64);
        }
        // Drain.
        let mut now = 0;
        while p.next_candidate(&l2, &mshrs, &dram, now).is_some() {
            now += 10_000;
        }
        // A miss further down the stream refreshes credits.
        miss(&mut p, &l2, 1, 0x10_0000 + 4 * 64);
        assert!(p.has_candidates());
        assert_eq!(
            p.stats().entries_allocated,
            1,
            "same stream, not a new allocation"
        );
    }

    #[test]
    fn distinct_pcs_use_distinct_streams() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (l2, mshrs, dram) = parts();
        for k in 0..4u64 {
            miss(&mut p, &l2, 1, 0x10_0000 + k * 64);
            miss(&mut p, &l2, 2, 0x50_0000 + k * 4096);
        }
        let mut blocks = Vec::new();
        let mut now = 0;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            blocks.push(c.block.base().0);
            now += 10_000;
        }
        assert!(blocks.iter().any(|b| (0x10_0000..0x20_0000).contains(b)));
        assert!(blocks.iter().any(|b| (0x50_0000..0x60_0000).contains(b)));
    }

    #[test]
    fn stream_match_window_honors_configured_depth() {
        // Regression: `direct_stream` used to hard-code a match window of
        // 8 strides when deciding whether a miss falls on an existing
        // stream's path, ignoring `buffer_depth`. With a deeper buffer a
        // miss 13 strides ahead is still on-path and must refresh the
        // stream, not allocate a second one.
        let mut p = StridePrefetcher::new(StrideConfig {
            buffer_depth: 16,
            ..StrideConfig::default()
        });
        let (l2, _mshrs, _dram) = parts();
        // PC 1 trains a stride-64 stream; its pointer sits at 0x10_0100.
        for k in 0..4u64 {
            miss(&mut p, &l2, 1, 0x10_0000 + k * 64);
        }
        assert_eq!(p.stats().entries_allocated, 1);
        // PC 2 walks the same stride further along: its confident miss
        // lands 13 strides past the stream pointer — inside the depth-16
        // window, outside the old hard-coded 8.
        for k in 10..14u64 {
            miss(&mut p, &l2, 2, 0x10_0100 + k * 64);
        }
        assert_eq!(
            p.stats().entries_allocated,
            1,
            "on-path miss within buffer_depth strides must refresh, not reallocate"
        );
    }

    #[test]
    fn resident_blocks_are_skipped() {
        let mut p = StridePrefetcher::new(StrideConfig::default());
        let (mut l2, mshrs, dram) = parts();
        for k in 0..4u64 {
            miss(&mut p, &l2, 1, 0x10_0000 + k * 64);
        }
        // Make the next two stream blocks resident.
        l2.fill(Addr(0x10_0100).block(), grp_mem::InsertPriority::Mru, false, false);
        l2.fill(Addr(0x10_0140).block(), grp_mem::InsertPriority::Mru, false, false);
        let c = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        assert_eq!(c.block, Addr(0x10_0180).block());
    }
}

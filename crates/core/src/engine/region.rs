//! The region prefetching engine — SRP (§3.1) and GRP (§3.3).
//!
//! One engine implements both schemes: SRP is the configuration with no
//! hint gating (`spatial_gate = false`, pointer scanning off), GRP adds
//! the compiler-hint gates, pointer/recursive scanning, variable-size
//! regions, and indirect prefetching. The prefetch queue is a bounded
//! LIFO of region entries, each holding a 64-bit candidate vector and a
//! next-candidate index, exactly as described in §3.1.

use grp_cpu::{HintSet, RefId};
use grp_mem::{
    Addr, BlockAddr, Cache, Dram, FastMap, HeapRange, Memory, MshrFile, RegionAddr,
    REGION_BLOCKS,
};

use super::{Candidate, EngineStats, Prefetcher};

use crate::obs::{EngineEvent, SquashReason};

/// When the engine scans returned lines for pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerMode {
    /// Never scan (SRP, stride).
    Off,
    /// Scan every returned demand-miss line to the given depth — the
    /// hardware-only greedy scheme of §3.2.
    AllMisses(u8),
    /// Scan only lines whose miss carried a `pointer`/`recursive` hint.
    Hinted,
}

/// Region engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionConfig {
    /// Queue capacity (paper: 32).
    pub queue_capacity: usize,
    /// Allocate region entries at all (off for pointer-only schemes).
    pub regions_enabled: bool,
    /// Only allocate regions for misses with the `spatial` hint (GRP).
    pub spatial_gate: bool,
    /// Pointer-scan behaviour.
    pub pointer_mode: PointerMode,
    /// Honor `size` coefficients + loop bounds (GRP/Var).
    pub varsize: bool,
    /// Chase depth seeded by a `recursive pointer` hint (paper: 6).
    pub recursive_depth: u8,
    /// FIFO instead of LIFO queue order (ablation; paper uses LIFO).
    pub fifo: bool,
    /// Entries examined when preferring open-row candidates.
    pub probe_depth: usize,
}

impl RegionConfig {
    /// Scheduled region prefetching, no compiler support.
    pub fn srp(queue_capacity: usize) -> Self {
        Self {
            queue_capacity,
            regions_enabled: true,
            spatial_gate: false,
            pointer_mode: PointerMode::Off,
            varsize: false,
            recursive_depth: 6,
            fifo: false,
            probe_depth: 4,
        }
    }

    /// Full GRP; `varsize` selects GRP/Var vs GRP/Fix.
    pub fn grp(queue_capacity: usize, varsize: bool, recursive_depth: u8) -> Self {
        Self {
            queue_capacity,
            regions_enabled: true,
            spatial_gate: true,
            pointer_mode: PointerMode::Hinted,
            varsize,
            recursive_depth,
            fifo: false,
            probe_depth: 4,
        }
    }

    /// Hardware pointer prefetching alone (Figure 9).
    pub fn hw_pointer(queue_capacity: usize, depth: u8) -> Self {
        Self {
            queue_capacity,
            regions_enabled: false,
            spatial_gate: true,
            pointer_mode: PointerMode::AllMisses(depth),
            varsize: false,
            recursive_depth: depth,
            fifo: false,
            probe_depth: 4,
        }
    }

    /// Pointer prefetching gated by hints, without region prefetching.
    pub fn grp_pointer(queue_capacity: usize, recursive_depth: u8) -> Self {
        Self {
            queue_capacity,
            regions_enabled: false,
            spatial_gate: true,
            pointer_mode: PointerMode::Hinted,
            varsize: false,
            recursive_depth,
            fifo: false,
            probe_depth: 4,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct RegionEntry {
    region: RegionAddr,
    /// Candidate blocks still to prefetch.
    bits: u64,
    /// Next-candidate index within the region (wraps).
    index: u8,
    /// Pointer-chase depth to attach to issued prefetches.
    pointer_level: u8,
    /// Bits whose block has been probed against L2/MSHR residency and
    /// survived. Stale bits can only originate when a bit is first set
    /// (a block *entering* the cache or the MSHR file always clears its
    /// own candidate bit at that moment), so a bit that survives one
    /// probe can never become stale — later scans skip its residency
    /// probes. Tracked per bit (not per entry) so an entry that keeps
    /// yielding candidates doesn't re-probe its prefix on every take.
    checked: u64,
}

impl RegionEntry {
    fn clear(&mut self, bit: u8) {
        self.bits &= !(1u64 << bit);
    }
}

/// Null slot id for the intrusive queue links.
const NIL: u32 = u32::MAX;

/// A queue slot: the entry plus its doubly-linked neighbours. The queue
/// is a slab of slots threaded head↔tail so that the miss-to-queued-region
/// paths (which hit on most demand misses in region-heavy workloads) can
/// jump straight to an entry via the region index instead of scanning.
#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: RegionEntry,
    prev: u32,
    next: u32,
}

/// The SRP/GRP prefetch engine.
#[derive(Debug)]
pub struct RegionPrefetcher {
    cfg: RegionConfig,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    len: usize,
    /// region base → slot id, for O(1) entry lookup on demand misses and
    /// pointer/indirect enqueues. Only probed by key, never iterated, so
    /// it cannot perturb determinism.
    index: FastMap<u64, u32>,
    loop_bound: u32,
    stats: EngineStats,
    /// Buffer queued/squashed lifecycle events for the observer layer.
    trace: bool,
    events: Vec<EngineEvent>,
    // Test-only fault injection: when set, push_entry skips the
    // capacity-enforcement drop loop, letting the queue grow without
    // bound. Exists so the invariant-observer gate can prove it detects
    // queue-bound bugs; never set in production.
    fault_unbounded: bool,
    // Fault-injection back-pressure: entries of capacity currently
    // withheld (effective capacity floors at one). Zero outside fault
    // windows, so the unfaulted path is untouched.
    pressure: usize,
}

impl RegionPrefetcher {
    /// Creates an engine from `cfg`.
    pub fn new(cfg: RegionConfig) -> Self {
        Self {
            cfg,
            slots: Vec::with_capacity(cfg.queue_capacity + 1),
            free: Vec::with_capacity(cfg.queue_capacity + 1),
            head: NIL,
            tail: NIL,
            len: 0,
            index: FastMap::with_capacity_and_hasher(cfg.queue_capacity * 2, Default::default()),
            loop_bound: 0,
            stats: EngineStats::default(),
            trace: false,
            events: Vec::new(),
            fault_unbounded: false,
            pressure: 0,
        }
    }

    /// Queue capacity after subtracting any fault-injection pressure,
    /// never less than one.
    fn effective_capacity(&self) -> usize {
        self.cfg.queue_capacity.saturating_sub(self.pressure).max(1)
    }

    /// Drops old entries off the bottom until occupancy fits the
    /// effective capacity (§3.1's back-pressure, also reused by the
    /// fault-injection queue squeeze).
    fn enforce_capacity(&mut self) {
        while !self.fault_unbounded && self.len > self.effective_capacity() {
            let victim = if self.cfg.fifo { self.head } else { self.tail };
            let dropped = self.remove_slot(victim);
            if self.trace {
                let mut rem = dropped.bits;
                while rem != 0 {
                    let bit = rem.trailing_zeros();
                    rem &= rem - 1;
                    self.events.push(EngineEvent::squashed(
                        dropped.region.block(bit as usize),
                        SquashReason::Dropped,
                    ));
                }
            }
            self.stats.entries_dropped += 1;
        }
    }

    /// The active configuration.
    pub fn config(&self) -> RegionConfig {
        self.cfg
    }

    /// Current queue occupancy (entries).
    pub fn queue_len(&self) -> usize {
        self.len
    }

    /// Checks slab ↔ intrusive list ↔ region-index coherence and the
    /// queue capacity bound. Entries with an empty bit vector are legal
    /// (the demand-clear path can empty an entry in place). Returns the
    /// first violation as a message.
    pub fn validate_queue(&self) -> Result<(), String> {
        let mut seen = vec![false; self.slots.len()];
        let mut id = self.head;
        let mut prev = NIL;
        let mut count = 0usize;
        while id != NIL {
            let i = id as usize;
            if i >= self.slots.len() {
                return Err(format!("region queue: link to out-of-range slot {id}"));
            }
            if seen[i] {
                return Err(format!("region queue: cycle through slot {id}"));
            }
            seen[i] = true;
            let slot = &self.slots[i];
            if slot.prev != prev {
                return Err(format!(
                    "region queue: slot {id} prev link is {} but should be {}",
                    slot.prev, prev
                ));
            }
            match self.index.get(&slot.entry.region.0) {
                Some(&mapped) if mapped == id => {}
                other => {
                    return Err(format!(
                        "region queue: slot {id} (region {:#x}) maps to {other:?} in the index",
                        slot.entry.region.0
                    ))
                }
            }
            count += 1;
            prev = id;
            id = slot.next;
        }
        if prev != self.tail {
            return Err(format!(
                "region queue: walk ends at slot {prev} but tail is {}",
                self.tail
            ));
        }
        if count != self.len {
            return Err(format!(
                "region queue: list holds {count} entries but len is {}",
                self.len
            ));
        }
        if self.index.len() != count {
            return Err(format!(
                "region queue: index holds {} keys for {count} live entries",
                self.index.len()
            ));
        }
        for &f in &self.free {
            if (f as usize) < seen.len() && seen[f as usize] {
                return Err(format!("region queue: slot {f} is both free and linked"));
            }
        }
        if self.len + self.free.len() != self.slots.len() {
            return Err(format!(
                "region queue: {} slots != {} live + {} free",
                self.slots.len(),
                self.len,
                self.free.len()
            ));
        }
        if self.len > self.cfg.queue_capacity {
            return Err(format!(
                "region queue: occupancy {} exceeds capacity {}",
                self.len, self.cfg.queue_capacity
            ));
        }
        Ok(())
    }

    fn alloc_slot(&mut self, entry: RegionEntry) -> u32 {
        let slot = Slot {
            entry,
            prev: NIL,
            next: NIL,
        };
        match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                id
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn attach_head(&mut self, id: u32) {
        self.slots[id as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = id;
        } else {
            self.tail = id;
        }
        self.head = id;
        self.len += 1;
    }

    fn attach_tail(&mut self, id: u32) {
        self.slots[id as usize].prev = self.tail;
        if self.tail != NIL {
            self.slots[self.tail as usize].next = id;
        } else {
            self.head = id;
        }
        self.tail = id;
        self.len += 1;
    }

    /// Unlinks `id`, releases its slot and index entry, and returns the
    /// entry it held. Neighbours keep their positions — removal never
    /// shifts other entries (unlike a `VecDeque::remove`).
    fn remove_slot(&mut self, id: u32) -> RegionEntry {
        let Slot { entry, prev, next } = self.slots[id as usize];
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.index.remove(&entry.region.0);
        self.free.push(id);
        self.len -= 1;
        entry
    }

    fn push_entry(&mut self, e: RegionEntry) {
        let key = e.region.0;
        let id = self.alloc_slot(e);
        if self.cfg.fifo {
            self.attach_tail(id);
        } else {
            self.attach_head(id);
        }
        self.index.insert(key, id);
        self.enforce_capacity();
    }

    /// Region size in blocks for a spatial miss: fixed 64, or the §3.3.2
    /// variable size `loop bound << coefficient` (in bytes) when enabled.
    fn region_blocks(&self, hints: HintSet) -> u64 {
        if !self.cfg.varsize {
            return REGION_BLOCKS as u64;
        }
        match hints.size_coeff() {
            Some(x) if self.loop_bound > 0 => {
                let bytes = (self.loop_bound as u64) << x;
                let blocks = bytes.div_ceil(grp_mem::BLOCK_BYTES).max(1);
                blocks.next_power_of_two().clamp(2, REGION_BLOCKS as u64)
            }
            _ => REGION_BLOCKS as u64,
        }
    }

    /// Allocates (or refreshes) a region entry around a spatial miss.
    fn allocate_region(&mut self, miss: BlockAddr, hints: HintSet, plevel: u8, l2: &Cache) {
        let region = miss.region();
        let miss_idx = miss.index_in_region() as u8;
        let next_idx = (miss_idx + 1) % REGION_BLOCKS as u8;

        // Miss to a region already in the queue: clear the miss block's
        // bit, bump the index, move the entry to the head (§3.1).
        if let Some(&id) = self.index.get(&region.0) {
            let mut e = self.remove_slot(id);
            if self.trace && e.bits & (1u64 << miss_idx) != 0 {
                self.events.push(EngineEvent::squashed(miss, SquashReason::DemandHit));
            }
            e.clear(miss_idx);
            e.index = next_idx;
            e.pointer_level = e.pointer_level.max(plevel);
            self.push_entry(e);
            return;
        }

        // Fresh entry: candidate window of `size` blocks around the miss,
        // minus blocks already resident, minus the miss block itself.
        let size = self.region_blocks(hints);
        let window_start = (miss_idx as u64 / size) * size;
        let mut bits = 0u64;
        for i in window_start..window_start + size {
            let b = region.block(i as usize);
            if i as u8 != miss_idx && !l2.contains(b) {
                bits |= 1u64 << i;
                if self.trace {
                    self.events.push(EngineEvent::queued(b));
                }
            }
        }
        self.stats.entries_allocated += 1;
        let bucket = (63 - size.leading_zeros()) as usize;
        self.stats.region_size_hist[bucket.min(6)] += 1;
        if bits == 0 {
            return;
        }
        self.push_entry(RegionEntry {
            region,
            bits,
            index: next_idx,
            pointer_level: plevel,
            checked: 0,
        });
    }

    /// Queues a single block (pointer/indirect targets) by merging into
    /// an existing entry for its region or allocating a 1-block entry.
    fn enqueue_block(&mut self, block: BlockAddr, plevel: u8, l2: &Cache) {
        if l2.contains(block) {
            return;
        }
        let region = block.region();
        let bit = block.index_in_region() as u8;
        if let Some(&id) = self.index.get(&region.0) {
            let mut e = self.remove_slot(id);
            if self.trace && e.bits & (1u64 << bit) == 0 {
                self.events.push(EngineEvent::queued(block));
            }
            e.bits |= 1u64 << bit;
            // The (re-)enqueued bit has not been checked against the
            // MSHR file; other bits keep their probe status.
            e.checked &= !(1u64 << bit);
            e.pointer_level = e.pointer_level.max(plevel);
            self.push_entry(e);
        } else {
            if self.trace {
                self.events.push(EngineEvent::queued(block));
            }
            self.push_entry(RegionEntry {
                region,
                bits: 1u64 << bit,
                index: bit,
                pointer_level: plevel,
                checked: 0,
            });
        }
    }

    /// Pointer-chase depth a miss's hints imply under this config.
    fn pointer_level_for(&self, hints: HintSet) -> u8 {
        match self.cfg.pointer_mode {
            PointerMode::Off => 0,
            PointerMode::AllMisses(depth) => depth,
            PointerMode::Hinted => {
                if hints.recursive() {
                    self.cfg.recursive_depth
                } else if hints.pointer() {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Tries to take an issuable candidate from the entry in slot `id`.
    /// Returns the candidate (or `None` when the entry is blocked — busy
    /// channel / closed row under `require_open`) plus a flag telling the
    /// caller whether the slot was removed because the entry drained.
    ///
    /// `idle_masks` is the per-fold idle-channel mask table from
    /// [`Dram::region_idle_masks`] (computed once per scan pass and
    /// shared across entries); `None` selects the per-block probe loop.
    fn take_from_slot(
        &mut self,
        id: u32,
        l2: &Cache,
        mshrs: &MshrFile,
        dram: &Dram,
        now: u64,
        require_open: bool,
        idle_masks: Option<&[u64; 8]>,
    ) -> (Option<Candidate>, bool) {
        let e = &mut self.slots[id as usize].entry;
        // Scan candidates in index order (forward from the miss block,
        // wrapping); a busy channel does not block later candidates —
        // the controller issues to whichever channels are idle. Rotating
        // the bit vector lets `trailing_zeros` jump between set bits in
        // exactly that order, skipping the empty gaps.
        let start = e.index as u32;
        let mut taken: Option<(u8, BlockAddr, u8)> = None;
        // The mask table folds the per-bit channel/row predicates into
        // one `allowed` word: bit `i` set iff position `i` could issue
        // at `now`. `None` when the DRAM geometry is off the mask fast
        // path — the loop then probes the DRAM per block (same result).
        let allowed: Option<u64> = match idle_masks {
            Some(masks) => {
                let idle = masks[dram.region_fold(e.region)];
                if require_open {
                    dram.region_open_mask(e.region).map(|open| idle & open)
                } else {
                    Some(idle)
                }
            }
            None => None,
        };
        let unchecked = e.bits & !e.checked;
        if unchecked == 0 {
            // Every set bit already survived a residency probe, so the
            // scan has no side effects and reduces to "first set bit, in
            // rotated order, that can issue" — one AND plus
            // `trailing_zeros` instead of a probe loop.
            match allowed {
                Some(allowed) => {
                    let hit = (e.bits & allowed).rotate_right(start);
                    if hit != 0 {
                        let off = hit.trailing_zeros();
                        let bit = ((start + off) % REGION_BLOCKS as u32) as u8;
                        taken = Some((bit, e.region.block(bit as usize), e.pointer_level));
                    }
                }
                None => {
                    let mut rem = e.bits.rotate_right(start);
                    while rem != 0 {
                        let off = rem.trailing_zeros();
                        rem &= rem - 1;
                        let bit = ((start + off) % REGION_BLOCKS as u32) as u8;
                        let block = e.region.block(bit as usize);
                        if !dram.channel_idle(block, now)
                            || (require_open && !dram.row_is_open(block))
                        {
                            continue; // busy/closed: leave for later
                        }
                        taken = Some((bit, block, e.pointer_level));
                        break;
                    }
                }
            }
        } else {
            // Some bits still need their first residency probe. Walk the
            // set bits in rotated order — stale-clearing order up to the
            // take point is observable (it decides which bits survive
            // for later scans and the squash-event order) — but probe
            // only the unchecked ones: survivors are recorded so no bit
            // is ever probed twice. All probes target one region, so the
            // MSHR half of the probe is one batched file pass (the file
            // cannot change mid-scan), computed lazily — a scan that
            // takes an already-checked bit first never pays for it.
            let mut inflight: Option<u64> = None;
            let mut rem = e.bits.rotate_right(start);
            while rem != 0 {
                let off = rem.trailing_zeros();
                rem &= rem - 1;
                let bit = ((start + off) % REGION_BLOCKS as u32) as u8;
                let mask = 1u64 << bit;
                if e.checked & mask == 0 {
                    let infl =
                        *inflight.get_or_insert_with(|| mshrs.region_mask(e.region));
                    let block = e.region.block(bit as usize);
                    if infl & mask != 0 || l2.contains(block) {
                        // Stale candidate: already resident or in flight.
                        e.clear(bit);
                        if self.trace {
                            self.events
                                .push(EngineEvent::squashed(block, SquashReason::Stale));
                        }
                        continue;
                    }
                    e.checked |= mask;
                }
                let issuable = match allowed {
                    Some(allowed) => allowed & mask != 0,
                    None => {
                        let block = e.region.block(bit as usize);
                        dram.channel_idle(block, now)
                            && (!require_open || dram.row_is_open(block))
                    }
                };
                if !issuable {
                    continue; // busy/closed: leave for later, try other bits
                }
                taken = Some((bit, e.region.block(bit as usize), e.pointer_level));
                break;
            }
        }
        match taken {
            Some((bit, block, level)) => {
                e.clear(bit);
                e.index = (bit + 1) % REGION_BLOCKS as u8;
                let drained = e.bits == 0;
                if drained {
                    self.remove_slot(id);
                }
                self.stats.candidates_issued += 1;
                (
                    Some(Candidate {
                        block,
                        pointer_level: level,
                    }),
                    drained,
                )
            }
            None => {
                // Every set bit was examined; survivors are permanently
                // non-stale (see `RegionEntry::checked`).
                e.checked = e.bits;
                let drained = e.bits == 0;
                if drained {
                    // Drained entirely by stale-clearing.
                    self.remove_slot(id);
                }
                (None, drained)
            }
        }
    }
}

impl Prefetcher for RegionPrefetcher {
    fn on_demand_miss(
        &mut self,
        block: BlockAddr,
        _addr: Addr,
        _ref_id: RefId,
        hints: HintSet,
        _write: bool,
        l2: &Cache,
    ) -> u8 {
        let plevel = self.pointer_level_for(hints);
        let spatial_ok = !self.cfg.spatial_gate || hints.spatial();
        if self.cfg.regions_enabled && spatial_ok {
            self.allocate_region(block, hints, plevel, l2);
        } else if let Some(&id) = self.index.get(&block.region().0) {
            // Even a non-triggering miss invalidates its own block's
            // candidate bit (the demand fetch is already underway).
            let bit = block.index_in_region() as u8;
            if self.trace && self.slots[id as usize].entry.bits & (1u64 << bit) != 0 {
                self.events.push(EngineEvent::squashed(block, SquashReason::DemandHit));
            }
            self.slots[id as usize].entry.clear(bit);
        }
        plevel
    }

    fn on_fill(&mut self, _block: BlockAddr, level: u8, mem: &Memory, heap: HeapRange, l2: &Cache) {
        if level == 0 || self.cfg.pointer_mode == PointerMode::Off {
            return;
        }
        // §3.2: pointers are aligned 8-byte entities; check the eight
        // words of the returned line against the heap bounds and prefetch
        // two blocks per hit (structures may straddle a block boundary).
        let words = mem.read_block_words(_block);
        for w in words {
            let target = Addr(w);
            if !heap.contains(target) {
                continue;
            }
            let tb = target.block();
            self.stats.pointer_entries += 1;
            self.enqueue_block(tb, level - 1, l2);
            self.enqueue_block(tb.offset(1), level - 1, l2);
        }
    }

    fn set_loop_bound(&mut self, bound: u32) {
        self.loop_bound = bound;
    }

    fn indirect_prefetch(
        &mut self,
        base: Addr,
        elem_size: u32,
        index_addr: Addr,
        mem: &Memory,
        l2: &Cache,
    ) {
        // §3.3.3: read the cache block containing &b[i]; for each 4-byte
        // word, prefetch base + scaled index — up to 16 prefetches. The
        // index block may hold uninitialized or corrupt data (the engine
        // reads whatever sits in the line), so the scaled target is
        // computed in 128-bit and gated to the address space: a negative
        // or overflowed result is dropped, not wrapped into a garbage
        // prefetch.
        let words = mem.read_block_words_u32(index_addr.block());
        for w in words {
            let idx = w as i32 as i128;
            let target = base.0 as i128 + idx * elem_size as i128;
            if target < 0 || target > u64::MAX as i128 {
                self.stats.indirect_dropped += 1;
                continue;
            }
            self.stats.indirect_entries += 1;
            self.enqueue_block(Addr(target as u64).block(), 0, l2);
        }
    }

    fn has_candidates(&self) -> bool {
        self.len > 0
    }

    fn next_candidate(
        &mut self,
        l2: &Cache,
        mshrs: &MshrFile,
        dram: &Dram,
        now: u64,
    ) -> Option<Candidate> {
        // One idle-mask table serves every entry in both passes: the
        // masks depend only on `now` and the channel states, which a
        // scan never mutates.
        let idle_masks = dram.region_idle_masks(now);
        let idle_masks = idle_masks.as_ref();
        // Pass 1: among the first `probe_depth` entries, prefer a
        // candidate whose DRAM row is already open (§3.1). Entries that
        // drain during the probe don't count against the depth — their
        // successor inherits the probe slot.
        let mut probes = 0;
        let mut cur = self.head;
        while cur != NIL && probes < self.cfg.probe_depth {
            let next = self.slots[cur as usize].next;
            let (c, removed) = self.take_from_slot(cur, l2, mshrs, dram, now, true, idle_masks);
            if let Some(c) = c {
                return Some(c);
            }
            if !removed {
                probes += 1;
            }
            cur = next;
        }
        // Pass 2: first candidate on any idle channel, scanning from the
        // head (LIFO priority).
        let mut cur = self.head;
        while cur != NIL {
            let next = self.slots[cur as usize].next;
            let (c, _removed) = self.take_from_slot(cur, l2, mshrs, dram, now, false, idle_masks);
            if let Some(c) = c {
                return Some(c);
            }
            cur = next;
        }
        None
    }

    fn next_issue_time(&self, dram: &Dram) -> u64 {
        // After a failed scan every live candidate bit sits on a busy
        // channel (stale bits were cleared as the scan passed them), so
        // the earliest useful re-scan is when one of *those* channels
        // frees. Walk candidates until every channel has been seen — the
        // min can only improve by covering a new channel.
        let channels = dram.config().channels;
        let all = (1u64 << channels) - 1;
        let mut seen = 0u64;
        let mut t = u64::MAX;
        let mut cur = self.head;
        while cur != NIL && seen != all {
            let e = &self.slots[cur as usize].entry;
            // The min over an entry only depends on *which* channels its
            // bits map to, so the mask path folds the per-bit walk into
            // one channel-set lookup per entry.
            if let Some(chs) = dram.region_channel_set(e.region, e.bits) {
                let mut fresh = chs & !seen;
                seen |= fresh;
                while fresh != 0 {
                    let ch = fresh.trailing_zeros() as usize;
                    fresh &= fresh - 1;
                    t = t.min(dram.channel_free_at_index(ch));
                }
            } else {
                let mut rem = e.bits;
                while rem != 0 && seen != all {
                    let bit = rem.trailing_zeros();
                    rem &= rem - 1;
                    let block = e.region.block(bit as usize);
                    let ch = dram.channel_of(block);
                    if seen & (1u64 << ch) == 0 {
                        seen |= 1u64 << ch;
                        t = t.min(dram.channel_free_at(block));
                    }
                }
            }
            cur = self.slots[cur as usize].next;
        }
        if t == u64::MAX {
            // Only zero-bit entries remain (left by the demand-clear
            // path); fall back to the generic bound.
            dram.earliest_channel_free()
        } else {
            t
        }
    }

    fn stats(&self) -> EngineStats {
        self.stats
    }

    fn set_trace_buffer(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    fn drain_trace_events(&mut self, sink: &mut Vec<EngineEvent>) {
        sink.append(&mut self.events);
    }

    fn queue_occupancy(&self) -> usize {
        self.len
    }

    fn validate(&self) -> Result<(), String> {
        self.validate_queue()
    }

    fn set_queue_pressure(&mut self, amount: usize) {
        self.pressure = amount;
        // Trim immediately — a shrinking window must not wait for the
        // next allocation to take effect.
        self.enforce_capacity();
    }

    fn inject_fault_unbounded_queue(&mut self) {
        self.fault_unbounded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_mem::CacheConfig;

    fn l2() -> Cache {
        Cache::new(CacheConfig::l2_spec())
    }

    fn fresh(cfg: RegionConfig) -> (RegionPrefetcher, Cache, MshrFile, Dram, Memory) {
        (
            RegionPrefetcher::new(cfg),
            l2(),
            MshrFile::new(8),
            Dram::new(Default::default()),
            Memory::new(),
        )
    }

    fn heap() -> HeapRange {
        HeapRange {
            start: Addr(0x10_0000),
            end: Addr(0x80_0000),
        }
    }

    #[test]
    fn srp_allocates_full_region_on_any_miss() {
        let (mut p, l2, mshrs, dram, _m) = fresh(RegionConfig::srp(32));
        let miss = Addr(0x40_0040).block();
        p.on_demand_miss(miss, Addr(0x40_0040), RefId(0), HintSet::none(), false, &l2);
        assert!(p.has_candidates());
        // 63 candidates (region minus the miss block itself).
        let mut got = 0;
        let mut now = 0;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            assert_ne!(c.block, miss);
            assert_eq!(c.block.region(), miss.region());
            got += 1;
            now += 10_000; // keep channels idle
        }
        assert_eq!(got, 63);
    }

    #[test]
    fn srp_prefetches_forward_first() {
        let (mut p, l2, mshrs, dram, _m) = fresh(RegionConfig::srp(32));
        // Miss on block 10 of its region.
        let region = RegionAddr(0x123);
        let miss = region.block(10);
        p.on_demand_miss(miss, miss.base(), RefId(0), HintSet::none(), false, &l2);
        let c = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        assert_eq!(c.block, region.block(11), "index starts after the miss block");
    }

    #[test]
    fn grp_gates_on_spatial_hint() {
        let (mut p, l2, _mshrs, _dram, _m) = fresh(RegionConfig::grp(32, false, 6));
        let miss = Addr(0x40_0000).block();
        p.on_demand_miss(miss, miss.base(), RefId(0), HintSet::none(), false, &l2);
        assert!(!p.has_candidates(), "unhinted miss triggers nothing under GRP");
        p.on_demand_miss(
            miss,
            miss.base(),
            RefId(0),
            HintSet::none().with_spatial(),
            false,
            &l2,
        );
        assert!(p.has_candidates());
    }

    #[test]
    fn repeated_region_miss_moves_entry_to_head_and_clears_bit() {
        let (mut p, l2, mshrs, dram, _m) = fresh(RegionConfig::srp(32));
        let r1 = RegionAddr(1);
        let r2 = RegionAddr(2);
        p.on_demand_miss(r1.block(0), r1.block(0).base(), RefId(0), HintSet::none(), false, &l2);
        p.on_demand_miss(r2.block(0), r2.block(0).base(), RefId(0), HintSet::none(), false, &l2);
        // LIFO: r2 is at the head now. A miss to r1 block 5 moves r1 back up.
        p.on_demand_miss(r1.block(5), r1.block(5).base(), RefId(0), HintSet::none(), false, &l2);
        let c = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        assert_eq!(c.block.region(), r1, "refreshed region issues first");
        assert_eq!(c.block, r1.block(6), "index moved past the new miss");
        // Block 5 itself was cleared: drain and check it never appears.
        let mut seen5 = false;
        let mut now = 10_000;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            if c.block == r1.block(5) {
                seen5 = true;
            }
            now += 10_000;
        }
        assert!(!seen5);
    }

    #[test]
    fn queue_is_bounded_lifo_with_tail_drop() {
        let (mut p, l2, _mshrs, _dram, _m) = fresh(RegionConfig::srp(2));
        for i in 0..4u64 {
            let b = RegionAddr(i).block(0);
            p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, &l2);
        }
        assert_eq!(p.queue_len(), 2);
        assert_eq!(p.stats().entries_dropped, 2);
    }

    #[test]
    fn queue_pressure_trims_immediately_and_releases() {
        let (mut p, l2, _mshrs, _dram, _m) = fresh(RegionConfig::srp(4));
        for i in 0..4u64 {
            let b = RegionAddr(i).block(0);
            p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, &l2);
        }
        assert_eq!(p.queue_len(), 4);
        p.set_queue_pressure(3);
        assert_eq!(p.queue_len(), 1, "pressure trims live entries at once");
        assert_eq!(p.stats().entries_dropped, 3);
        p.validate_queue().unwrap();
        // Under pressure the capacity stays squeezed for new entries too.
        for i in 10..13u64 {
            let b = RegionAddr(i).block(0);
            p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, &l2);
        }
        assert_eq!(p.queue_len(), 1);
        // Effective capacity floors at one even under absurd pressure.
        p.set_queue_pressure(1_000);
        assert_eq!(p.queue_len(), 1);
        // Releasing the pressure restores the full capacity.
        p.set_queue_pressure(0);
        for i in 20..24u64 {
            let b = RegionAddr(i).block(0);
            p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, &l2);
        }
        assert_eq!(p.queue_len(), 4);
        p.validate_queue().unwrap();
    }

    #[test]
    fn resident_blocks_are_not_candidates() {
        let (mut p, mut l2, mshrs, dram, _m) = fresh(RegionConfig::srp(32));
        let region = RegionAddr(7);
        // Make blocks 1..32 resident.
        for i in 1..32 {
            l2.fill(region.block(i), grp_mem::InsertPriority::Mru, false, false);
        }
        p.on_demand_miss(region.block(0), region.block(0).base(), RefId(0), HintSet::none(), false, &l2);
        let mut count = 0;
        let mut now = 0;
        while p.next_candidate(&l2, &mshrs, &dram, now).is_some() {
            count += 1;
            now += 10_000;
        }
        assert_eq!(count, 32, "only the 32 absent blocks are prefetched");
    }

    #[test]
    fn pointer_scan_enqueues_two_blocks_per_heap_pointer() {
        let (mut p, l2, mshrs, dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let line = Addr(0x20_0000).block();
        // Plant one heap pointer and seven junk words.
        m.write_u64(line.base(), 0x30_0008); // heap pointer
        for i in 1..8 {
            m.write_u64(line.base().offset(i * 8), 0xdead); // below heap
        }
        p.on_fill(line, 1, &m, heap(), &l2);
        let c1 = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        let c2 = p.next_candidate(&l2, &mshrs, &dram, 10_000).unwrap();
        let target = Addr(0x30_0008).block();
        assert_eq!(c1.block, target);
        assert_eq!(c2.block, target.offset(1));
        assert_eq!(c1.pointer_level, 0, "depth decremented");
        assert!(p.next_candidate(&l2, &mshrs, &dram, 20_000).is_none());
    }

    #[test]
    fn recursive_scan_decrements_level() {
        let (mut p, l2, _mshrs, _dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let line = Addr(0x20_0000).block();
        m.write_u64(line.base(), 0x30_0000);
        p.on_fill(line, 6, &m, heap(), &l2);
        // The enqueued candidates carry level 5 — another scan will fire
        // when they return.
        let mshrs = MshrFile::new(8);
        let dram = Dram::new(Default::default());
        let c = p.next_candidate(&l2, &mshrs, &dram, 0).unwrap();
        assert_eq!(c.pointer_level, 5);
    }

    #[test]
    fn level_zero_fill_does_not_scan() {
        let (mut p, l2, _mshrs, _dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let line = Addr(0x20_0000).block();
        m.write_u64(line.base(), 0x30_0000);
        p.on_fill(line, 0, &m, heap(), &l2);
        assert!(!p.has_candidates());
    }

    #[test]
    fn variable_size_region_uses_loop_bound() {
        let (mut p, l2, mshrs, dram, _m) = fresh(RegionConfig::grp(32, true, 6));
        p.set_loop_bound(16);
        // coeff 3 → 16 << 3 = 128 bytes = 2 blocks.
        let hints = HintSet::none().with_spatial().with_size_coeff(3);
        let region = RegionAddr(9);
        let miss = region.block(4);
        p.on_demand_miss(miss, miss.base(), RefId(0), hints, false, &l2);
        let mut blocks = Vec::new();
        let mut now = 0;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            blocks.push(c.block);
            now += 10_000;
        }
        // Window of 2 blocks aligned at 4: {4, 5} minus the miss block 4.
        assert_eq!(blocks, vec![region.block(5)]);
        assert_eq!(p.stats().region_size_hist[1], 1, "2-block region recorded");
    }

    #[test]
    fn fixed_size_ignores_coefficients() {
        let (mut p, l2, _mshrs, _dram, _m) = fresh(RegionConfig::grp(32, false, 6));
        p.set_loop_bound(16);
        let hints = HintSet::none().with_spatial().with_size_coeff(3);
        let miss = RegionAddr(9).block(4);
        p.on_demand_miss(miss, miss.base(), RefId(0), hints, false, &l2);
        assert_eq!(p.stats().region_size_hist[6], 1, "full 64-block region");
    }

    #[test]
    fn indirect_prefetch_reads_index_block() {
        let (mut p, l2, mshrs, dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let index_addr = Addr(0x50_0000);
        // Sixteen i32 indices: 0, 100, 200, …
        for i in 0..16 {
            m.write_i32(index_addr.offset(i * 4), (i * 100) as i32);
        }
        let base = Addr(0x60_0000);
        p.indirect_prefetch(base, 8, index_addr, &m, &l2);
        let mut targets = Vec::new();
        let mut now = 0;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            targets.push(c.block);
            now += 10_000;
        }
        assert!(!targets.is_empty());
        // First index 0 → base block; index 100 → base + 800.
        assert!(targets.contains(&base.block()));
        assert!(targets.contains(&base.offset(800).block()));
        assert_eq!(p.stats().indirect_entries, 16);
    }

    #[test]
    fn indirect_prefetch_drops_wrapped_targets() {
        // Regression: a negative index whose scaled offset exceeds the
        // base used to wrap through `as u64` and prefetch a garbage
        // high address. Such out-of-space targets must be dropped and
        // counted, while in-range negative offsets still prefetch.
        let (mut p, l2, mshrs, dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let index_addr = Addr(0x50_0000);
        m.write_i32(index_addr, -1_000_000); // wraps below zero: dropped
        m.write_i32(index_addr.offset(4), i32::MIN); // extreme corrupt index: dropped
        m.write_i32(index_addr.offset(8), -2); // base - 16: valid backward target
        m.write_i32(index_addr.offset(12), 4); // base + 32: valid forward target
        for i in 4..16 {
            m.write_i32(index_addr.offset(i * 4), i32::MAX); // overflow u64? no — gate only negatives here
        }
        let base = Addr(0x60_0000);
        p.indirect_prefetch(base, 8, index_addr, &m, &l2);
        assert_eq!(p.stats().indirect_dropped, 2, "both wrapped targets dropped");
        assert_eq!(p.stats().indirect_entries, 14);
        let mut targets = Vec::new();
        let mut now = 0;
        while let Some(c) = p.next_candidate(&l2, &mshrs, &dram, now) {
            targets.push(c.block);
            now += 10_000;
        }
        assert!(targets.contains(&base.offset(-16).block()));
        assert!(targets.contains(&base.offset(32).block()));
        // No wrapped high-half address ever enters the queue.
        assert!(targets.iter().all(|b| b.base().0 < (1u64 << 48)));
    }

    #[test]
    fn indirect_prefetch_drops_overflowed_targets() {
        // The symmetric overflow case: a huge base plus a large positive
        // scaled index leaves the 64-bit space and must be dropped.
        let (mut p, l2, _mshrs, _dram, mut m) = fresh(RegionConfig::grp(32, false, 6));
        let index_addr = Addr(0x50_0000);
        for i in 0..16 {
            m.write_i32(index_addr.offset(i * 4), i32::MAX);
        }
        let base = Addr(u64::MAX - 64);
        p.indirect_prefetch(base, 1 << 20, index_addr, &m, &l2);
        assert_eq!(p.stats().indirect_dropped, 16);
        assert_eq!(p.stats().indirect_entries, 0);
        assert!(!p.has_candidates());
    }

    #[test]
    fn hw_pointer_mode_scans_all_misses() {
        let (mut p, l2, _mshrs, _dram, _m) = fresh(RegionConfig::hw_pointer(32, 1));
        let miss = Addr(0x40_0000).block();
        let level = p.on_demand_miss(miss, miss.base(), RefId(0), HintSet::none(), false, &l2);
        assert_eq!(level, 1, "every miss gets scanned in hw-pointer mode");
        assert!(!p.has_candidates(), "but no region entries are allocated");
    }

    #[test]
    fn busy_channels_defer_candidates() {
        let (mut p, l2, mshrs, mut dram, _m) = fresh(RegionConfig::srp(32));
        let miss = RegionAddr(3).block(0);
        p.on_demand_miss(miss, miss.base(), RefId(0), HintSet::none(), false, &l2);
        // Occupy all four channels.
        for ch in 0..4u64 {
            dram.issue(BlockAddr(ch), grp_mem::RequestKind::Demand, 0);
        }
        assert!(p.next_candidate(&l2, &mshrs, &dram, 0).is_none());
        assert!(p.has_candidates(), "candidates retained for later");
        let later = 1_000_000;
        assert!(p.next_candidate(&l2, &mshrs, &dram, later).is_some());
    }

    #[test]
    fn drained_stale_entry_does_not_skip_successor_in_probe_pass() {
        // Regression: pass 1 used to advance `qi` even when
        // `take_from_entry` removed a fully-stale entry at `qi`, so the
        // entry that shifted into the slot lost its open-row probe.
        let (mut p, mut l2, mshrs, mut dram, _m) = fresh(RegionConfig::srp(32));
        let ra = RegionAddr(0xA);
        let rb = RegionAddr(0xB);
        let rc = RegionAddr(0xC);
        // LIFO: queue reads [A, B, C] from the head.
        for r in [rc, rb, ra] {
            let b = r.block(0);
            p.on_demand_miss(b, b.base(), RefId(0), HintSet::none(), false, &l2);
        }
        // Make A's whole region resident: entry A is fully stale and
        // drains (entry removed) when pass 1 examines it.
        for i in 0..REGION_BLOCKS {
            l2.fill(ra.block(i), grp_mem::InsertPriority::Mru, false, false);
        }
        // Open the rows of both B's and C's next candidates.
        let q1 = dram.issue(rb.block(1), grp_mem::RequestKind::Demand, 0);
        let q2 = dram.issue(rc.block(1), grp_mem::RequestKind::Demand, 0);
        let now = q1.complete_at.max(q2.complete_at) + 1;
        // A drains at position 0; B shifts into the slot and must be the
        // open-row probe's winner (the bug skipped straight to C).
        let c = p.next_candidate(&l2, &mshrs, &dram, now).unwrap();
        assert_eq!(
            c.block.region(),
            rb,
            "successor of the drained entry keeps its open-row probe"
        );
    }

    #[test]
    fn open_row_candidates_preferred() {
        let (mut p, l2, mshrs, mut dram, _m) = fresh(RegionConfig::srp(32));
        // Two regions queued; the second one's row gets opened.
        let r1 = RegionAddr(0x100);
        let r2 = RegionAddr(0x200);
        p.on_demand_miss(r1.block(0), r1.block(0).base(), RefId(0), HintSet::none(), false, &l2);
        p.on_demand_miss(r2.block(0), r2.block(0).base(), RefId(0), HintSet::none(), false, &l2);
        // Open the row for r1's early blocks; pick a time when channels idle.
        let req = dram.issue(r1.block(1), grp_mem::RequestKind::Demand, 0);
        let now = req.complete_at + 1;
        let c = p.next_candidate(&l2, &mshrs, &dram, now).unwrap();
        assert_eq!(
            c.block.region(),
            r1,
            "open-row region wins despite r2 being newer"
        );
    }
}

//! Property tests for the out-of-order window model: invariants that
//! must hold for any dispatch schedule.

use grp_cpu::{Window, WindowConfig};
use grp_testkit::proptest;
use grp_testkit::proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Compute(u64),
    Load { latency: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(Op::Compute),
            (1u64..400).prop_map(|latency| Op::Load { latency }),
        ],
        1..120,
    )
}

fn run(cfg: WindowConfig, ops: &[Op]) -> (u64, u64) {
    let mut w = Window::new(cfg);
    let mut insts = 0u64;
    for op in ops {
        match op {
            Op::Compute(n) => {
                w.dispatch_compute(*n);
                insts += n;
            }
            Op::Load { latency } => {
                let d = w.prepare_dispatch(1);
                w.push(1, d + latency);
                insts += 1;
            }
        }
    }
    (w.finish(), insts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Execution time is bounded below by retire bandwidth and by the
    /// longest single load latency, and everything retires.
    #[test]
    fn cycles_bounded_below(ops in ops()) {
        let cfg = WindowConfig::default();
        let (cycles, insts) = run(cfg, &ops);
        prop_assert!(cycles >= insts / cfg.width);
        let max_lat = ops
            .iter()
            .filter_map(|o| match o {
                Op::Load { latency } => Some(*latency),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        prop_assert!(cycles + 1 >= max_lat, "a load's latency cannot vanish");
    }

    /// Execution time is bounded above by fully-serial execution.
    #[test]
    fn cycles_bounded_above_by_serial(ops in ops()) {
        let cfg = WindowConfig::default();
        let (cycles, _) = run(cfg, &ops);
        let serial: u64 = ops
            .iter()
            .map(|o| match o {
                Op::Compute(n) => *n,
                Op::Load { latency } => latency + 1,
            })
            .sum();
        prop_assert!(cycles <= serial + 64, "window never slower than serial");
    }

    /// A wider window never slows execution down.
    #[test]
    fn bigger_window_is_monotone(ops in ops()) {
        let small = run(
            WindowConfig { width: 4, capacity: 16 },
            &ops,
        );
        let big = run(
            WindowConfig { width: 4, capacity: 256 },
            &ops,
        );
        prop_assert!(big.0 <= small.0, "capacity 256 ({}) vs 16 ({})", big.0, small.0);
    }

    /// All dispatched instructions retire exactly once.
    #[test]
    fn retire_conservation(ops in ops()) {
        let cfg = WindowConfig::default();
        let mut w = Window::new(cfg);
        let mut insts = 0u64;
        for op in &ops {
            match op {
                Op::Compute(n) => {
                    w.dispatch_compute(*n);
                    insts += n;
                }
                Op::Load { latency } => {
                    let d = w.prepare_dispatch(1);
                    w.push(1, d + latency);
                    insts += 1;
                }
            }
        }
        w.finish();
        prop_assert_eq!(w.retired(), insts);
        prop_assert_eq!(w.dispatched(), insts);
        prop_assert_eq!(w.occupancy(), 0);
    }
}

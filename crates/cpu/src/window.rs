//! The out-of-order instruction window timing model.
//!
//! [`Window`] models the latency-tolerance behaviour of the paper's
//! 4-wide, 64-entry-RUU core analytically:
//!
//! * instructions dispatch in program order, `width` per cycle, while the
//!   window has space;
//! * each instruction carries a completion cycle (1 cycle after dispatch
//!   for ALU work, memory-system-determined for loads);
//! * retirement is in order, `width` per cycle, and cannot pass an
//!   incomplete instruction — so a long-latency load blocks retirement,
//!   and dispatch stalls once the window fills behind it;
//! * independent loads dispatched before the window fills overlap their
//!   latencies (memory-level parallelism).
//!
//! The model is *batch-based*: runs of compute instructions are kept as a
//! single window entry, making replay cost proportional to the number of
//! trace events rather than instructions. Lazy retirement (entries drain
//! when space is needed or at [`Window::finish`]) computes the same
//! schedule as eager retirement because the retire schedule depends only
//! on program order, completion times, and retire width.

use std::collections::VecDeque;

/// Core width/window geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Dispatch and retire width in instructions per cycle (paper: 4).
    pub width: u64,
    /// Window (RUU) capacity in instructions (paper: 64).
    pub capacity: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            width: 4,
            capacity: 64,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Batch {
    count: u32,
    // Completion cycle of the batch's *first* instruction. Later
    // instructions in a compute batch complete at dispatch rate, which is
    // the retire rate, so pegging the batch to its first completion and
    // draining at `width`/cycle reproduces the eager schedule.
    complete_at: u64,
}

/// The analytic out-of-order window. See the module docs for the model.
#[derive(Debug, Clone)]
pub struct Window {
    cfg: WindowConfig,
    // `width` as a shift amount when it is a power of two (the paper's
    // core is 4-wide): turns the per-event slot→cycle divisions into
    // shifts. `None` falls back to division — identical arithmetic.
    width_shift: Option<u32>,
    entries: VecDeque<Batch>,
    occupancy: usize,
    dispatch_cycle: u64,
    slots_used: u64,
    // Next free retirement slot, in absolute slot units
    // (cycle * width + slot-within-cycle).
    retire_slot_next: u64,
    last_retire_cycle: u64,
    retired: u64,
    dispatched: u64,
}

impl Window {
    /// Creates an empty window.
    ///
    /// # Panics
    ///
    /// Panics if width or capacity is zero.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.width > 0 && cfg.capacity > 0);
        Self {
            cfg,
            width_shift: cfg.width.is_power_of_two().then(|| cfg.width.trailing_zeros()),
            entries: VecDeque::new(),
            occupancy: 0,
            dispatch_cycle: 0,
            slots_used: 0,
            retire_slot_next: 0,
            last_retire_cycle: 0,
            retired: 0,
            dispatched: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> WindowConfig {
        self.cfg
    }

    /// Current dispatch cycle: when the next instruction would dispatch.
    pub fn now(&self) -> u64 {
        self.dispatch_cycle
    }

    /// Instructions dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Instructions retired so far (lazy; see [`Window::finish`]).
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current window occupancy in instructions.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Retires the oldest batch, returning the cycle at which its last
    /// instruction has left the window.
    fn retire_head(&mut self) -> u64 {
        let b = self
            .entries
            .pop_front()
            .expect("retire_head on empty window");
        // Retirement of this batch cannot start before its first
        // instruction completes, and consumes `count` retire slots.
        let start_slot = self.retire_slot_next.max(b.complete_at * self.cfg.width);
        self.retire_slot_next = start_slot + b.count as u64;
        let end = self.div_width(self.retire_slot_next - 1);
        self.last_retire_cycle = self.last_retire_cycle.max(end);
        self.occupancy -= b.count as usize;
        self.retired += b.count as u64;
        end
    }

    #[inline]
    fn div_width(&self, slots: u64) -> u64 {
        match self.width_shift {
            Some(s) => slots >> s,
            None => slots / self.cfg.width,
        }
    }

    fn advance_dispatch_to(&mut self, cycle: u64) {
        if cycle > self.dispatch_cycle {
            self.dispatch_cycle = cycle;
            self.slots_used = 0;
        }
    }

    /// Ensures the window has room for `n` more instructions, stalling
    /// dispatch until enough older instructions retire, and returns the
    /// cycle at which the first of the `n` will dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the window capacity (callers chunk larger
    /// batches) or is zero.
    pub fn prepare_dispatch(&mut self, n: u32) -> u64 {
        assert!(n > 0 && (n as usize) <= self.cfg.capacity);
        while self.occupancy + n as usize > self.cfg.capacity {
            let freed_at = self.retire_head();
            self.advance_dispatch_to(freed_at);
        }
        self.dispatch_cycle
    }

    /// Inserts `n` instructions completing at `complete_at`, consuming
    /// dispatch slots. Call [`Window::prepare_dispatch`] first.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not fit (missing `prepare_dispatch`).
    pub fn push(&mut self, n: u32, complete_at: u64) {
        assert!(
            self.occupancy + n as usize <= self.cfg.capacity,
            "push without prepare_dispatch"
        );
        self.entries.push_back(Batch {
            count: n,
            complete_at,
        });
        self.occupancy += n as usize;
        self.dispatched += n as u64;
        self.slots_used += n as u64;
        let carry = self.div_width(self.slots_used);
        self.dispatch_cycle += carry;
        self.slots_used -= carry * self.cfg.width;
    }

    /// Dispatches `n` single-cycle (compute) instructions, chunking to the
    /// window capacity.
    pub fn dispatch_compute(&mut self, mut n: u64) {
        while n > 0 {
            let chunk = n.min(self.cfg.capacity as u64) as u32;
            let d = self.prepare_dispatch(chunk);
            // First instruction of the chunk completes one cycle after it
            // dispatches; the rest complete at dispatch rate behind it.
            self.push(chunk, d + 1);
            n -= chunk as u64;
        }
    }

    /// Drains the window and returns the cycle at which the final
    /// instruction retired — the program's execution time.
    pub fn finish(&mut self) -> u64 {
        while !self.entries.is_empty() {
            self.retire_head();
        }
        self.last_retire_cycle.max(self.dispatch_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Window {
        Window::new(WindowConfig::default())
    }

    #[test]
    fn pure_compute_throughput_is_width() {
        let mut win = w();
        win.dispatch_compute(4000);
        let cycles = win.finish();
        // 4000 instructions at width 4 ≈ 1000 cycles (+ small pipeline tail).
        assert!(cycles >= 1000, "cycles = {cycles}");
        assert!(cycles <= 1020, "cycles = {cycles}");
        assert_eq!(win.retired(), 4000);
    }

    #[test]
    fn single_long_load_blocks_retirement() {
        let mut win = w();
        let d = win.prepare_dispatch(1);
        assert_eq!(d, 0);
        win.push(1, 200); // load completing at cycle 200
        win.dispatch_compute(63); // fill the window behind it
        // Window is now full; the next instruction waits for the load.
        let d2 = win.prepare_dispatch(1);
        assert!(d2 >= 200, "dispatch stalled until the load retires, got {d2}");
        win.push(1, d2 + 1);
        let total = win.finish();
        assert!(total >= 200);
    }

    #[test]
    fn independent_loads_overlap() {
        // Two misses of 200 cycles each, 10 compute instructions apart:
        // with a 64-entry window both dispatch long before either
        // completes, so the total is ~200, not ~400.
        let mut win = w();
        let d1 = win.prepare_dispatch(1);
        win.push(1, d1 + 200);
        win.dispatch_compute(10);
        let d2 = win.prepare_dispatch(1);
        assert!(d2 < 10, "second load dispatches early");
        win.push(1, d2 + 200);
        let total = win.finish();
        assert!(total < 250, "latencies overlapped: {total}");
    }

    #[test]
    fn dependent_loads_serialize_when_caller_chains_completion() {
        // The caller (simulator) models an address dependency by issuing
        // the second load at the first one's completion time.
        let mut win = w();
        let d1 = win.prepare_dispatch(1);
        let c1 = d1 + 200;
        win.push(1, c1);
        let d2 = win.prepare_dispatch(1);
        let issue2 = d2.max(c1);
        win.push(1, issue2 + 200);
        let total = win.finish();
        assert!(total >= 400, "chained loads serialize: {total}");
    }

    #[test]
    fn window_capacity_limits_mlp() {
        // Loads 64 instructions apart cannot overlap: the window fills
        // before the next load is reached.
        let mut win = w();
        let mut last_dispatch = 0;
        for _ in 0..4 {
            let d = win.prepare_dispatch(1);
            win.push(1, d + 200);
            win.dispatch_compute(63);
            last_dispatch = d;
        }
        // Each iteration occupies the full window; successive loads
        // dispatch roughly one load-latency apart.
        assert!(last_dispatch >= 3 * 200, "got {last_dispatch}");
    }

    #[test]
    fn retire_width_bounds_drain_rate() {
        let mut win = w();
        win.dispatch_compute(64);
        let total = win.finish();
        // 64 instructions retire at 4/cycle => at least 16 cycles.
        assert!(total >= 16);
        assert!(total <= 18);
    }

    #[test]
    fn now_advances_with_dispatch() {
        let mut win = w();
        assert_eq!(win.now(), 0);
        win.dispatch_compute(8);
        assert_eq!(win.now(), 2);
        win.dispatch_compute(1);
        assert_eq!(win.now(), 2); // partial cycle: 1 of 4 slots used
        win.dispatch_compute(3);
        assert_eq!(win.now(), 3);
    }

    #[test]
    fn occupancy_and_counts() {
        let mut win = w();
        win.dispatch_compute(10);
        assert_eq!(win.occupancy(), 10);
        assert_eq!(win.dispatched(), 10);
        assert_eq!(win.retired(), 0);
        win.finish();
        assert_eq!(win.retired(), 10);
        assert_eq!(win.occupancy(), 0);
    }

    #[test]
    fn finish_is_idempotent_on_empty() {
        let mut win = w();
        assert_eq!(win.finish(), 0);
        win.dispatch_compute(4);
        let t = win.finish();
        assert_eq!(win.finish(), t);
    }

    #[test]
    #[should_panic(expected = "push without prepare_dispatch")]
    fn push_requires_space() {
        let mut win = Window::new(WindowConfig {
            width: 4,
            capacity: 4,
        });
        win.push(4, 10);
        win.push(1, 10);
    }

    #[test]
    fn store_like_entries_do_not_block() {
        // Entries completing at dispatch+1 (stores via write buffer)
        // retire at full width.
        let mut win = w();
        for _ in 0..100 {
            let d = win.prepare_dispatch(1);
            win.push(1, d + 1);
        }
        let total = win.finish();
        assert!(total <= 30, "stores stream through: {total}");
    }
}

//! The packed, pre-analyzed trace tier.
//!
//! [`crate::Trace`] is an enum-per-event recording: flexible, but replay
//! pays enum dispatch and pointer-chasing for every event. This module
//! splits trace *generation* from *replay* with a struct-of-arrays
//! representation, [`PackedTrace`]:
//!
//! * one element per **memory operation** (load/store) across parallel
//!   hot arrays — address, reference id, hints, flags, dependency, and
//!   the coalesced compute batch preceding the op — so the replay loop
//!   streams dense arrays with no per-event enum dispatch;
//! * a sorted **side table** ([`PseudoEvent`]) for the rare pseudo
//!   events (`SetLoopBound`, `IndirectPrefetch`, and any compute batch
//!   that cannot fold into a memop's `pre_compute` slot), keyed by the
//!   memop index they precede;
//! * a cold array (access sizes) kept only for lossless round-trips —
//!   the timing model is block-granular and never reads sizes;
//! * a versioned, checksummed binary file format ([`PackedTrace::to_bytes`]
//!   / [`PackedTrace::from_bytes`]) with delta-encoded addresses, so
//!   packed traces persist across processes;
//! * a pre-analysis pass ([`PackedTrace::pre_analyze`]) computing
//!   per-access cache geometry metadata (set index, tag, region id) and
//!   resolved hint bits ahead of replay.
//!
//! The packed replay (`grp-core`) reproduces the materialized replay's
//! exact call sequence into the window and memory system, so results are
//! bit-identical; the ordering contract is spelled out on
//! [`PackedTrace::pack`].

use std::fmt;

use grp_mem::{Addr, CacheConfig};

use crate::hints::HintSet;
use crate::trace::{RefId, Trace, TraceEvent};

/// `dep` sentinel: the load's address depends on no earlier load.
pub const NO_DEP: u32 = u32::MAX;

/// Per-op flag bit: the op is a store (else a load).
pub const FLAG_STORE: u8 = 1 << 0;
/// Per-op flag bit: the op is a load with an address dependency.
pub const FLAG_DEP: u8 = 1 << 1;

/// File magic for the packed trace format.
pub const MAGIC: [u8; 4] = *b"GRPT";
/// Current packed-file format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header size in bytes: magic, version, five `u64` counters, payload
/// length, and the payload checksum.
const HEADER_BYTES: usize = 4 + 4 + 8 * 7;

/// A rare event carried in the side table, firing immediately before the
/// memop at index [`PseudoEvent::at_op`] (== `n_ops` for events after the
/// last memop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PseudoEvent {
    /// Index of the memop this event precedes (`n_ops` = trace tail).
    pub at_op: u32,
    /// What fires there.
    pub kind: PseudoKind,
}

/// The side-table event kinds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PseudoKind {
    /// A compute batch that could not fold into the following memop's
    /// `pre_compute` slot (another pseudo event or a second batch sits
    /// between it and the memop).
    Compute(u32),
    /// `SetLoopBound` pseudo-instruction (§3.3.2).
    SetLoopBound(u32),
    /// `IndirectPrefetch` pseudo-instruction (§3.3.3).
    IndirectPrefetch {
        /// `&a[0]` — base of the indexed array.
        base: Addr,
        /// `sizeof(a[0])`.
        elem_size: u32,
        /// `&b[i]` — address of the current index element.
        index_addr: Addr,
        /// Static site of the prefetch instruction.
        ref_id: RefId,
    },
}

/// Why a [`Trace`] cannot be packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackError {
    /// The trace's instruction counter disagrees with the sum over its
    /// events — an unfinished trace (pending compute tail not flushed).
    UnfinishedTrace,
    /// More memops than the `u32` op index can address.
    TooManyOps,
    /// More loads than the `u32` dependency index can address.
    TooManyLoads,
    /// A load names a dependency that is not an earlier load.
    BadDep,
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::UnfinishedTrace => {
                write!(f, "trace not finished: instruction counter desyncs from events")
            }
            PackError::TooManyOps => write!(f, "more than u32::MAX memory operations"),
            PackError::TooManyLoads => write!(f, "more than u32::MAX loads"),
            PackError::BadDep => write!(f, "load depends on a non-earlier load"),
        }
    }
}

impl std::error::Error for PackError {}

/// Why a packed-trace file failed to decode. Every failure mode is a
/// named variant — corrupt input can never panic or yield a silently
/// partial trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedFileError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is newer than this reader.
    UnsupportedVersion(u32),
    /// The file ends before the declared payload does.
    Truncated,
    /// The payload checksum does not match the header.
    ChecksumMismatch,
    /// Bytes remain after the declared payload.
    TrailingBytes,
    /// The payload decoded but violates a structural invariant.
    Malformed(&'static str),
}

impl fmt::Display for PackedFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackedFileError::BadMagic => write!(f, "not a packed trace (bad magic)"),
            PackedFileError::UnsupportedVersion(v) => {
                write!(f, "unsupported packed trace version {v}")
            }
            PackedFileError::Truncated => write!(f, "packed trace truncated"),
            PackedFileError::ChecksumMismatch => write!(f, "packed trace checksum mismatch"),
            PackedFileError::TrailingBytes => write!(f, "trailing bytes after packed trace"),
            PackedFileError::Malformed(what) => write!(f, "malformed packed trace: {what}"),
        }
    }
}

impl std::error::Error for PackedFileError {}

/// Packing statistics, for logging and cache-entry validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackStats {
    /// Memory operations in the hot arrays.
    pub memops: u64,
    /// Side-table entries.
    pub pseudo_events: u64,
    /// Memops whose preceding compute batch folded into `pre_compute`.
    pub folded_computes: u64,
}

/// A packed, replay-ready trace. See the module docs for the layout.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedTrace {
    addrs: Vec<u64>,
    ref_ids: Vec<u32>,
    hints: Vec<HintSet>,
    flags: Vec<u8>,
    deps: Vec<u32>,
    pre_compute: Vec<u32>,
    sizes: Vec<u8>,
    pseudos: Vec<PseudoEvent>,
    loads: u64,
    stores: u64,
    instructions: u64,
}

impl PackedTrace {
    /// Packs a finalized trace.
    ///
    /// Ordering contract: for each memop `i`, replay fires (1) the side
    /// table's events with `at_op == i`, in table order, then (2) a
    /// compute batch of `pre_compute[i]` instructions if nonzero, then
    /// (3) the memop itself; after the last memop, the `at_op == n_ops`
    /// tail fires. `pre_compute[i]` holds the gap's final event exactly
    /// when that event is a compute batch, so the reconstructed dispatch
    /// sequence is identical to walking [`Trace::events`].
    pub fn pack(trace: &Trace) -> Result<PackedTrace, PackError> {
        let events = trace.events();
        let summed: u64 = events.iter().map(|e| e.instruction_count()).sum();
        if summed != trace.instructions() {
            return Err(PackError::UnfinishedTrace);
        }
        let n_ops = events.iter().filter(|e| e.is_memory()).count();
        if n_ops >= u32::MAX as usize {
            return Err(PackError::TooManyOps);
        }
        if trace.loads() >= u32::MAX as u64 {
            return Err(PackError::TooManyLoads);
        }
        let mut pt = PackedTrace {
            addrs: Vec::with_capacity(n_ops),
            ref_ids: Vec::with_capacity(n_ops),
            hints: Vec::with_capacity(n_ops),
            flags: Vec::with_capacity(n_ops),
            deps: Vec::with_capacity(n_ops),
            pre_compute: Vec::with_capacity(n_ops),
            sizes: Vec::with_capacity(n_ops),
            pseudos: Vec::new(),
            loads: trace.loads(),
            stores: trace.stores(),
            instructions: trace.instructions(),
        };
        // Events since the last memop that have not been emitted yet.
        let mut gap: Vec<PseudoKind> = Vec::new();
        let mut load_seq = 0u32;
        for ev in events {
            match *ev {
                TraceEvent::Compute(n) => gap.push(PseudoKind::Compute(n)),
                TraceEvent::SetLoopBound(b) => gap.push(PseudoKind::SetLoopBound(b)),
                TraceEvent::IndirectPrefetch {
                    base,
                    elem_size,
                    index_addr,
                    ref_id,
                } => gap.push(PseudoKind::IndirectPrefetch {
                    base,
                    elem_size,
                    index_addr,
                    ref_id,
                }),
                TraceEvent::Load {
                    addr,
                    size,
                    ref_id,
                    hints,
                    dep,
                } => {
                    let i = pt.addrs.len() as u32;
                    pt.flush_gap(&mut gap, i, true);
                    let (dep, flag) = match dep {
                        Some(seq) => {
                            if seq >= load_seq as u64 {
                                return Err(PackError::BadDep);
                            }
                            (seq as u32, FLAG_DEP)
                        }
                        None => (NO_DEP, 0),
                    };
                    pt.addrs.push(addr.0);
                    pt.ref_ids.push(ref_id.0);
                    pt.hints.push(hints);
                    pt.flags.push(flag);
                    pt.deps.push(dep);
                    pt.sizes.push(size);
                    load_seq += 1;
                }
                TraceEvent::Store {
                    addr,
                    size,
                    ref_id,
                    hints,
                } => {
                    let i = pt.addrs.len() as u32;
                    pt.flush_gap(&mut gap, i, true);
                    pt.addrs.push(addr.0);
                    pt.ref_ids.push(ref_id.0);
                    pt.hints.push(hints);
                    pt.flags.push(FLAG_STORE);
                    pt.deps.push(NO_DEP);
                    pt.sizes.push(size);
                }
            }
        }
        let tail = pt.addrs.len() as u32;
        pt.flush_gap(&mut gap, tail, false);
        Ok(pt)
    }

    /// Emits the accumulated gap before memop `at`: the last event folds
    /// into `pre_compute` when it is a compute batch *and* a memop
    /// follows; everything else goes to the side table in order.
    fn flush_gap(&mut self, gap: &mut Vec<PseudoKind>, at: u32, memop_follows: bool) {
        let folded = if memop_follows {
            match gap.last() {
                Some(&PseudoKind::Compute(n)) => {
                    gap.pop();
                    n
                }
                _ => 0,
            }
        } else {
            0
        };
        for kind in gap.drain(..) {
            self.pseudos.push(PseudoEvent { at_op: at, kind });
        }
        if memop_follows {
            self.pre_compute.push(folded);
        }
    }

    /// Number of memory operations (hot-array length).
    pub fn n_ops(&self) -> usize {
        self.addrs.len()
    }

    /// Dynamic load count.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Dynamic store count.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Committed instruction count (including pseudo-instructions).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Byte addresses, one per memop.
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// Static reference sites, one per memop.
    pub fn ref_ids(&self) -> &[u32] {
        &self.ref_ids
    }

    /// Compiler hints, one per memop.
    pub fn hints(&self) -> &[HintSet] {
        &self.hints
    }

    /// Per-op flags ([`FLAG_STORE`], [`FLAG_DEP`]).
    pub fn flags(&self) -> &[u8] {
        &self.flags
    }

    /// Address-dependency load sequence numbers ([`NO_DEP`] = none).
    pub fn deps(&self) -> &[u32] {
        &self.deps
    }

    /// Compute batch dispatched immediately before each memop (0 = none).
    pub fn pre_compute(&self) -> &[u32] {
        &self.pre_compute
    }

    /// Access sizes in bytes (cold; replay is block-granular).
    pub fn sizes(&self) -> &[u8] {
        &self.sizes
    }

    /// The side table, sorted by `at_op` (stable within one op).
    pub fn pseudos(&self) -> &[PseudoEvent] {
        &self.pseudos
    }

    /// Total materialized event count this packed trace represents:
    /// every memop, every side-table entry, and every folded compute
    /// batch is one event of the original [`Trace`]. Equal to
    /// `trace.events().len()` for the trace this was packed from — the
    /// harness reports it so packed rows stay comparable to
    /// materialized ones.
    pub fn event_count(&self) -> u64 {
        let s = self.stats();
        s.memops + s.pseudo_events + s.folded_computes
    }

    /// Packing statistics.
    pub fn stats(&self) -> PackStats {
        PackStats {
            memops: self.addrs.len() as u64,
            pseudo_events: self.pseudos.len() as u64,
            folded_computes: self.pre_compute.iter().filter(|&&c| c != 0).count() as u64,
        }
    }

    /// Reconstructs the materialized trace. Lossless: the event stream,
    /// including compute-batch boundaries, dependency edges, hints, and
    /// pseudo-events, is identical to the packed original's.
    pub fn unpack(&self) -> Trace {
        let mut events =
            Vec::with_capacity(self.addrs.len() + self.pseudos.len() + self.addrs.len() / 2);
        let mut pi = 0usize;
        for i in 0..self.addrs.len() {
            while pi < self.pseudos.len() && self.pseudos[pi].at_op as usize == i {
                events.push(Self::pseudo_to_event(self.pseudos[pi].kind));
                pi += 1;
            }
            if self.pre_compute[i] != 0 {
                events.push(TraceEvent::Compute(self.pre_compute[i]));
            }
            let flags = self.flags[i];
            if flags & FLAG_STORE != 0 {
                events.push(TraceEvent::Store {
                    addr: Addr(self.addrs[i]),
                    size: self.sizes[i],
                    ref_id: RefId(self.ref_ids[i]),
                    hints: self.hints[i],
                });
            } else {
                events.push(TraceEvent::Load {
                    addr: Addr(self.addrs[i]),
                    size: self.sizes[i],
                    ref_id: RefId(self.ref_ids[i]),
                    hints: self.hints[i],
                    dep: (flags & FLAG_DEP != 0).then(|| self.deps[i] as u64),
                });
            }
        }
        while pi < self.pseudos.len() {
            events.push(Self::pseudo_to_event(self.pseudos[pi].kind));
            pi += 1;
        }
        Trace::from_raw_parts(events, self.loads, self.stores, self.instructions)
    }

    fn pseudo_to_event(kind: PseudoKind) -> TraceEvent {
        match kind {
            PseudoKind::Compute(n) => TraceEvent::Compute(n),
            PseudoKind::SetLoopBound(b) => TraceEvent::SetLoopBound(b),
            PseudoKind::IndirectPrefetch {
                base,
                elem_size,
                index_addr,
                ref_id,
            } => TraceEvent::IndirectPrefetch {
                base,
                elem_size,
                index_addr,
                ref_id,
            },
        }
    }

    /// Runs the pre-analysis pass against the given cache geometries.
    pub fn pre_analyze(&self, l1: &CacheConfig, l2: &CacheConfig) -> PreAnalysis {
        PreAnalysis::compute(self, l1, l2)
    }

    /// Serializes to the versioned, checksummed binary format (see
    /// DESIGN.md §13 for the layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.addrs.len() * 6);
        // Addresses: zigzag-varint cache-block deltas + in-block offset.
        let mut prev_block = 0u64;
        for &a in &self.addrs {
            let block = a >> 6;
            put_varint(&mut payload, zigzag(block.wrapping_sub(prev_block) as i64));
            payload.push((a & 63) as u8);
            prev_block = block;
        }
        for &r in &self.ref_ids {
            put_varint(&mut payload, r as u64);
        }
        for &h in &self.hints {
            payload.extend_from_slice(&h.to_bits().to_le_bytes());
        }
        payload.extend_from_slice(&self.flags);
        // Dependencies: backward distance (current load seq − dep), only
        // for ops with FLAG_DEP.
        let mut seq = 0u64;
        for i in 0..self.addrs.len() {
            if self.flags[i] & FLAG_STORE != 0 {
                continue;
            }
            if self.flags[i] & FLAG_DEP != 0 {
                put_varint(&mut payload, seq - self.deps[i] as u64);
            }
            seq += 1;
        }
        for &c in &self.pre_compute {
            put_varint(&mut payload, c as u64);
        }
        payload.extend_from_slice(&self.sizes);
        let mut prev_at = 0u64;
        for p in &self.pseudos {
            put_varint(&mut payload, p.at_op as u64 - prev_at);
            prev_at = p.at_op as u64;
            match p.kind {
                PseudoKind::Compute(n) => {
                    payload.push(0);
                    put_varint(&mut payload, n as u64);
                }
                PseudoKind::SetLoopBound(b) => {
                    payload.push(1);
                    put_varint(&mut payload, b as u64);
                }
                PseudoKind::IndirectPrefetch {
                    base,
                    elem_size,
                    index_addr,
                    ref_id,
                } => {
                    payload.push(2);
                    put_varint(&mut payload, base.0);
                    put_varint(&mut payload, elem_size as u64);
                    put_varint(&mut payload, index_addr.0);
                    put_varint(&mut payload, ref_id.0 as u64);
                }
            }
        }

        let mut out = Vec::with_capacity(HEADER_BYTES + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.addrs.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.loads.to_le_bytes());
        out.extend_from_slice(&self.stores.to_le_bytes());
        out.extend_from_slice(&self.instructions.to_le_bytes());
        out.extend_from_slice(&(self.pseudos.len() as u64).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes the binary format. Every corrupt input maps to a named
    /// [`PackedFileError`]; success implies the payload checksum matched
    /// and all structural invariants hold.
    pub fn from_bytes(bytes: &[u8]) -> Result<PackedTrace, PackedFileError> {
        if bytes.len() < 4 {
            return Err(PackedFileError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(PackedFileError::BadMagic);
        }
        if bytes.len() < HEADER_BYTES {
            return Err(PackedFileError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(PackedFileError::UnsupportedVersion(version));
        }
        let word = |i: usize| u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap());
        let n_ops = word(0);
        let loads = word(1);
        let stores = word(2);
        let instructions = word(3);
        let n_pseudos = word(4);
        let payload_len = word(5);
        let checksum = word(6);
        if loads + stores != n_ops {
            return Err(PackedFileError::Malformed("load/store counts vs ops"));
        }
        if n_ops >= u32::MAX as u64 || loads >= u32::MAX as u64 {
            return Err(PackedFileError::Malformed("op count overflows u32 index"));
        }
        let rest = &bytes[HEADER_BYTES..];
        if (rest.len() as u64) < payload_len {
            return Err(PackedFileError::Truncated);
        }
        if (rest.len() as u64) > payload_len {
            return Err(PackedFileError::TrailingBytes);
        }
        if fnv1a64(rest) != checksum {
            return Err(PackedFileError::ChecksumMismatch);
        }
        // Guard the allocations below against absurd declared counts: no
        // section packs an element into less than one payload byte.
        if n_ops > payload_len || n_pseudos > payload_len {
            return Err(PackedFileError::Malformed("counts exceed payload size"));
        }
        let n = n_ops as usize;
        let mut cur = Cursor { buf: rest, pos: 0 };
        let mut pt = PackedTrace {
            addrs: Vec::with_capacity(n),
            ref_ids: Vec::with_capacity(n),
            hints: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            deps: Vec::with_capacity(n),
            pre_compute: Vec::with_capacity(n),
            sizes: Vec::with_capacity(n),
            pseudos: Vec::with_capacity(n_pseudos as usize),
            loads,
            stores,
            instructions,
        };
        let mut prev_block = 0u64;
        for _ in 0..n {
            let delta = unzigzag(cur.varint()?);
            let block = prev_block.wrapping_add(delta as u64);
            let off = cur.byte()?;
            if off >= 64 {
                return Err(PackedFileError::Malformed("block offset out of range"));
            }
            pt.addrs.push((block << 6) | off as u64);
            prev_block = block;
        }
        for _ in 0..n {
            let r = cur.varint()?;
            if r > u32::MAX as u64 {
                return Err(PackedFileError::Malformed("ref id out of range"));
            }
            pt.ref_ids.push(r as u32);
        }
        for _ in 0..n {
            let lo = cur.byte()?;
            let hi = cur.byte()?;
            let h = HintSet::from_bits(u16::from_le_bytes([lo, hi]))
                .ok_or(PackedFileError::Malformed("invalid hint bits"))?;
            pt.hints.push(h);
        }
        let mut seen_loads = 0u64;
        let mut seen_stores = 0u64;
        for _ in 0..n {
            let f = cur.byte()?;
            if f & !(FLAG_STORE | FLAG_DEP) != 0 {
                return Err(PackedFileError::Malformed("unknown op flag"));
            }
            if f & FLAG_STORE != 0 {
                if f & FLAG_DEP != 0 {
                    return Err(PackedFileError::Malformed("store with dependency flag"));
                }
                seen_stores += 1;
            } else {
                seen_loads += 1;
            }
            pt.flags.push(f);
        }
        if seen_loads != loads || seen_stores != stores {
            return Err(PackedFileError::Malformed("flag stream vs header counts"));
        }
        let mut seq = 0u64;
        for i in 0..n {
            if pt.flags[i] & FLAG_STORE != 0 {
                pt.deps.push(NO_DEP);
                continue;
            }
            if pt.flags[i] & FLAG_DEP != 0 {
                let dist = cur.varint()?;
                if dist == 0 || dist > seq {
                    return Err(PackedFileError::Malformed("dependency distance"));
                }
                pt.deps.push((seq - dist) as u32);
            } else {
                pt.deps.push(NO_DEP);
            }
            seq += 1;
        }
        for _ in 0..n {
            let c = cur.varint()?;
            if c > u32::MAX as u64 {
                return Err(PackedFileError::Malformed("compute batch out of range"));
            }
            pt.pre_compute.push(c as u32);
        }
        for _ in 0..n {
            pt.sizes.push(cur.byte()?);
        }
        let mut at = 0u64;
        for _ in 0..n_pseudos {
            at += cur.varint()?;
            if at > n_ops {
                return Err(PackedFileError::Malformed("pseudo event past trace end"));
            }
            let kind = match cur.byte()? {
                0 => {
                    let v = cur.varint()?;
                    if v > u32::MAX as u64 {
                        return Err(PackedFileError::Malformed("compute batch out of range"));
                    }
                    PseudoKind::Compute(v as u32)
                }
                1 => {
                    let v = cur.varint()?;
                    if v > u32::MAX as u64 {
                        return Err(PackedFileError::Malformed("loop bound out of range"));
                    }
                    PseudoKind::SetLoopBound(v as u32)
                }
                2 => {
                    let base = cur.varint()?;
                    let elem_size = cur.varint()?;
                    let index_addr = cur.varint()?;
                    let ref_id = cur.varint()?;
                    if elem_size > u32::MAX as u64 || ref_id > u32::MAX as u64 {
                        return Err(PackedFileError::Malformed("indirect prefetch field"));
                    }
                    PseudoKind::IndirectPrefetch {
                        base: Addr(base),
                        elem_size: elem_size as u32,
                        index_addr: Addr(index_addr),
                        ref_id: RefId(ref_id as u32),
                    }
                }
                _ => return Err(PackedFileError::Malformed("unknown pseudo kind")),
            };
            pt.pseudos.push(PseudoEvent {
                at_op: at as u32,
                kind,
            });
        }
        if cur.pos != rest.len() {
            return Err(PackedFileError::TrailingBytes);
        }
        // Cross-check the instruction counter against the decoded streams
        // — the same sum identity `Trace` maintains.
        let summed: u64 = pt.pre_compute.iter().map(|&c| c as u64).sum::<u64>()
            + pt.addrs.len() as u64
            + pt
                .pseudos
                .iter()
                .map(|p| match p.kind {
                    PseudoKind::Compute(c) => c as u64,
                    _ => 1,
                })
                .sum::<u64>();
        if summed != instructions {
            return Err(PackedFileError::Malformed("instruction counter desync"));
        }
        Ok(pt)
    }
}

/// Per-access metadata precomputed ahead of replay: cache geometry
/// projections of every memop address plus resolved hint bits. The
/// arrays parallel the hot arrays of the [`PackedTrace`] they were
/// derived from.
#[derive(Debug, Clone, Default)]
pub struct PreAnalysis {
    /// L1 set index per memop.
    pub l1_set: Vec<u32>,
    /// L1 tag per memop.
    pub l1_tag: Vec<u64>,
    /// L2 set index per memop.
    pub l2_set: Vec<u32>,
    /// L2 tag per memop.
    pub l2_tag: Vec<u64>,
    /// 4 KB region id per memop.
    pub region: Vec<u64>,
    /// Resolved pointer-chase depth seeded by each memop's hints.
    pub pointer_level: Vec<u8>,
    /// Memops carrying the `spatial` hint.
    pub spatial_refs: u64,
}

impl PreAnalysis {
    fn compute(pt: &PackedTrace, l1: &CacheConfig, l2: &CacheConfig) -> PreAnalysis {
        let n = pt.n_ops();
        let (l1_sets, l2_sets) = (l1.sets() as u64, l2.sets() as u64);
        let mut pa = PreAnalysis {
            l1_set: Vec::with_capacity(n),
            l1_tag: Vec::with_capacity(n),
            l2_set: Vec::with_capacity(n),
            l2_tag: Vec::with_capacity(n),
            region: Vec::with_capacity(n),
            pointer_level: Vec::with_capacity(n),
            spatial_refs: 0,
        };
        for i in 0..n {
            let block = pt.addrs[i] >> 6;
            pa.l1_set.push((block & (l1_sets - 1)) as u32);
            pa.l1_tag.push(block >> l1_sets.trailing_zeros());
            pa.l2_set.push((block & (l2_sets - 1)) as u32);
            pa.l2_tag.push(block >> l2_sets.trailing_zeros());
            pa.region.push(pt.addrs[i] >> 12);
            pa.pointer_level.push(pt.hints[i].pointer_level());
            if pt.hints[i].spatial() {
                pa.spatial_refs += 1;
            }
        }
        pa
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn byte(&mut self) -> Result<u8, PackedFileError> {
        let b = *self.buf.get(self.pos).ok_or(PackedFileError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64, PackedFileError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift == 63 && b > 1 {
                return Err(PackedFileError::Malformed("varint overflows u64"));
            }
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(PackedFileError::Malformed("varint too long"));
            }
        }
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit, the payload checksum (in-tree; the workspace is
/// hermetic, no external hash crates).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic xorshift so tests stay hermetic (no rand crate).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_hints(rng: &mut Rng) -> HintSet {
        let mut h = HintSet::none();
        if rng.below(2) == 0 {
            h = h.with_spatial();
        }
        if rng.below(4) == 0 {
            h = h.with_pointer();
        }
        if rng.below(8) == 0 {
            h = h.with_recursive();
        }
        if rng.below(3) == 0 {
            h = h.with_size_coeff(rng.below(7) as u8);
        }
        h
    }

    /// Builds a randomized trace exercising every event kind, dependency
    /// edges, and adjacent pseudo-events.
    fn random_trace(seed: u64, n: usize) -> Trace {
        let mut rng = Rng(seed | 1);
        let mut t = Trace::new();
        let mut load_seqs: Vec<u64> = Vec::new();
        for _ in 0..n {
            match rng.below(10) {
                0..=4 => {
                    let dep = if !load_seqs.is_empty() && rng.below(3) == 0 {
                        Some(load_seqs[rng.below(load_seqs.len() as u64) as usize])
                    } else {
                        None
                    };
                    let h = random_hints(&mut rng);
                    let s = t.push_load(
                        Addr(rng.below(1 << 40)),
                        1 << rng.below(4),
                        RefId(rng.below(100) as u32),
                        h,
                        dep,
                    );
                    load_seqs.push(s);
                }
                5..=6 => t.push_store(
                    Addr(rng.below(1 << 40)),
                    1 << rng.below(4),
                    RefId(rng.below(100) as u32),
                    random_hints(&mut rng),
                ),
                7 => t.push_compute(rng.below(1000) as u32 + 1),
                8 => t.push_set_loop_bound(rng.below(10_000) as u32),
                _ => t.push_indirect_prefetch(
                    Addr(rng.below(1 << 40)),
                    (1 << rng.below(4)) as u32,
                    Addr(rng.below(1 << 40)),
                    RefId(rng.below(100) as u32),
                ),
            }
        }
        t.finish();
        t
    }

    fn assert_traces_identical(a: &Trace, b: &Trace) {
        assert_eq!(a.events(), b.events());
        assert_eq!(a.loads(), b.loads());
        assert_eq!(a.stores(), b.stores());
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn round_trip_property_random_traces() {
        // Pack → unpack and pack → bytes → decode → unpack must both be
        // bit-identical to the original trace across many random shapes,
        // including dep edges, hints, and pseudo-events.
        for seed in 1..=20u64 {
            let t = random_trace(seed * 0x9e37_79b9, 400);
            let pt = PackedTrace::pack(&t).expect("pack");
            assert_traces_identical(&t, &pt.unpack());
            let bytes = pt.to_bytes();
            let decoded = PackedTrace::from_bytes(&bytes).expect("decode");
            assert_traces_identical(&t, &decoded.unpack());
        }
    }

    #[test]
    fn round_trip_edge_shapes() {
        // Empty trace.
        let mut t = Trace::new();
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        assert_traces_identical(&t, &pt.unpack());
        assert_traces_identical(
            &t,
            &PackedTrace::from_bytes(&pt.to_bytes()).unwrap().unpack(),
        );

        // Pure pseudo-events, no memops: everything lands in the tail.
        let mut t = Trace::new();
        t.push_compute(5);
        t.push_set_loop_bound(9);
        t.push_compute(3);
        t.push_indirect_prefetch(Addr(0x1000), 4, Addr(0x2000), RefId(7));
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        assert_eq!(pt.n_ops(), 0);
        assert_eq!(pt.pseudos().len(), 4);
        assert_traces_identical(&t, &pt.unpack());
        assert_traces_identical(
            &t,
            &PackedTrace::from_bytes(&pt.to_bytes()).unwrap().unpack(),
        );

        // Compute overflow chain: two adjacent Compute events (the
        // push_compute boundary flush) — the first must survive as a
        // side-table entry, the second folds into pre_compute.
        let mut t = Trace::new();
        t.push_compute(u32::MAX - 1);
        t.push_compute(10);
        t.push_load(Addr(0x40), 8, RefId(0), HintSet::none(), None);
        t.finish();
        assert_eq!(t.events().len(), 3, "boundary flush splits the batch");
        let pt = PackedTrace::pack(&t).unwrap();
        assert_eq!(pt.pseudos().len(), 1);
        assert!(matches!(pt.pseudos()[0].kind, PseudoKind::Compute(_)));
        assert_eq!(pt.pre_compute()[0], 9, "10 minus the 1 that fit before the flush");
        assert_traces_identical(&t, &pt.unpack());
        assert_traces_identical(
            &t,
            &PackedTrace::from_bytes(&pt.to_bytes()).unwrap().unpack(),
        );
    }

    #[test]
    fn fold_order_preserves_event_sequence() {
        // Gap [Compute, SetLoopBound]: the compute precedes the pseudo,
        // so it must NOT fold into pre_compute (which fires after the
        // side table).
        let mut t = Trace::new();
        t.push_compute(5);
        t.push_set_loop_bound(100);
        t.push_load(Addr(0x40), 8, RefId(0), HintSet::none(), None);
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        assert_eq!(pt.pseudos().len(), 2);
        assert_eq!(pt.pseudos()[0].kind, PseudoKind::Compute(5));
        assert_eq!(pt.pseudos()[1].kind, PseudoKind::SetLoopBound(100));
        assert_eq!(pt.pre_compute()[0], 0);
        assert_traces_identical(&t, &pt.unpack());

        // Gap [SetLoopBound, Compute]: the compute is last — folds.
        let mut t = Trace::new();
        t.push_set_loop_bound(100);
        t.push_compute(5);
        t.push_load(Addr(0x40), 8, RefId(0), HintSet::none(), None);
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        assert_eq!(pt.pseudos().len(), 1);
        assert_eq!(pt.pre_compute()[0], 5);
        assert_traces_identical(&t, &pt.unpack());
    }

    #[test]
    fn pack_rejects_bad_deps() {
        let mut t = Trace::new();
        // Forward (self) dependency: seq 0 depending on seq 0.
        t.push_load(Addr(0x40), 8, RefId(0), HintSet::none(), Some(0));
        t.finish();
        assert_eq!(PackedTrace::pack(&t), Err(PackError::BadDep));
    }

    #[test]
    fn corrupted_header_yields_named_errors() {
        let mut t = Trace::new();
        t.push_load(Addr(0x1234), 8, RefId(3), HintSet::none().with_spatial(), None);
        t.push_compute(7);
        t.finish();
        let good = PackedTrace::pack(&t).unwrap().to_bytes();

        // Bad magic.
        let mut b = good.clone();
        b[0] = b'X';
        assert_eq!(PackedTrace::from_bytes(&b), Err(PackedFileError::BadMagic));

        // Future version.
        let mut b = good.clone();
        b[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            PackedTrace::from_bytes(&b),
            Err(PackedFileError::UnsupportedVersion(99))
        );

        // Inconsistent counters.
        let mut b = good.clone();
        b[16..24].copy_from_slice(&5u64.to_le_bytes()); // loads = 5
        assert!(matches!(
            PackedTrace::from_bytes(&b),
            Err(PackedFileError::Malformed(_))
        ));

        // Flipped payload byte.
        let mut b = good.clone();
        *b.last_mut().unwrap() ^= 0x40;
        assert_eq!(
            PackedTrace::from_bytes(&b),
            Err(PackedFileError::ChecksumMismatch)
        );

        // Trailing garbage.
        let mut b = good.clone();
        b.push(0);
        assert_eq!(
            PackedTrace::from_bytes(&b),
            Err(PackedFileError::TrailingBytes)
        );

        // Empty and sub-header inputs.
        assert_eq!(PackedTrace::from_bytes(&[]), Err(PackedFileError::Truncated));
        assert_eq!(
            PackedTrace::from_bytes(&good[..3]),
            Err(PackedFileError::Truncated)
        );
    }

    #[test]
    fn truncated_files_yield_truncated_not_panic() {
        let t = random_trace(42, 300);
        let good = PackedTrace::pack(&t).unwrap().to_bytes();
        // Every prefix must decode to a named error — never panic, never
        // a silently partial trace.
        for len in 0..good.len() {
            let err = PackedTrace::from_bytes(&good[..len])
                .expect_err("prefix must not decode as a full trace");
            assert!(
                matches!(
                    err,
                    PackedFileError::Truncated
                        | PackedFileError::BadMagic
                        | PackedFileError::ChecksumMismatch
                        | PackedFileError::Malformed(_)
                ),
                "len {len}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn pre_analysis_matches_cache_geometry() {
        use grp_mem::{BlockAddr, Cache};
        let t = random_trace(7, 500);
        let pt = PackedTrace::pack(&t).unwrap();
        let (l1c, l2c) = (CacheConfig::l1_spec(), CacheConfig::l2_spec());
        let pa = pt.pre_analyze(&l1c, &l2c);
        let (l1, l2) = (Cache::new(l1c), Cache::new(l2c));
        assert_eq!(pa.l1_set.len(), pt.n_ops());
        let mut spatial = 0u64;
        for i in 0..pt.n_ops() {
            let b = BlockAddr(pt.addrs()[i] >> 6);
            assert_eq!(pa.l1_set[i] as usize, l1.set_of(b));
            assert_eq!(pa.l1_tag[i], l1.tag_of(b));
            assert_eq!(pa.l2_set[i] as usize, l2.set_of(b));
            assert_eq!(pa.l2_tag[i], l2.tag_of(b));
            assert_eq!(pa.region[i], pt.addrs()[i] >> 12);
            assert_eq!(pa.pointer_level[i], pt.hints()[i].pointer_level());
            if pt.hints()[i].spatial() {
                spatial += 1;
            }
        }
        assert_eq!(pa.spatial_refs, spatial);
    }

    #[test]
    fn stats_count_folds_and_pseudos() {
        let mut t = Trace::new();
        t.push_compute(4);
        t.push_load(Addr(0x40), 8, RefId(0), HintSet::none(), None);
        t.push_store(Addr(0x80), 8, RefId(1), HintSet::none());
        t.push_set_loop_bound(10);
        t.push_load(Addr(0xc0), 8, RefId(2), HintSet::none(), None);
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        let s = pt.stats();
        assert_eq!(s.memops, 3);
        assert_eq!(s.pseudo_events, 1);
        assert_eq!(s.folded_computes, 1);
    }

    #[test]
    fn delta_encoding_is_compact_for_streams() {
        // A sequential stream should pack to a few bytes per op, far
        // smaller than the 40-byte in-memory TraceEvent.
        let mut t = Trace::new();
        for i in 0..10_000u64 {
            t.push_load(Addr(0x10_0000 + i * 8), 8, RefId(0), HintSet::none(), None);
            t.push_compute(4);
        }
        t.finish();
        let pt = PackedTrace::pack(&t).unwrap();
        let bytes = pt.to_bytes();
        assert!(
            bytes.len() < 10_000 * 10,
            "stream packs compactly: {} bytes for 10k ops",
            bytes.len()
        );
    }
}

//! Trace-driven out-of-order core model for the GRP simulator.
//!
//! The paper evaluates prefetching on a SimpleScalar `sim-outorder` core:
//! "a 1.6 GHz, 4-way issue, 64-entry RUU (reorder buffer), out-of-order
//! core" (§5.1). This crate models the parts of that core that decide how
//! much memory latency is tolerated:
//!
//! * [`Window`] — a 64-entry instruction window dispatching and retiring
//!   4 instructions per cycle in order, so a load miss blocks retirement
//!   once the window fills behind it, and independent misses overlap
//!   (memory-level parallelism) up to the window and MSHR limits.
//! * [`trace`] — the dynamic instruction trace the interpreter produces
//!   and the simulator replays, including address-dependency edges so
//!   dependent loads (pointer chasing) serialize exactly as they do in
//!   hardware.
//! * [`hints`] — the compiler-to-hardware hint channel: the paper encodes
//!   hints "with unused Alpha VAX-format floating point load opcodes"
//!   (§3.3); here they are an explicit [`hints::HintSet`] carried by trace
//!   loads, plus `SetLoopBound`/`IndirectPrefetch` pseudo-instructions.

#![deny(missing_docs)]

pub mod hints;
pub mod packed;
pub mod stats;
pub mod trace;
pub mod window;

pub use hints::HintSet;
pub use packed::{PackError, PackedFileError, PackedTrace, PreAnalysis};
pub use stats::TraceStats;
pub use trace::{RefId, Trace, TraceEvent};
pub use window::{Window, WindowConfig};

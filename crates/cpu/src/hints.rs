//! The compiler → hardware hint channel.
//!
//! Table 2 of the paper defines five hints attached to memory references:
//!
//! | hint              | meaning                                                        |
//! |-------------------|----------------------------------------------------------------|
//! | `spatial`         | the reference is likely to exhibit spatial locality            |
//! | `size`            | with a loop bound, how many lines to prefetch (variable region)|
//! | `indirect`        | the program indexes one array with another (`a[b[i]]`)         |
//! | `pointer`         | the referenced structure contains pointers the program follows |
//! | `recursive`       | the program recursively follows those pointers                 |
//!
//! The Alpha implementation packs these into unused FP-load opcodes; here
//! they are a [`HintSet`] carried on trace loads/stores. The `indirect`
//! hint is realized as a separate pseudo-instruction
//! ([`crate::trace::TraceEvent::IndirectPrefetch`]), matching §3.3.3
//! ("the information is encoded as a separate instruction, not a hint on
//! an existing load").

use std::fmt;

/// Sentinel coefficient meaning "use the fixed 4 KB region size"
/// (paper §4.4: "we reserve the encoding value 7 for fixed-size region
/// prefetching").
pub const COEFF_FIXED: u8 = 7;

/// A set of compiler hints attached to one static memory reference.
///
/// The size coefficient is a 3-bit exponent `x` such that `2^x` is closest
/// to the reference's byte stride per loop iteration (`b * e` in §4.4);
/// together with the runtime loop bound it determines the prefetch region
/// size under GRP/Var.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HintSet {
    flags: u8,
    coeff: u8,
}

const SPATIAL: u8 = 1 << 0;
const POINTER: u8 = 1 << 1;
const RECURSIVE: u8 = 1 << 2;

impl Default for HintSet {
    fn default() -> Self {
        Self::none()
    }
}

impl HintSet {
    /// No hints: an unmarked reference. GRP will not prefetch on its
    /// misses; SRP (hint-blind) still will.
    pub const fn none() -> Self {
        Self {
            flags: 0,
            coeff: COEFF_FIXED,
        }
    }

    /// Returns the set with the `spatial` hint added.
    pub const fn with_spatial(mut self) -> Self {
        self.flags |= SPATIAL;
        self
    }

    /// Returns the set with the `pointer` hint added.
    pub const fn with_pointer(mut self) -> Self {
        self.flags |= POINTER;
        self
    }

    /// Returns the set with the `recursive pointer` hint added (implies
    /// pointer-style scanning with a deeper chase counter).
    pub const fn with_recursive(mut self) -> Self {
        self.flags |= RECURSIVE;
        self
    }

    /// Returns the set with a 3-bit size coefficient (`coeff < 7`).
    ///
    /// # Panics
    ///
    /// Panics if `coeff >= 7`; 7 is reserved for fixed-size prefetching.
    pub fn with_size_coeff(mut self, coeff: u8) -> Self {
        assert!(coeff < COEFF_FIXED, "coefficient 7 is reserved for fixed-size");
        self.coeff = coeff;
        self
    }

    /// True when the reference carries the `spatial` hint.
    pub const fn spatial(self) -> bool {
        self.flags & SPATIAL != 0
    }

    /// True when the reference carries the `pointer` hint.
    pub const fn pointer(self) -> bool {
        self.flags & POINTER != 0
    }

    /// True when the reference carries the `recursive pointer` hint.
    pub const fn recursive(self) -> bool {
        self.flags & RECURSIVE != 0
    }

    /// The variable-region size coefficient, or `None` for fixed-size.
    pub const fn size_coeff(self) -> Option<u8> {
        if self.coeff == COEFF_FIXED {
            None
        } else {
            Some(self.coeff)
        }
    }

    /// True when no hint of any kind is present.
    pub const fn is_empty(self) -> bool {
        self.flags == 0 && self.coeff == COEFF_FIXED
    }

    /// The packed wire encoding: flag bits in the low byte, the raw size
    /// coefficient in the high byte. Inverse of [`HintSet::from_bits`].
    pub const fn to_bits(self) -> u16 {
        ((self.coeff as u16) << 8) | self.flags as u16
    }

    /// Decodes [`HintSet::to_bits`]. Returns `None` for encodings no
    /// builder sequence can produce (unknown flag bits or a coefficient
    /// above the reserved fixed-size sentinel), so corrupt packed traces
    /// surface as decode errors instead of impossible hint sets.
    pub const fn from_bits(bits: u16) -> Option<HintSet> {
        let flags = (bits & 0xff) as u8;
        let coeff = (bits >> 8) as u8;
        if flags & !(SPATIAL | POINTER | RECURSIVE) != 0 || coeff > COEFF_FIXED {
            return None;
        }
        Some(HintSet { flags, coeff })
    }

    /// The pointer-chase depth this reference seeds in the prefetch
    /// engine's 3-bit counter: 6 for `recursive`, 1 for `pointer`, else 0
    /// (§3.3.1; depth is configurable at the engine, this is the default).
    pub const fn pointer_level(self) -> u8 {
        if self.recursive() {
            6
        } else if self.pointer() {
            1
        } else {
            0
        }
    }
}

impl fmt::Debug for HintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.spatial() {
            parts.push("spatial");
        }
        if self.pointer() {
            parts.push("pointer");
        }
        if self.recursive() {
            parts.push("recursive");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        write!(f, "HintSet({}", parts.join("|"))?;
        if let Some(c) = self.size_coeff() {
            write!(f, ", coeff={c}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for HintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty() {
        let h = HintSet::default();
        assert!(h.is_empty());
        assert!(!h.spatial());
        assert!(!h.pointer());
        assert!(!h.recursive());
        assert_eq!(h.size_coeff(), None);
        assert_eq!(h.pointer_level(), 0);
    }

    #[test]
    fn builders_compose() {
        let h = HintSet::none().with_spatial().with_pointer();
        assert!(h.spatial());
        assert!(h.pointer());
        assert!(!h.recursive());
        assert_eq!(h.pointer_level(), 1);
    }

    #[test]
    fn recursive_implies_deeper_chase() {
        let h = HintSet::none().with_recursive();
        assert_eq!(h.pointer_level(), 6);
    }

    #[test]
    fn size_coeff_round_trips() {
        let h = HintSet::none().with_spatial().with_size_coeff(3);
        assert_eq!(h.size_coeff(), Some(3));
        assert!(!h.is_empty());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn coeff_seven_rejected() {
        let _ = HintSet::none().with_size_coeff(7);
    }

    #[test]
    fn debug_format_is_informative() {
        let h = HintSet::none().with_spatial().with_size_coeff(2);
        let s = format!("{h:?}");
        assert!(s.contains("spatial"));
        assert!(s.contains("coeff=2"));
        assert_eq!(format!("{:?}", HintSet::none()), "HintSet(none)");
    }
}

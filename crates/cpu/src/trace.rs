//! The dynamic instruction trace.
//!
//! The IR interpreter (crate `grp-ir`) executes a kernel and records a
//! [`Trace`]; the simulator (crate `grp-core`) replays it through the
//! timing model. A trace is the moral equivalent of the paper's
//! hint-annotated Alpha binary running under `sim-outorder`: loads and
//! stores carry their static reference id (so hints and per-site miss
//! attribution work) and an *address dependency* edge (so dependent loads
//! — pointer chasing — serialize in the timing model).

use grp_mem::Addr;

use crate::hints::HintSet;

/// Identifier of a *static* memory reference site in the program. Hints
/// are attached per `RefId`, mirroring per-instruction hints in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RefId(pub u32);

/// Sequence number of a dynamic load within a trace, used as the target
/// of address-dependency edges.
pub type LoadSeq = u64;

/// One dynamic event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// `n` non-memory instructions (ALU/branch/FP work between references).
    Compute(u32),
    /// A load of `size` bytes. `dep` names the earlier dynamic load whose
    /// result this load's *address* depends on, if any.
    Load {
        /// Byte address accessed.
        addr: Addr,
        /// Access size in bytes (1..=8).
        size: u8,
        /// Static reference site.
        ref_id: RefId,
        /// Compiler hints for the site (attached at trace-write time).
        hints: HintSet,
        /// Address dependency on an earlier load's value.
        dep: Option<LoadSeq>,
    },
    /// A store of `size` bytes. Stores retire through a write buffer and
    /// do not block the window, but they access the cache (write-allocate)
    /// and consume bandwidth.
    Store {
        /// Byte address accessed.
        addr: Addr,
        /// Access size in bytes (1..=8).
        size: u8,
        /// Static reference site.
        ref_id: RefId,
        /// Compiler hints for the site.
        hints: HintSet,
    },
    /// The special instruction conveying a loop's upper bound to the
    /// engine for variable-size region prefetching (§3.3.2).
    SetLoopBound(u32),
    /// The explicit indirect prefetch instruction (§3.3.3): conveys the
    /// indexed array's base address, its element size, and the address of
    /// the index element `&b[i]`.
    IndirectPrefetch {
        /// `&a[0]` — base of the indexed array.
        base: Addr,
        /// `sizeof(a[0])`.
        elem_size: u32,
        /// `&b[i]` — address of the current index element.
        index_addr: Addr,
        /// Static site of the prefetch instruction.
        ref_id: RefId,
    },
}

impl TraceEvent {
    /// Number of instructions this event contributes to the committed
    /// instruction count.
    pub fn instruction_count(&self) -> u64 {
        match self {
            TraceEvent::Compute(n) => *n as u64,
            _ => 1,
        }
    }

    /// True for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, TraceEvent::Load { .. } | TraceEvent::Store { .. })
    }
}

/// A recorded dynamic execution.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    loads: u64,
    stores: u64,
    instructions: u64,
    pending_compute: u32,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `n` compute instructions, coalescing adjacent batches.
    ///
    /// A coalesced run that would overflow the `u32` batch counter is
    /// flushed as a full `Compute(u32::MAX)` event first, so
    /// [`Trace::instructions`] always equals the sum of
    /// [`TraceEvent::instruction_count`] over [`Trace::events`] (it used
    /// to saturate the pending batch while still crediting the full `n`,
    /// silently desyncing the two past `u32::MAX`).
    pub fn push_compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        self.instructions += n as u64;
        let room = u32::MAX - self.pending_compute;
        if n > room {
            self.pending_compute = u32::MAX;
            self.flush_compute();
            self.pending_compute = n - room;
        } else {
            self.pending_compute += n;
        }
    }

    fn flush_compute(&mut self) {
        if self.pending_compute > 0 {
            self.events.push(TraceEvent::Compute(self.pending_compute));
            self.pending_compute = 0;
        }
    }

    /// Appends a load and returns its dynamic load sequence number.
    pub fn push_load(
        &mut self,
        addr: Addr,
        size: u8,
        ref_id: RefId,
        hints: HintSet,
        dep: Option<LoadSeq>,
    ) -> LoadSeq {
        self.flush_compute();
        let seq = self.loads;
        self.loads += 1;
        self.instructions += 1;
        self.events.push(TraceEvent::Load {
            addr,
            size,
            ref_id,
            hints,
            dep,
        });
        seq
    }

    /// Appends a store.
    pub fn push_store(&mut self, addr: Addr, size: u8, ref_id: RefId, hints: HintSet) {
        self.flush_compute();
        self.stores += 1;
        self.instructions += 1;
        self.events.push(TraceEvent::Store {
            addr,
            size,
            ref_id,
            hints,
        });
    }

    /// Appends the loop-bound pseudo-instruction.
    pub fn push_set_loop_bound(&mut self, bound: u32) {
        self.flush_compute();
        self.instructions += 1;
        self.events.push(TraceEvent::SetLoopBound(bound));
    }

    /// Appends an indirect-prefetch pseudo-instruction.
    pub fn push_indirect_prefetch(
        &mut self,
        base: Addr,
        elem_size: u32,
        index_addr: Addr,
        ref_id: RefId,
    ) {
        self.flush_compute();
        self.instructions += 1;
        self.events.push(TraceEvent::IndirectPrefetch {
            base,
            elem_size,
            index_addr,
            ref_id,
        });
    }

    /// Reassembles a finalized trace from its parts — the packed tier's
    /// unpack path. Callers guarantee the counters match the event
    /// stream (debug-asserted here).
    pub(crate) fn from_raw_parts(
        events: Vec<TraceEvent>,
        loads: u64,
        stores: u64,
        instructions: u64,
    ) -> Self {
        debug_assert_eq!(
            instructions,
            events.iter().map(|e| e.instruction_count()).sum::<u64>()
        );
        Self {
            events,
            loads,
            stores,
            instructions,
            pending_compute: 0,
        }
    }

    /// Finalizes any coalesced compute tail. Idempotent.
    pub fn finish(&mut self) {
        self.flush_compute();
    }

    /// The recorded events. Call [`Trace::finish`] first to include a
    /// trailing compute batch.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Committed instruction count (including pseudo-instructions).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic load count.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Dynamic store count.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// Dynamic memory-reference count.
    pub fn memory_refs(&self) -> u64 {
        self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_batches_coalesce() {
        let mut t = Trace::new();
        t.push_compute(3);
        t.push_compute(4);
        t.push_load(Addr(0), 8, RefId(0), HintSet::none(), None);
        t.push_compute(2);
        t.finish();
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[0], TraceEvent::Compute(7));
        assert!(matches!(t.events()[1], TraceEvent::Load { .. }));
        assert_eq!(t.events()[2], TraceEvent::Compute(2));
        assert_eq!(t.instructions(), 10);
    }

    #[test]
    fn zero_compute_is_dropped() {
        let mut t = Trace::new();
        t.push_compute(0);
        t.finish();
        assert!(t.events().is_empty());
        assert_eq!(t.instructions(), 0);
    }

    #[test]
    fn load_sequence_numbers_increment() {
        let mut t = Trace::new();
        let a = t.push_load(Addr(0), 8, RefId(0), HintSet::none(), None);
        let b = t.push_load(Addr(8), 8, RefId(1), HintSet::none(), Some(a));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(t.loads(), 2);
        match t.events()[1] {
            TraceEvent::Load { dep, .. } => assert_eq!(dep, Some(0)),
            _ => panic!("expected load"),
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut t = Trace::new();
        t.push_load(Addr(0), 4, RefId(0), HintSet::none(), None);
        t.push_store(Addr(4), 4, RefId(1), HintSet::none());
        t.push_set_loop_bound(100);
        t.push_indirect_prefetch(Addr(64), 4, Addr(128), RefId(2));
        t.finish();
        assert_eq!(t.loads(), 1);
        assert_eq!(t.stores(), 1);
        assert_eq!(t.memory_refs(), 2);
        assert_eq!(t.instructions(), 4);
        assert_eq!(t.events().len(), 4);
    }

    #[test]
    fn compute_overflow_flushes_instead_of_saturating() {
        // Regression: a coalesced compute run past u32::MAX used to
        // saturate `pending_compute` while still crediting the full `n`
        // to `instructions`, desyncing the two counts. The batch must
        // flush at the boundary instead.
        let mut t = Trace::new();
        t.push_compute(u32::MAX - 10);
        t.push_compute(25); // crosses the u32 boundary mid-batch
        t.push_compute(7);
        t.finish();
        let summed: u64 = t.events().iter().map(|e| e.instruction_count()).sum();
        assert_eq!(t.instructions(), summed, "sum identity must hold at the boundary");
        assert_eq!(t.instructions(), (u32::MAX - 10) as u64 + 25 + 7);
        assert_eq!(t.events()[0], TraceEvent::Compute(u32::MAX));
        assert_eq!(t.events()[1], TraceEvent::Compute(22));
    }

    #[test]
    fn compute_exact_boundary_fill_keeps_sum_identity() {
        // Filling the batch to exactly u32::MAX must not emit an empty
        // spurious event or lose the next batch.
        let mut t = Trace::new();
        t.push_compute(u32::MAX);
        t.push_compute(1);
        t.finish();
        let summed: u64 = t.events().iter().map(|e| e.instruction_count()).sum();
        assert_eq!(t.instructions(), summed);
        assert_eq!(t.events(), &[TraceEvent::Compute(u32::MAX), TraceEvent::Compute(1)]);
    }

    #[test]
    fn instruction_count_per_event() {
        assert_eq!(TraceEvent::Compute(9).instruction_count(), 9);
        assert_eq!(
            TraceEvent::SetLoopBound(1).instruction_count(),
            1
        );
        assert!(TraceEvent::Load {
            addr: Addr(0),
            size: 8,
            ref_id: RefId(0),
            hints: HintSet::none(),
            dep: None
        }
        .is_memory());
        assert!(!TraceEvent::Compute(1).is_memory());
    }
}

//! Trace-level statistics: the workload-characterization numbers used
//! to validate that each kernel has the memory behaviour it claims
//! (footprint, reference mix, dependence structure).

use std::collections::HashSet;

use crate::trace::{Trace, TraceEvent};

/// Summary statistics of one dynamic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Committed instructions.
    pub instructions: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Unique 64 B blocks touched (the data footprint).
    pub unique_blocks: u64,
    /// Loads whose address depends on an earlier load's value.
    pub dependent_loads: u64,
    /// Longest chain of address-dependent loads.
    pub max_dep_chain: u64,
    /// Loads carrying any compiler hint.
    pub hinted_loads: u64,
    /// `SetLoopBound` pseudo-instructions.
    pub loop_bounds: u64,
    /// `IndirectPrefetch` pseudo-instructions.
    pub indirect_prefetches: u64,
}

impl TraceStats {
    /// Computes the statistics for `trace`.
    pub fn compute(trace: &Trace) -> Self {
        let mut blocks = HashSet::new();
        let mut dependent = 0u64;
        let mut hinted = 0u64;
        let mut bounds = 0u64;
        let mut indirects = 0u64;
        // Chain depth per dynamic load (indexed by load sequence number).
        let mut depth: Vec<u32> = Vec::with_capacity(trace.loads() as usize);
        let mut max_chain = 0u32;
        for ev in trace.events() {
            match ev {
                TraceEvent::Load {
                    addr, dep, hints, ..
                } => {
                    blocks.insert(addr.block());
                    let d = match dep {
                        Some(seq) => {
                            dependent += 1;
                            depth[*seq as usize] + 1
                        }
                        None => 0,
                    };
                    max_chain = max_chain.max(d);
                    depth.push(d);
                    if !hints.is_empty() {
                        hinted += 1;
                    }
                }
                TraceEvent::Store { addr, .. } => {
                    blocks.insert(addr.block());
                }
                TraceEvent::SetLoopBound(_) => bounds += 1,
                TraceEvent::IndirectPrefetch { .. } => indirects += 1,
                TraceEvent::Compute(_) => {}
            }
        }
        TraceStats {
            instructions: trace.instructions(),
            loads: trace.loads(),
            stores: trace.stores(),
            unique_blocks: blocks.len() as u64,
            dependent_loads: dependent,
            max_dep_chain: max_chain as u64,
            hinted_loads: hinted,
            loop_bounds: bounds,
            indirect_prefetches: indirects,
        }
    }

    /// Data footprint in bytes.
    pub fn footprint_bytes(&self) -> u64 {
        self.unique_blocks * grp_mem::BLOCK_BYTES
    }

    /// Memory references per committed instruction.
    pub fn ref_density(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.instructions as f64
        }
    }

    /// Fraction of loads with an address dependence on another load —
    /// how pointer-chasing-ish the workload is.
    pub fn dependent_ratio(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.dependent_loads as f64 / self.loads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::HintSet;
    use crate::trace::RefId;
    use grp_mem::Addr;

    #[test]
    fn stats_on_a_mixed_trace() {
        let mut t = Trace::new();
        let s0 = t.push_load(Addr(0), 8, RefId(0), HintSet::none().with_spatial(), None);
        let s1 = t.push_load(Addr(64), 8, RefId(1), HintSet::none(), Some(s0));
        t.push_load(Addr(128), 8, RefId(2), HintSet::none(), Some(s1));
        t.push_store(Addr(0), 8, RefId(3), HintSet::none());
        t.push_compute(10);
        t.push_set_loop_bound(4);
        t.push_indirect_prefetch(Addr(512), 8, Addr(1024), RefId(4));
        t.finish();
        let s = TraceStats::compute(&t);
        assert_eq!(s.loads, 3);
        assert_eq!(s.stores, 1);
        assert_eq!(s.unique_blocks, 3);
        assert_eq!(s.dependent_loads, 2);
        assert_eq!(s.max_dep_chain, 2, "0 → 1 → 2 chains two deps deep");
        assert_eq!(s.hinted_loads, 1);
        assert_eq!(s.loop_bounds, 1);
        assert_eq!(s.indirect_prefetches, 1);
        assert_eq!(s.footprint_bytes(), 3 * 64);
        assert!(s.ref_density() > 0.0);
        assert!((s.dependent_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let t = Trace::new();
        let s = TraceStats::compute(&t);
        assert_eq!(s.loads, 0);
        assert_eq!(s.unique_blocks, 0);
        assert_eq!(s.ref_density(), 0.0);
        assert_eq!(s.dependent_ratio(), 0.0);
    }

    #[test]
    fn independent_loads_have_no_chain() {
        let mut t = Trace::new();
        for i in 0..5 {
            t.push_load(Addr(i * 4096), 8, RefId(0), HintSet::none(), None);
        }
        t.finish();
        let s = TraceStats::compute(&t);
        assert_eq!(s.dependent_loads, 0);
        assert_eq!(s.max_dep_chain, 0);
    }
}

//! Workload characterization tests: each kernel must exhibit the memory
//! behaviour its SPEC counterpart is modelled on (Table 6 of the paper,
//! §5.2 prose), measured on the actual trace.

use grp_compiler::AnalysisConfig;
use grp_cpu::TraceStats;
use grp_workloads::{by_name, Scale};

fn stats(name: &str) -> TraceStats {
    let built = by_name(name).expect("registered").build(Scale::Test);
    let (trace, _) = built.trace(Some(&AnalysisConfig::default()));
    TraceStats::compute(&trace)
}

#[test]
fn pointer_chasers_have_long_dependence_chains() {
    // ammp's single list traversal is one long chain; parser/twolf chase
    // shorter chains; mcf's tree walks are mid-length.
    let ammp = stats("ammp");
    assert!(
        ammp.max_dep_chain > 100,
        "ammp chases one long list: chain {}",
        ammp.max_dep_chain
    );
    assert!(ammp.dependent_ratio() > 0.9, "{}", ammp.dependent_ratio());

    let parser = stats("parser");
    assert!(parser.dependent_ratio() > 0.5);
    assert!(parser.max_dep_chain >= 4);

    let twolf = stats("twolf");
    assert!(twolf.dependent_ratio() > 0.5);
    assert!(
        twolf.max_dep_chain <= 8,
        "twolf's chains are short (1–3 nodes): {}",
        twolf.max_dep_chain
    );
}

#[test]
fn streaming_kernels_have_no_dependent_loads() {
    for name in ["wupwise", "swim", "mgrid", "applu", "apsi", "crafty", "sphinx"] {
        let s = stats(name);
        assert_eq!(
            s.dependent_loads, 0,
            "{name} is affine streaming; found {} dependent loads",
            s.dependent_loads
        );
    }
}

#[test]
fn indirect_kernels_carry_indirect_prefetch_instructions() {
    for name in ["vpr", "bzip2"] {
        let s = stats(name);
        assert!(
            s.indirect_prefetches > 0,
            "{name} must emit indirect prefetch instructions"
        );
        // The data loads depend on the index loads.
        assert!(s.dependent_ratio() > 0.2, "{name}: {}", s.dependent_ratio());
    }
}

#[test]
fn varsize_kernels_emit_loop_bounds() {
    for name in ["mesa", "sphinx"] {
        let s = stats(name);
        assert!(
            s.loop_bounds > 0,
            "{name} is a Table 4 variable-region benchmark"
        );
    }
}

#[test]
fn footprints_exceed_test_scale_l1() {
    // Every perf benchmark must carry a nontrivial footprint even at
    // test scale (parser's tiny trie is the smallest at ~12 KB), and at
    // small scale all spill the L1.
    for w in grp_workloads::perf_set() {
        let built = w.build(Scale::Test);
        let (trace, _) = built.trace(None);
        let s = TraceStats::compute(&trace);
        assert!(
            s.footprint_bytes() > 10 * 1024,
            "{}: footprint only {} bytes",
            w.name,
            s.footprint_bytes()
        );
    }
}

#[test]
fn hint_density_tracks_benchmark_class() {
    // Fortran-style kernels: hints on (almost) every load; gzip/gap keep
    // a hintable/unhintable split.
    for name in ["wupwise", "mgrid", "applu"] {
        let s = stats(name);
        assert!(
            s.hinted_loads * 10 >= s.loads * 9,
            "{name}: hinted {}/{}",
            s.hinted_loads,
            s.loads
        );
    }
    for name in ["gzip", "gap"] {
        let s = stats(name);
        assert!(
            s.hinted_loads < s.loads,
            "{name} must keep unhintable references"
        );
    }
}

#[test]
fn crafty_fits_the_l2_while_others_do_not() {
    let crafty = stats("crafty");
    assert!(
        crafty.footprint_bytes() < 1024 * 1024,
        "crafty's working set fits the 1 MB L2: {}",
        crafty.footprint_bytes()
    );
    let art = {
        let built = by_name("art").unwrap().build(Scale::Small);
        let (trace, _) = built.trace(None);
        TraceStats::compute(&trace)
    };
    assert!(
        art.footprint_bytes() > 1024 * 1024,
        "art spills the L2 at small scale: {}",
        art.footprint_bytes()
    );
}

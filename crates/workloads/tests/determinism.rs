//! Determinism regression tests.
//!
//! The paper's entire evaluation method (Tables 1–6, Figures 1/9–12)
//! compares schemes on *the same access trace*: SRP vs stride vs GRP
//! numbers are meaningless if two builds of a workload disagree. These
//! tests pin the workspace convention (seed `0x5eed_0000 ^ salt` in
//! `kernels/util.rs`, all randomness from `grp_testkit::Rng`): building
//! and simulating a kernel twice must produce bit-identical traces and
//! simulator statistics.

use grp_core::{
    run_trace, run_trace_faulted, run_trace_observed, run_trace_observed_faulted, FaultPlan,
    LifecycleTracer, RunResult, Scheme, SimConfig,
};
use grp_workloads::{all, Scale};

/// The stats a regression would corrupt first, as one comparable
/// bundle: trace length, miss counts, and prefetch counts.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    instructions: u64,
    cycles: u64,
    l2_demand_misses: u64,
    l2_useful_prefetches: u64,
    l2_useless_prefetches: u64,
    prefetches_issued: u64,
    traffic_blocks: u64,
}

impl Fingerprint {
    fn of(r: &RunResult) -> Self {
        Fingerprint {
            instructions: r.instructions,
            cycles: r.cycles,
            l2_demand_misses: r.l2.demand_misses,
            l2_useful_prefetches: r.l2.useful_prefetches,
            l2_useless_prefetches: r.l2.useless_prefetches,
            prefetches_issued: r.prefetches_issued,
            traffic_blocks: r.traffic.total_blocks(),
        }
    }
}

/// Two independent builds + runs of every registered kernel must agree
/// on every simulator statistic, under both the no-prefetch baseline
/// and the full GRP scheme.
#[test]
fn every_kernel_is_bit_identical_across_builds() {
    let cfg = SimConfig::paper();
    for w in all() {
        for scheme in [Scheme::NoPrefetch, Scheme::GrpVar] {
            let a = Fingerprint::of(&w.build(Scale::Test).run(scheme, &cfg));
            let b = Fingerprint::of(&w.build(Scale::Test).run(scheme, &cfg));
            assert_eq!(
                a, b,
                "workload '{}' diverged across identically-seeded builds ({scheme:?})",
                w.name
            );
        }
    }
}

/// The interpreted trace itself (not just aggregate stats) must be
/// reproducible: same length and same per-event sequence.
#[test]
fn traces_are_reproducible_event_for_event() {
    for w in all() {
        let (ta, _) = w.build(Scale::Test).trace(None);
        let (tb, _) = w.build(Scale::Test).trace(None);
        assert_eq!(
            ta.events().len(),
            tb.events().len(),
            "workload '{}' trace length diverged",
            w.name
        );
        assert_eq!(
            format!("{:?}", ta.events()),
            format!("{:?}", tb.events()),
            "workload '{}' trace contents diverged",
            w.name
        );
    }
}

/// The exported lifecycle trace must be byte-identical across two
/// identically-seeded observed runs: the JSONL is the artifact other
/// tools diff, so even HashMap-iteration-order nondeterminism in the
/// tracer internals would corrupt it.
#[test]
fn lifecycle_jsonl_is_byte_identical_across_builds() {
    let cfg = SimConfig::paper();
    for w in [
        grp_workloads::by_name("gzip").expect("gzip exists"),
        grp_workloads::by_name("mcf").expect("mcf exists"),
        grp_workloads::by_name("ammp").expect("ammp exists"),
    ] {
        let (_, ta) = w
            .build(Scale::Test)
            .run_observed(Scheme::GrpVar, &cfg, LifecycleTracer::new());
        let (_, tb) = w
            .build(Scale::Test)
            .run_observed(Scheme::GrpVar, &cfg, LifecycleTracer::new());
        assert!(
            !ta.jsonl().is_empty(),
            "workload '{}' traced no prefetch lifecycle at all",
            w.name
        );
        assert_eq!(
            ta.jsonl(),
            tb.jsonl(),
            "workload '{}' lifecycle JSONL diverged across identically-seeded builds",
            w.name
        );
    }
}

/// Threading an observer through the replay must not perturb the
/// simulation itself: observed and unobserved runs agree on every
/// simulator statistic.
#[test]
fn observed_runs_match_unobserved_runs() {
    let cfg = SimConfig::paper();
    let w = grp_workloads::by_name("equake").expect("equake exists");
    let plain = Fingerprint::of(&w.build(Scale::Test).run(Scheme::GrpVar, &cfg));
    let (observed, _) = w
        .build(Scale::Test)
        .run_observed(Scheme::GrpVar, &cfg, LifecycleTracer::new());
    assert_eq!(plain, Fingerprint::of(&observed));
}

/// A zero-fault plan must be inert to the last bit: same `RunResult`
/// (full `Eq`, every counter), same lifecycle JSONL bytes, as the
/// plain unfaulted run — the fault seams cost nothing when idle.
#[test]
fn zero_fault_plan_is_bit_identical_to_unfaulted_run() {
    let cfg = SimConfig::paper();
    let none = FaultPlan::none();
    for name in ["gzip", "mcf", "swim"] {
        let w = grp_workloads::by_name(name).expect("registered");
        let built = w.build(Scale::Test);
        let (trace, mem) = built.trace(Scheme::GrpVar.compiler_config().as_ref());
        let plain = run_trace(&trace, &mem, built.heap, Scheme::GrpVar, &cfg);
        let idle = run_trace_faulted(&trace, &mem, built.heap, Scheme::GrpVar, &cfg, &none);
        assert_eq!(plain, idle, "workload '{name}': empty fault plan perturbed the run");
        let (_, ta) = run_trace_observed(
            &trace,
            &mem,
            built.heap,
            Scheme::GrpVar,
            &cfg,
            LifecycleTracer::new(),
        );
        let (_, tb) = run_trace_observed_faulted(
            &trace,
            &mem,
            built.heap,
            Scheme::GrpVar,
            &cfg,
            LifecycleTracer::new(),
            &none,
        );
        assert_eq!(
            ta.jsonl(),
            tb.jsonl(),
            "workload '{name}': empty fault plan perturbed the lifecycle JSONL"
        );
    }
}

/// Faulted runs are as reproducible as unfaulted ones: the same seeded
/// fault plan over two independent builds must agree on every counter
/// and every lifecycle JSONL byte — a failing faulted seed is a
/// complete reproducer.
#[test]
fn same_seed_faulted_runs_are_bit_identical_across_builds() {
    let cfg = SimConfig::paper();
    let plans: Vec<FaultPlan> = vec![
        FaultPlan::generate(0x5eed_fa17),
        FaultPlan::builtin()
            .into_iter()
            .find(|(n, _)| *n == "storm")
            .expect("storm builtin")
            .1,
    ];
    let w = grp_workloads::by_name("swim").expect("registered");
    for plan in &plans {
        let run = || {
            let built = w.build(Scale::Test);
            let (trace, mem) = built.trace(Scheme::GrpVar.compiler_config().as_ref());
            run_trace_observed_faulted(
                &trace,
                &mem,
                built.heap,
                Scheme::GrpVar,
                &cfg,
                LifecycleTracer::new(),
                plan,
            )
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb, "faulted run diverged across identically-seeded builds");
        assert_eq!(
            ta.jsonl(),
            tb.jsonl(),
            "faulted lifecycle JSONL diverged across identically-seeded builds"
        );
    }
}

/// Different salts must give different streams: if two kernels ever
/// see the same stream, their "independent" data layouts correlate and
/// the cross-benchmark comparison quietly degrades.
#[test]
fn distinct_salts_give_distinct_streams() {
    use grp_workloads::kernels::util::rng;
    let a: Vec<u64> = {
        let mut r = rng(1);
        (0..4).map(|_| r.next_u64()).collect()
    };
    let b: Vec<u64> = {
        let mut r = rng(2);
        (0..4).map(|_| r.next_u64()).collect()
    };
    assert_ne!(a, b);
}

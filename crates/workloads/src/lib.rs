//! SPEC CPU2000-style workloads for the GRP reproduction.
//!
//! The paper evaluates 17 SPEC CPU2000 C/Fortran benchmarks plus the
//! *sphinx* speech recognizer (§5.1, Table 3). SPEC binaries cannot run
//! on this simulator, so each benchmark is re-expressed as a kernel in
//! the `grp-ir` language that reproduces the *dominant L2-miss behaviour
//! the paper itself documents* — Table 6's miss causes, §5.2's per-
//! benchmark discussion, and Table 3's hint profile. DESIGN.md lists the
//! substitution rationale per benchmark.
//!
//! Every kernel is built by ordinary setup code (allocating arrays,
//! planting linked structures in functional memory) plus an IR program;
//! hints are then *derived* by the `grp-compiler` analyses, never
//! hand-attached.
//!
//! # Example
//!
//! ```
//! use grp_workloads::{by_name, Scale};
//! use grp_core::{Scheme, SimConfig};
//!
//! let wl = by_name("swim").expect("swim exists");
//! let built = wl.build(Scale::Test);
//! let base = built.run(Scheme::NoPrefetch, &SimConfig::paper());
//! let grp = built.run(Scheme::GrpVar, &SimConfig::paper());
//! assert!(grp.cycles <= base.cycles * 11 / 10);
//! ```

#![deny(missing_docs)]

pub mod kernels;

use grp_compiler::{analyze, AnalysisConfig};
use grp_core::{run_trace, run_trace_observed, Observer, RunResult, Scheme, SimConfig};
use grp_cpu::Trace;
use grp_ir::interp::Interpreter;
use grp_ir::{Bindings, HintMap, Program};
use grp_mem::{HeapRange, Memory};

/// Benchmark suite classification (Figures 10 vs 11 split by this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchClass {
    /// SPECint-style.
    Int,
    /// SPECfp-style.
    Fp,
    /// The sphinx application.
    App,
}

/// Problem-size selector.
///
/// `Paper` sizes stress the 1 MB L2 the way the SPEC reference inputs
/// stressed it; `Small` is for micro-benches; `Test` keeps unit
/// tests fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Tiny: unit tests.
    Test,
    /// Reduced: benches and quick sweeps.
    Small,
    /// Full evaluation size.
    #[default]
    Paper,
}

impl Scale {
    /// A multiplier helper: picks one of three values by scale.
    pub fn pick(self, test: u64, small: u64, paper: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Small => small,
            Scale::Paper => paper,
        }
    }
}

/// A fully-set-up workload: program + bound data.
#[derive(Debug)]
pub struct BuiltWorkload {
    /// The kernel.
    pub program: Program,
    /// Runtime bindings (array bases, pointer parameters).
    pub bindings: Bindings,
    /// Functional memory after setup (arrays initialized, lists planted).
    pub memory: Memory,
    /// Legitimate heap range for the pointer base-and-bounds test.
    pub heap: HeapRange,
}

impl BuiltWorkload {
    /// Derives hints under `cc` (or none) and interprets the kernel,
    /// returning the hinted trace and the post-run memory the timing
    /// model's pointer scans read.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to interpret (a workload bug).
    pub fn trace(&self, cc: Option<&AnalysisConfig>) -> (Trace, Memory) {
        let hints = match cc {
            Some(cfg) => analyze(&self.program, cfg),
            None => HintMap::empty(),
        };
        self.trace_with_hints(&hints)
    }

    /// Like [`BuiltWorkload::trace`] with a caller-supplied hint map.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to interpret (a workload bug).
    pub fn trace_with_hints(&self, hints: &HintMap) -> (Trace, Memory) {
        let mut mem = self.memory.clone();
        let trace = Interpreter::new(&self.program, &self.bindings, hints)
            .run(&mut mem)
            .unwrap_or_else(|e| panic!("workload {} failed: {e}", self.program.name));
        (trace, mem)
    }

    /// Compiles (per the scheme's compiler configuration), interprets,
    /// and runs the timing simulation.
    pub fn run(&self, scheme: Scheme, cfg: &SimConfig) -> RunResult {
        let cc = scheme.compiler_config();
        let (trace, mem) = self.trace(cc.as_ref());
        run_trace(&trace, &mem, self.heap, scheme, cfg)
    }

    /// Like [`BuiltWorkload::run`] on the packed replay tier: the trace
    /// is packed to the struct-of-arrays form and replayed without
    /// per-event enum dispatch. Bit-identical to [`BuiltWorkload::run`].
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to interpret or its trace cannot be
    /// packed (both are workload bugs).
    pub fn run_packed(&self, scheme: Scheme, cfg: &SimConfig) -> RunResult {
        let cc = scheme.compiler_config();
        let (trace, mem) = self.trace(cc.as_ref());
        let pt = grp_cpu::PackedTrace::pack(&trace)
            .unwrap_or_else(|e| panic!("workload {} trace: {e}", self.program.name));
        drop(trace);
        grp_core::run_trace_packed(&pt, &mem, self.heap, scheme, cfg)
    }

    /// Like [`BuiltWorkload::run`], threading an observer through the
    /// timing simulation and returning it alongside the result.
    pub fn run_observed<O: Observer>(&self, scheme: Scheme, cfg: &SimConfig, obs: O) -> (RunResult, O) {
        let cc = scheme.compiler_config();
        let (trace, mem) = self.trace(cc.as_ref());
        run_trace_observed(&trace, &mem, self.heap, scheme, cfg, obs)
    }

    /// The hint map the given compiler configuration derives.
    pub fn hints(&self, cc: &AnalysisConfig) -> HintMap {
        analyze(&self.program, cc)
    }
}

/// A registered benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Benchmark name (SPEC number omitted: "swim", "mcf", …).
    pub name: &'static str,
    /// Suite classification.
    pub class: BenchClass,
    /// One-line description of the reproduced behaviour.
    pub description: &'static str,
    builder: fn(Scale) -> BuiltWorkload,
}

impl Workload {
    /// Builds the workload at `scale`.
    pub fn build(&self, scale: Scale) -> BuiltWorkload {
        (self.builder)(scale)
    }
}

macro_rules! workload {
    ($name:literal, $class:ident, $builder:path, $desc:literal) => {
        Workload {
            name: $name,
            class: BenchClass::$class,
            description: $desc,
            builder: $builder,
        }
    };
}

/// The full benchmark registry, in the paper's Table 3 order.
pub fn all() -> &'static [Workload] {
    const ALL: &[Workload] = &[
        workload!("gzip", Int, kernels::gzip::build, "sliding-window compression: spatial window copies + hash-indexed history probes outside loops"),
        workload!("wupwise", Fp, kernels::wupwise::build, "dense complex matrix-vector kernels, unit-stride"),
        workload!("swim", Fp, kernels::swim::build, "shallow-water stencils with a transposed-array sweep (Table 6: 92% of misses)"),
        workload!("mgrid", Fp, kernels::mgrid::build, "3D multigrid stencil, unit and power-of-two strides"),
        workload!("applu", Fp, kernels::applu::build, "3D SSOR sweeps over five solution arrays"),
        workload!("vpr", Int, kernels::vpr::build, "placement cost loops: clustered indirect a[b[i]] references"),
        workload!("mesa", Fp, kernels::mesa::build, "vertex pipeline: many short singly-nested loops over small rows (Table 4 var-region case)"),
        workload!("art", Fp, kernels::art::build, "neural-net training: bandwidth-bound f32 streaming + transposed heap array (Table 6)"),
        workload!("mcf", Int, kernels::mcf::build, "network simplex: sequential arc-field resets + random tree traversals (Table 6: 60.7%)"),
        workload!("equake", Fp, kernels::equake::build, "sparse matrix-vector over heap arrays of row pointers (Fig 9's pointer-prefetch win)"),
        workload!("crafty", Int, kernels::crafty::build, "chess bitboards: L2-resident working set (dropped from perf figures, miss rate 0.4%)"),
        workload!("ammp", Fp, kernels::ammp::build, "molecular dynamics: fragmented linked-list traversal (Table 6: 88.6%)"),
        workload!("parser", Int, kernels::parser::build, "dictionary tries: recursive pointer chains with partial spatial layout"),
        workload!("gap", Int, kernels::gap::build, "group-theory workspace sweeps: large spatial scans, half outside loops"),
        workload!("bzip2", Int, kernels::bzip2::build, "suffix sorting: random-permutation indirect a[b[i]] (the indirect-prefetch showcase)"),
        workload!("twolf", Int, kernels::twolf::build, "place-and-route: short fragmented linked lists + random pointers (nothing helps)"),
        workload!("apsi", Fp, kernels::apsi::build, "mesoscale weather arrays: multi-array affine stencils"),
        workload!("sphinx", App, kernels::sphinx::build, "speech recognition: hash-table probes over a few adjacent slots (late prefetches)"),
    ];
    ALL
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    all().iter().find(|w| w.name == name)
}

/// The benchmarks presented in performance figures (the paper drops
/// crafty for its negligible 0.4% L2 miss rate).
pub fn perf_set() -> Vec<&'static Workload> {
    all().iter().filter(|w| w.name != "crafty").collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eighteen_benchmarks() {
        assert_eq!(all().len(), 18);
        assert_eq!(perf_set().len(), 17);
        assert!(by_name("mcf").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn registry_matches_paper_suite_split() {
        let ints = all().iter().filter(|w| w.class == BenchClass::Int).count();
        let fps = all().iter().filter(|w| w.class == BenchClass::Fp).count();
        let apps = all().iter().filter(|w| w.class == BenchClass::App).count();
        assert_eq!(ints, 8);
        assert_eq!(fps, 9);
        assert_eq!(apps, 1);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Test.pick(1, 2, 3), 1);
        assert_eq!(Scale::Small.pick(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn every_workload_builds_and_traces_at_test_scale() {
        for w in all() {
            let b = w.build(Scale::Test);
            let (trace, _mem) = b.trace(None);
            assert!(
                trace.memory_refs() > 0,
                "{} produced an empty trace",
                w.name
            );
            assert!(!b.heap.is_empty() || b.program.arrays.is_empty());
        }
    }

    #[test]
    fn every_workload_compiles_with_default_hints() {
        for w in all() {
            let b = w.build(Scale::Test);
            let hints = b.hints(&AnalysisConfig::default());
            // Each kernel must produce at least one hinted site — Table 3
            // shows a nonzero hint ratio for every benchmark.
            assert!(
                hints.iter_hinted().count() > 0,
                "{} derived no hints at all",
                w.name
            );
        }
    }
}

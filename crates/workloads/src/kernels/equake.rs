//! `183.equake` — earthquake wave propagation (sparse matrix-vector).
//!
//! The sparse matrix is stored as a heap array of row pointers
//! (`buf[i][j]`, exactly the paper's Figure 4 idiom). §5.2 reports the
//! largest pointer-prefetching win of the suite (48.3%): "the
//! performance gain is not from pointer structure traversal … it stems
//! instead from prefetching arrays of pointers from the heap arrays."

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds equake at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let rows = scale.pick(256, 8_000, 24_000) as i64;
    let row_len = 24i64; // mean nonzeros per row (3 blocks of f64)
    let mut pb = ProgramBuilder::new("equake");
    let k_mat = pb.heap_array("K", ElemTy::ptr(), &[rows as u64]);
    let lens = pb.array("len", ElemTy::I32, &[rows as u64]);
    let disp = pb.array("disp", ElemTy::F64, &[rows as u64]);
    let i = pb.var("i");
    let j = pb.var("j");
    let row = pb.var("row");
    let nnz = pb.var("nnz");
    let acc = pb.var("acc");

    let body = vec![for_(
        i,
        c(0),
        c(rows),
        1,
        vec![
            assign(row, load(arr(k_mat, vec![var(i)]))),
            // Sparse rows have data-dependent lengths: the inner bound is
            // symbolic, so the compiler keeps full-size regions here.
            assign(nnz, load(arr(lens, vec![var(i)]))),
            assign(acc, f(0.0)),
            for_(
                j,
                c(0),
                var(nnz),
                1,
                vec![
                    assign(
                        acc,
                        add(var(acc), load(ptr_index(var(row), ElemTy::F64, var(j)))),
                    ),
                    work(3),
                ],
            ),
            store(arr(disp, vec![var(i)]), var(acc)),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let k_base = heap.alloc_array(rows as u64, 8);
    bindings.bind_array(k_mat, k_base);
    let lens_base = heap.alloc_array(rows as u64, 4);
    bindings.bind_array(lens, lens_base);
    let disp_base = heap.alloc_array(rows as u64, 8);
    bindings.bind_array(disp, disp_base);
    // Rows allocated back to back (malloc order) — the "regular layout"
    // §3.1 credits for spatial prefetching subsuming pointer schemes.
    let mut r = util::rng(183);
    for row_i in 0..rows {
        let nnz = (row_len + r.gen_range(-8..=8)) as u64;
        let row = heap.alloc_array(nnz, 8);
        memory.write_u64(k_base.offset(row_i * 8), row.0);
        memory.write_i32(lens_base.offset(row_i * 4), nnz as i32);
        util::fill_f64(&mut memory, row, nnz, |x| 1.0 / (x + 1) as f64);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn heap_row_pointers_are_spatial_and_pointer_hinted() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        assert!(cs.pointer >= 1, "K[i] heap pointer array");
        assert!(cs.spatial >= 2, "K[i] and row[j] both spatial");
    }

    #[test]
    fn pointer_prefetching_alone_speeds_equake_up() {
        // Figure 9: equake gains ~48% from hardware pointer prefetching.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let ptr = b.run(Scheme::HwPointer, &cfg);
        assert!(
            ptr.speedup_vs(&base) > 1.1,
            "pointer-prefetch speedup {}",
            ptr.speedup_vs(&base)
        );
    }

    #[test]
    fn spatial_region_prefetching_subsumes_pointer_gains() {
        // §5.2: "SRP performs much better than pointer or recursive
        // prefetching" on most benchmarks, thanks to malloc layout.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let ptr = b.run(Scheme::HwPointer, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        assert!(srp.cycles <= ptr.cycles * 21 / 20);
    }
}

//! `301.apsi` — mesoscale pollutant transport.
//!
//! Vertical/horizontal advection sweeps over several 3D meteorology
//! arrays with mixed unit and plane strides; some sweeps walk the
//! vertical dimension (large stride) carrying outer-loop spatial reuse —
//! the reason §5.4 lists apsi among the conservative policy's victims.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds apsi at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let nx = scale.pick(16, 64, 112) as i64;
    let nz = scale.pick(8, 24, 32) as i64;
    let mut pb = ProgramBuilder::new("apsi");
    let dims = [nz as u64, nx as u64, nx as u64];
    let t_field = pb.array("t", ElemTy::F64, &dims);
    let q = pb.array("q", ElemTy::F64, &dims);
    let w = pb.array("w", ElemTy::F64, &dims);
    let kz = pb.var("k");
    let i = pb.var("i");
    let j = pb.var("j");
    let acc = pb.var("acc");

    let body = vec![
        // Horizontal advection: unit stride in j.
        for_(
            kz,
            c(0),
            c(nz),
            1,
            vec![for_(
                i,
                c(1),
                c(nx - 1),
                1,
                vec![for_(
                    j,
                    c(1),
                    c(nx - 1),
                    1,
                    vec![store(
                        arr(q, vec![var(kz), var(i), var(j)]),
                        add(
                            load(arr(t_field, vec![var(kz), var(i), sub(var(j), c(1))])),
                            load(arr(t_field, vec![var(kz), var(i), add(var(j), c(1))])),
                        ),
                    )],
                )],
            )],
        ),
        // Vertical column sweep: k varies innermost → plane-sized stride,
        // spatial reuse carried by the enclosing j loop (distance = one
        // column × nz, well under the L2 bound at these sizes).
        for_(
            i,
            c(0),
            c(nx),
            1,
            vec![for_(
                j,
                c(0),
                c(nx),
                1,
                vec![for_(
                    kz,
                    c(0),
                    c(nz),
                    1,
                    vec![assign(
                        acc,
                        add(var(acc), load(arr(w, vec![var(kz), var(i), var(j)]))),
                    )],
                )],
            )],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let cells = (nz * nx * nx) as u64;
    for a in [t_field, q, w] {
        let base = heap.alloc_array(cells, 8);
        util::fill_f64(&mut memory, base, cells.min(2048), |x| (x % 97) as f64);
        bindings.bind_array(a, base);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn default_marks_vertical_sweep_but_conservative_does_not() {
        let b = build(Scale::Test);
        let def = census(&b.program, &b.hints(&AnalysisConfig::default()));
        let cons = census(&b.program, &b.hints(&AnalysisConfig::conservative()));
        assert!(
            def.spatial > cons.spatial,
            "outer-loop reuse marking is what Conservative loses: {} vs {}",
            def.spatial,
            cons.spatial
        );
    }

    #[test]
    fn prefetching_improves_apsi() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(grp.speedup_vs(&base) > 1.02, "speedup {}", grp.speedup_vs(&base));
    }
}

//! `175.vpr` — FPGA placement.
//!
//! The placement cost loops index net data through block-lookup arrays:
//! `a[b[i]]` where consecutive `b[i]` values are *clustered* (nets listed
//! roughly in placement order). §5.2: "For vpr, the indirect references
//! show high spatial locality. SRP thus performs as well as GRP, but
//! with 50% additional traffic."

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds vpr at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let nets = scale.pick(1_024, 60_000, 200_000) as i64;
    let blocks = nets * 2;
    let mut pb = ProgramBuilder::new("vpr");
    let cost = pb.array("cost", ElemTy::F64, &[blocks as u64]);
    let netmap = pb.array("netmap", ElemTy::I32, &[nets as u64]);
    let bb = pb.array("bb", ElemTy::F64, &[nets as u64]);
    let i = pb.var("i");
    let acc = pb.var("acc");

    let body = vec![for_(
        i,
        c(0),
        c(nets),
        1,
        vec![
            // Indirect cost lookup: cost[netmap[i]].
            assign(
                acc,
                add(
                    var(acc),
                    load(arr(cost, vec![load(arr(netmap, vec![var(i)]))])),
                ),
            ),
            // Plus a streaming bounding-box term and cost arithmetic.
            store(arr(bb, vec![var(i)]), var(acc)),
            work(16),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let cost_base = heap.alloc_array(blocks as u64, 8);
    let map_base = heap.alloc_array(nets as u64, 4);
    let bb_base = heap.alloc_array(nets as u64, 8);
    // Clustered indices: runs of small forward jitter with occasional
    // jumps to a new cluster (nets grouped by placement region). The
    // jumps are where hint-blind region prefetching pays for blocks the
    // walk never reaches.
    let mut r = util::rng(175);
    let mut pos: i64 = r.gen_range(0..blocks);
    util::fill_i32(&mut memory, map_base, nets as u64, |_| {
        if r.gen_range(0..160) == 0 {
            pos = r.gen_range(0..blocks);
        } else {
            pos += r.gen_range(0..9);
        }
        (pos % blocks) as i32
    });
    bindings.bind_array(cost, cost_base);
    bindings.bind_array(netmap, map_base);
    bindings.bind_array(bb, bb_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn indirect_directive_is_derived() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        assert!(cs.indirect >= 1, "netmap[i] drives an indirect prefetch");
        assert!(cs.spatial >= 2, "netmap and bb stream");
    }

    #[test]
    fn srp_matches_grp_performance_with_more_traffic() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        // Performance within a band of each other…
        let ratio = grp.cycles as f64 / srp.cycles as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "GRP/SRP cycle ratio {ratio}"
        );
        // …but SRP pays more traffic (paper: ~2× for vpr).
        assert!(
            srp.traffic_vs(&base) > grp.traffic_vs(&base),
            "SRP {:.2}× vs GRP {:.2}×",
            srp.traffic_vs(&base),
            grp.traffic_vs(&base)
        );
    }

    #[test]
    fn indirect_prefetching_beats_no_prefetching() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(grp.speedup_vs(&base) > 1.05, "{}", grp.speedup_vs(&base));
    }
}

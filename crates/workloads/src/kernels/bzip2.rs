//! `256.bzip2` — Burrows-Wheeler compression.
//!
//! Block sorting indexes the data block through a suffix-pointer array:
//! `quadrant[b[i]]`-style references whose index values are an
//! effectively random permutation. This is the paper's indirect-prefetch
//! showcase (§3.3.3/§5.2): "with indirect prefetching, the gap from a
//! perfect L2 is reduced to 12.5% from 15.9%, with only 15% of the
//! memory traffic of SRP". SRP's 4 KB regions around random single-block
//! targets are almost pure waste (Table 5: accuracy 5.3%, traffic ~10×).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds bzip2 at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let block = scale.pick(4_096, 400_000, 1_000_000) as i64;
    let mut pb = ProgramBuilder::new("bzip2");
    let quadrant = pb.array("quadrant", ElemTy::I64, &[block as u64]);
    let ptrs = pb.array("ptr", ElemTy::I32, &[block as u64]);
    let out = pb.array("out", ElemTy::I64, &[block as u64]);
    let i = pb.var("i");
    let acc = pb.var("acc");

    let body = vec![
        // Sorted-order reconstruction: out[i] = quadrant[ptr[i]].
        for_(
            i,
            c(0),
            c(block),
            1,
            vec![
                store(
                    arr(out, vec![var(i)]),
                    load(arr(quadrant, vec![load(arr(ptrs, vec![var(i)]))])),
                ),
                work(20),
            ],
        ),
        // A sequential counting pass (spatial).
        for_(
            i,
            c(0),
            c(block),
            1,
            vec![
                assign(acc, add(var(acc), load(arr(out, vec![var(i)])))),
                work(6),
            ],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let q_base = heap.alloc_array(block as u64, 8);
    let p_base = heap.alloc_array(block as u64, 4);
    let o_base = heap.alloc_array(block as u64, 8);
    let mut r = util::rng(256);
    let perm = util::permutation(&mut r, block as u64);
    util::fill_i32(&mut memory, p_base, block as u64, |k| perm[k as usize] as i32);
    bindings.bind_array(quadrant, q_base);
    bindings.bind_array(ptrs, p_base);
    bindings.bind_array(out, o_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn indirect_directive_on_the_suffix_array() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        assert!(cs.indirect >= 1, "ptr[i] drives indirect prefetching");
        assert!(cs.spatial >= 2, "ptr/out stream affinely");
    }

    #[test]
    fn grp_beats_srp_on_bzip2() {
        // The paper's indirect-prefetch headline: GRP > SRP here.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            grp.cycles <= srp.cycles,
            "GRP {} vs SRP {} cycles",
            grp.cycles,
            srp.cycles
        );
        assert!(
            grp.traffic_vs(&base) < srp.traffic_vs(&base) * 0.6,
            "GRP traffic {:.2}× vs SRP {:.2}×",
            grp.traffic_vs(&base),
            srp.traffic_vs(&base)
        );
    }

    #[test]
    fn srp_accuracy_collapses_on_random_targets() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let srp = b.run(Scheme::Srp, &cfg);
        assert!(
            srp.accuracy() < 0.5,
            "random-permutation regions are mostly waste: {:.2}",
            srp.accuracy()
        );
    }
}

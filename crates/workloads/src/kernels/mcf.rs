//! `181.mcf` — network simplex minimum-cost flow.
//!
//! Table 6 attributes 60.7% of mcf's misses to "tree traversal"; §5.2
//! explains the pointer-prefetch gain (15.9%) with "a loop which
//! sequentially resets a field in each object in a heap array" — the
//! arcs array sweep. The reproduction runs both phases:
//!
//! * `refresh_potential`-style sweep over the contiguous arc array via a
//!   loop induction pointer (spatial + pointer hints), and
//! * random basis-tree walks through `parent` pointers (recursive hint,
//!   but data-dependent — the part no prefetcher fixes; the paper keeps
//!   mcf's gap at 63.9% and caps its chase depth at 3 to stay tractable).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::types::field;
use grp_ir::{ElemTy, FieldId, ProgramBuilder};

/// Builds mcf at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let arcs = scale.pick(512, 20_000, 60_000) as i64;
    let nodes = scale.pick(256, 8_000, 24_000) as usize;
    let walks = scale.pick(128, 4_000, 12_000) as i64;

    let mut pb = ProgramBuilder::new("mcf");
    let nid = pb.peek_struct_id();
    let node = pb.add_struct(
        "node",
        vec![
            field("parent", ElemTy::ptr_to(nid)), // offset 0
            field("potential", ElemTy::I64),
        ],
    );
    let parent_f = FieldId(0);
    let pot_f = FieldId(1);

    let arc_struct = pb.add_struct(
        "arc",
        vec![
            field("cost", ElemTy::I64),            // 0
            field("tail", ElemTy::ptr_to(nid)),    // 8
            field("head", ElemTy::ptr_to(nid)),    // 16
            field("flow", ElemTy::I64),            // 24
            field("ident", ElemTy::I64),           // 32
        ],
    );
    let cost_f = FieldId(0);
    let tail_f = FieldId(1);
    let flow_f = FieldId(3);

    let roots = pb.array("roots", ElemTy::ptr_to(nid), &[walks as u64]);
    let p = pb.var("p");
    let arcs_base = pb.var("arcs_base");
    let arcs_end = pb.var("arcs_end");
    let w = pb.var("w");
    let nptr = pb.var("nptr");
    let acc = pb.var("acc");
    let depth = pb.var("depth");

    let arc_size = 40i64;
    let body = vec![
        // Phase 1: sweep the arc array, reading cost/tail and resetting flow.
        assign(p, var(arcs_base)),
        while_(
            lt(var(p), var(arcs_end)),
            vec![
                assign(acc, add(var(acc), load(fld(var(p), arc_struct, cost_f)))),
                assign(nptr, load(fld(var(p), arc_struct, tail_f))),
                store(fld(var(p), arc_struct, flow_f), c(0)),
                work(10),
                assign(p, add(var(p), c(arc_size))),
            ],
        ),
        // Phase 2: random tree walks to the root.
        for_(
            w,
            c(0),
            c(walks),
            1,
            vec![
                assign(nptr, load(arr(roots, vec![var(w)]))),
                assign(depth, c(0)),
                while_(
                    ne(var(nptr), c(0)),
                    vec![
                        assign(acc, add(var(acc), load(fld(var(nptr), node, pot_f)))),
                        assign(nptr, load(fld(var(nptr), node, parent_f))),
                        work(8),
                        assign(depth, add(var(depth), c(1))),
                    ],
                ),
            ],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();

    // Contiguous arc array (the heap-array sweep).
    let arcs_start = heap.alloc(arcs as u64 * arc_size as u64, 64);
    // Tree nodes: scattered allocation order (tree built by pivoting).
    let mut r = util::rng(181);
    let node_addrs: Vec<_> = (0..nodes).map(|_| heap.alloc(16, 8)).collect();
    // Random parent edges forming a forest converging on node 0.
    for (k, n) in node_addrs.iter().enumerate().skip(1) {
        let parent = node_addrs[r.gen_range(0..k)];
        memory.write_u64(*n, parent.0);
        memory.write_i64(n.offset(8), k as i64);
    }
    memory.write_u64(node_addrs[0], 0);
    // Arc tails point at random tree nodes.
    for a in 0..arcs {
        let base = arcs_start.offset(a * arc_size);
        memory.write_i64(base, a % 17); // cost
        let t = node_addrs[r.gen_range(0..nodes)];
        memory.write_u64(base.offset(8), t.0);
        memory.write_u64(base.offset(16), node_addrs[r.gen_range(0..nodes)].0);
    }
    // Walk roots: random deep nodes.
    let roots_base = heap.alloc_array(walks as u64, 8);
    for k in 0..walks {
        let idx = r.gen_range(nodes / 2..nodes);
        memory.write_u64(roots_base.offset(k * 8), node_addrs[idx].0);
    }
    bindings.bind_array(roots, roots_base);
    bindings.bind_var(arcs_base, arcs_start.0 as i64);
    bindings.bind_var(arcs_end, arcs_start.0 as i64 + arcs * arc_size);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn hint_profile_matches_paper_shape() {
        // Table 3: mcf has spatial, pointer AND recursive hints.
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.spatial >= 1, "arc sweep (induction pointer) spatial");
        assert!(cs.pointer >= 2, "arc/node field accesses pointer-hinted");
        assert!(cs.recursive >= 1, "parent chase recursive");
    }

    #[test]
    fn pointer_prefetching_helps_the_arc_sweep() {
        // §5.2: mcf's pointer-prefetch gain comes from the sequential
        // field-reset loop, not the tree.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let hw = b.run(Scheme::HwPointer, &cfg);
        assert!(hw.speedup_vs(&base) > 1.02, "{}", hw.speedup_vs(&base));
    }

    #[test]
    fn mcf_stays_far_from_perfect_l2() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let grp = b.run(Scheme::GrpVar, &cfg);
        let perfect = b.run(Scheme::PerfectL2, &cfg);
        assert!(
            grp.gap_vs_perfect(&perfect) > 15.0,
            "tree walks keep mcf memory-bound: {:.1}%",
            grp.gap_vs_perfect(&perfect)
        );
    }
}

//! `173.applu` — SSOR solver for CFD.
//!
//! Lower/upper triangular sweeps over five 3D solution arrays, all
//! affine and unit-stride in the innermost dimension. Table 5 reports
//! near-total coverage (96.9%) with ~89% accuracy for SRP and GRP alike;
//! Table 3 marks 57.5% of its static references.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ArrayId, ElemTy, ProgramBuilder};

/// Builds applu at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = scale.pick(12, 36, 56) as i64; // n³ cells × 5 fields
    let mut pb = ProgramBuilder::new("applu");
    let dims = [n as u64, n as u64, 5 * n as u64];
    let rsd = pb.array("rsd", ElemTy::F64, &dims);
    let frct = pb.array("frct", ElemTy::F64, &dims);
    let flux = pb.array("flux", ElemTy::F64, &dims);
    let i = pb.var("i");
    let j = pb.var("j");
    let k = pb.var("k");

    let fld = |a: ArrayId, di: i64, dj: i64, dk: i64| {
        arr(
            a,
            vec![
                add(var(i), c(di)),
                add(var(j), c(dj)),
                add(var(k), c(dk)),
            ],
        )
    };

    let body = vec![
        // jacld/blts-style lower sweep.
        for_(
            i,
            c(1),
            c(n - 1),
            1,
            vec![for_(
                j,
                c(1),
                c(n - 1),
                1,
                vec![for_(
                    k,
                    c(5),
                    c(5 * (n - 1)),
                    1,
                    vec![store(
                        fld(rsd, 0, 0, 0),
                        add(
                            mul(load(fld(rsd, -1, 0, 0)), load(fld(flux, 0, 0, 0))),
                            add(
                                mul(load(fld(rsd, 0, -1, 0)), load(fld(flux, 0, 0, -5))),
                                load(fld(frct, 0, 0, 0)),
                            ),
                        ),
                    )],
                )],
            )],
        ),
        // rhs-style flux update.
        for_(
            i,
            c(0),
            c(n),
            1,
            vec![for_(
                j,
                c(0),
                c(n),
                1,
                vec![for_(
                    k,
                    c(0),
                    c(5 * n - 5),
                    1,
                    vec![store(
                        fld(flux, 0, 0, 0),
                        sub(load(fld(frct, 0, 0, 5)), load(fld(frct, 0, 0, 0))),
                    )],
                )],
            )],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let cells = (n * n * 5 * n) as u64;
    for a in [rsd, frct, flux] {
        let base = heap.alloc_array(cells, 8);
        util::fill_f64(&mut memory, base, cells.min(2048), |x| x as f64 * 0.25);
        bindings.bind_array(a, base);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn majority_of_refs_are_spatial() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.spatial as f64 / cs.mem_refs as f64 > 0.5);
        assert_eq!(cs.pointer + cs.recursive + cs.indirect, 0);
    }

    #[test]
    fn conservative_policy_hurts_applu() {
        // §5.4 names applu among the benchmarks the conservative policy
        // degrades: its neighbour accesses carry outer-loop reuse.
        let b = build(Scale::Test);
        let def = census(&b.program, &b.hints(&AnalysisConfig::default()));
        let cons = census(&b.program, &b.hints(&AnalysisConfig::conservative()));
        assert!(cons.spatial <= def.spatial);
    }

    #[test]
    fn srp_and_grp_both_cover_heavily() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(srp.coverage_vs(&base) > 0.5);
        assert!(grp.coverage_vs(&base) > 0.5);
        // GRP spends no more traffic than SRP.
        assert!(grp.traffic.total_blocks() <= srp.traffic.total_blocks() * 11 / 10);
    }
}

//! `188.ammp` — molecular dynamics over linked atom lists.
//!
//! Table 6 attributes 88.6% of ammp's misses to "linked list traversal".
//! Atoms are ~200-byte records in a long singly-linked list, allocated
//! roughly in order but padded (the real allocator interleaves other
//! structures), so region prefetching pays 4 KB per node touched while
//! the compiler's `recursive pointer` hint lets GRP chase `next` fields
//! precisely (the paper credits pointer+indirect hints with bringing
//! ammp under a 15% gap).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::types::field;
use grp_ir::{ElemTy, FieldId, ProgramBuilder};

/// Builds ammp at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let atoms = scale.pick(512, 12_000, 40_000) as usize;
    let passes = scale.pick(1, 1, 2) as i64;

    let mut pb = ProgramBuilder::new("ammp");
    let sid = pb.peek_struct_id();
    let atom = pb.add_struct(
        "atom",
        vec![
            field("next", ElemTy::ptr_to(sid)), // offset 0
            field("x", ElemTy::F64),
            field("y", ElemTy::F64),
            field("z", ElemTy::F64),
            field("fx", ElemTy::F64),
        ],
    );
    let next_f = FieldId(0);
    let x_f = FieldId(1);
    let y_f = FieldId(2);
    let fx_f = FieldId(4);
    let p = pb.var("p");
    let head = pb.var("head");
    let t = pb.var("t");
    let e = pb.var("e");

    let body = vec![for_(
        t,
        c(0),
        c(passes),
        1,
        vec![
            assign(p, var(head)),
            while_(
                ne(var(p), c(0)),
                vec![
                    assign(
                        e,
                        add(
                            load(fld(var(p), atom, x_f)),
                            load(fld(var(p), atom, y_f)),
                        ),
                    ),
                    store(fld(var(p), atom, fx_f), var(e)),
                    work(20),
                    assign(p, load(fld(var(p), atom, next_f))),
                ],
            ),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    // ~200-byte records with interleaved allocations: pad so each node
    // sits in its own pair of blocks.
    heap.set_pad(984);
    let node_size = 5 * 8;
    let nodes: Vec<_> = (0..atoms).map(|_| heap.alloc(node_size, 8)).collect();
    let head_addr = util::link_chain(&mut memory, &nodes, 0);
    for (k, n) in nodes.iter().enumerate() {
        memory.write_f64(n.offset(8), k as f64 * 0.5);
        memory.write_f64(n.offset(16), 1.0);
    }
    let mut bindings = program.bindings();
    bindings.bind_var(head, head_addr.0 as i64);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn traversal_is_recursive_pointer_hinted() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.recursive >= 1, "next-chase marked recursive");
        assert!(cs.pointer >= 3, "field accesses marked pointer");
        assert_eq!(cs.indirect, 0);
    }

    #[test]
    fn recursive_chase_hides_list_latency() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            grp.speedup_vs(&base) > 1.1,
            "recursive prefetching speedup {}",
            grp.speedup_vs(&base)
        );
    }

    #[test]
    fn grp_spends_far_less_traffic_than_srp_on_lists() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        // Paper Table 5: ammp SRP traffic 8340K vs GRP 665K (12×).
        assert!(
            srp.traffic_vs(&base) > 2.0 * grp.traffic_vs(&base),
            "SRP {:.2}× vs GRP {:.2}×",
            srp.traffic_vs(&base),
            grp.traffic_vs(&base)
        );
    }

    #[test]
    fn stride_prefetching_cannot_learn_the_list() {
        let b = build(Scale::Test);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let stride = b.run(Scheme::Stride, &cfg);
        // Padded nodes have an (accidentally) constant allocation stride,
        // so stride prefetching may catch some; it must not *hurt*.
        assert!(stride.cycles <= base.cycles * 21 / 20);
    }
}

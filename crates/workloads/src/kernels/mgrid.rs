//! `172.mgrid` — 3D multigrid solver.
//!
//! The hot loops apply a 27-point stencil over a 3D grid and restrict/
//! prolongate between resolutions with stride-2 accesses. Everything is
//! affine; Table 3 shows the highest hint ratio of the suite (73.9%) and
//! Table 5 shows ~80–87% coverage for SRP/GRP with high accuracy.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds mgrid at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = scale.pick(16, 48, 80) as i64; // n³ f64 grid
    let mut pb = ProgramBuilder::new("mgrid");
    let u = pb.array("u", ElemTy::F64, &[n as u64, n as u64, n as u64]);
    let r = pb.array("r", ElemTy::F64, &[n as u64, n as u64, n as u64]);
    let cz = pb.array("cz", ElemTy::F64, &[(n / 2) as u64, (n / 2) as u64, (n / 2) as u64]);
    let i = pb.var("i");
    let j = pb.var("j");
    let k = pb.var("k");

    let body = vec![
        // resid: r(i,j,k) = u(i,j,k±1) combination — 7-point core.
        for_(
            i,
            c(1),
            c(n - 1),
            1,
            vec![for_(
                j,
                c(1),
                c(n - 1),
                1,
                vec![for_(
                    k,
                    c(1),
                    c(n - 1),
                    1,
                    vec![store(
                        arr(r, vec![var(i), var(j), var(k)]),
                        add(
                            add(
                                load(arr(u, vec![var(i), var(j), sub(var(k), c(1))])),
                                load(arr(u, vec![var(i), var(j), add(var(k), c(1))])),
                            ),
                            add(
                                load(arr(u, vec![var(i), sub(var(j), c(1)), var(k)])),
                                load(arr(u, vec![var(i), add(var(j), c(1)), var(k)])),
                            ),
                        ),
                    )],
                )],
            )],
        ),
        // rprj3 (restriction): coarse(i,j,k) = r(2i, 2j, 2k) — stride 2.
        for_(
            i,
            c(0),
            c(n / 2),
            1,
            vec![for_(
                j,
                c(0),
                c(n / 2),
                1,
                vec![for_(
                    k,
                    c(0),
                    c(n / 2),
                    1,
                    vec![store(
                        arr(cz, vec![var(i), var(j), var(k)]),
                        load(arr(
                            r,
                            vec![mul(c(2), var(i)), mul(c(2), var(j)), mul(c(2), var(k))],
                        )),
                    )],
                )],
            )],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let cells = (n * n * n) as u64;
    let u_base = heap.alloc_array(cells, 8);
    let r_base = heap.alloc_array(cells, 8);
    let cz_base = heap.alloc_array(cells / 8, 8);
    util::fill_f64(&mut memory, u_base, cells.min(4096), |x| x as f64 * 0.5);
    bindings.bind_array(u, u_base);
    bindings.bind_array(r, r_base);
    bindings.bind_array(cz, cz_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};
    use grp_cpu::RefId;

    #[test]
    fn stencil_and_stride2_refs_are_spatial() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        // 4 stencil loads + r store + restriction load/store, all spatial
        // (stride-2 over f64 = 16 B < one block).
        assert!(cs.spatial >= 6, "spatial={}", cs.spatial);
        assert_eq!(cs.pointer + cs.recursive, 0);
        // The restriction load r(2i,2j,2k) is the last ref: spatial too.
        let last = RefId(b.program.num_refs - 2);
        assert!(h.hint(last).spatial() || h.hint(RefId(b.program.num_refs - 1)).spatial());
    }

    #[test]
    fn prefetching_covers_most_misses() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        assert!(srp.coverage_vs(&base) > 0.5, "coverage {}", srp.coverage_vs(&base));
        assert!(srp.speedup_vs(&base) > 1.05);
    }
}

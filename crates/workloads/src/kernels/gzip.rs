//! `164.gzip` — LZ77 compression.
//!
//! Two access styles drive gzip's memory behaviour: sequential
//! sliding-window copies (affine, spatial-hinted) and hash-chain history
//! probes whose addresses come from a hash of the input — *not* affine,
//! so the compiler cannot mark them. The probes still land near recently
//! written window positions, which is why hint-blind SRP covers gzip
//! well (Table 5: 76.3%) while GRP's coverage is 0.0 — the misses sit
//! exactly on the unhintable references ("the compiler misses locality
//! outside of loops", §5.2).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds gzip at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let window = scale.pick(1 << 11, 1 << 18, 1 << 19) as i64; // 8-byte words
    let probes = scale.pick(512, 30_000, 90_000) as i64;
    let mut pb = ProgramBuilder::new("gzip");
    let win = pb.array("window", ElemTy::I64, &[window as u64]);
    let out = pb.array("out", ElemTy::I64, &[window as u64]);
    let i = pb.var("i");
    let h = pb.var("h");
    let acc = pb.var("acc");

    let body = vec![
        // Deflate copy loop: out[i] = window[i] — spatial.
        for_(
            i,
            c(0),
            c(window),
            1,
            vec![
                store(arr(out, vec![var(i)]), load(arr(win, vec![var(i)]))),
                work(16),
            ],
        ),
        // Hash-chain probes: h = (i * 2654435761) mod window — the
        // multiplicative hash makes the subscript non-affine.
        for_(
            i,
            c(0),
            c(probes),
            1,
            vec![
                assign(
                    h,
                    and_(mul(var(i), c(2654435761)), c(window - 1)),
                ),
                work(24),
                assign(acc, add(var(acc), load(arr(win, vec![var(h)])))),
                // Each probe also reads the following match candidate.
                assign(
                    acc,
                    add(
                        var(acc),
                        load(arr(win, vec![and_(add(var(h), c(8)), c(window - 1))])),
                    ),
                ),
            ],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let win_base = heap.alloc_array(window as u64, 8);
    let out_base = heap.alloc_array(window as u64, 8);
    for k in 0..(window as u64).min(8192) {
        memory.write_i64(win_base.offset(k as i64 * 8), (k * 131 % 251) as i64);
    }
    bindings.bind_array(win, win_base);
    bindings.bind_array(out, out_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn copy_loop_hinted_probes_not() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        // window[i] and out[i] spatial; the two hash probes unhinted.
        assert!(cs.spatial >= 2);
        assert!(
            (cs.hinted() as u32) < cs.mem_refs,
            "hash probes stay unhinted"
        );
    }

    #[test]
    fn srp_covers_more_than_grp_on_gzip() {
        // The paper's starkest SRP>GRP case: GRP coverage 0.0 (Table 5).
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            srp.coverage_vs(&base) > grp.coverage_vs(&base),
            "SRP {:.2} vs GRP {:.2}",
            srp.coverage_vs(&base),
            grp.coverage_vs(&base)
        );
    }

    #[test]
    fn grp_traffic_stays_near_baseline() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        // Table 5: gzip GRP traffic 182K == base 182K.
        assert!(grp.traffic_vs(&base) < 1.3, "{}", grp.traffic_vs(&base));
    }
}

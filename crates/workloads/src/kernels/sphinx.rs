//! *sphinx* — CMU speech recognition.
//!
//! The paper chose sphinx "for its sparse irregular pointer behavior"
//! and found its misses dominated by hash-table lookups that "usually
//! touch only a small number of adjacent hash slots in a short loop;
//! prefetches occur simply too late to tolerate the latencies" (§5.5,
//! Table 6: 28.8%). The probe loop is a short counted loop from a hashed
//! start slot, so GRP/Var chooses tiny regions (Table 4: 82.9% two-block
//! regions, an 82% traffic cut at a ~6% performance cost vs GRP/Fix).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds sphinx at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let slots = scale.pick(1 << 12, 1 << 18, 1 << 19) as i64; // 16-byte slots
    let lookups = scale.pick(512, 25_000, 75_000) as i64;
    let probe = 4i64; // adjacent slots examined per lookup

    let mut pb = ProgramBuilder::new("sphinx");
    let table = pb.array("hashtab", ElemTy::I64, &[slots as u64, 2]);
    let scores = pb.array("scores", ElemTy::F64, &[lookups as u64]);
    let i = pb.var("i");
    let h = pb.var("h");
    let k = pb.var("k");
    let acc = pb.var("acc");

    let body = vec![for_(
        i,
        c(0),
        c(lookups),
        1,
        vec![
            assign(h, and_(mul(var(i), c(0x85EB_CA6B)), c(slots - probe - 1))),
            assign(acc, c(0)),
            // Short probe over adjacent slots: h, h+1, … h+probe-1.
            for_(
                k,
                c(0),
                c(probe),
                1,
                vec![assign(
                    acc,
                    add(var(acc), load(arr(table, vec![add(var(h), var(k)), c(0)]))),
                )],
            ),
            store(arr(scores, vec![var(i)]), var(acc)),
            work(40),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let t_base = heap.alloc_array((slots * 2) as u64, 8);
    let s_base = heap.alloc_array(lookups as u64, 8);
    for s in (0..slots).step_by(7) {
        memory.write_i64(t_base.offset(s * 16), s % 4093);
    }
    bindings.bind_array(table, t_base);
    bindings.bind_array(scores, s_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn probe_loop_is_spatial_with_a_size_coefficient() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        assert!(cs.spatial >= 2, "probe + scores");
        assert!(
            cs.sized >= 1,
            "the short probe loop gets a variable-size coefficient"
        );
    }

    #[test]
    fn var_regions_cut_sphinx_traffic_sharply() {
        // Table 4: sphinx GRP/Var 2.09× vs GRP/Fix 11.66× baseline.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let fix = b.run(Scheme::GrpFix, &cfg);
        let var = b.run(Scheme::GrpVar, &cfg);
        assert!(
            var.traffic_vs(&base) < fix.traffic_vs(&base) * 0.5,
            "Var {:.2}× vs Fix {:.2}×",
            var.traffic_vs(&base),
            fix.traffic_vs(&base)
        );
    }

    #[test]
    fn var_may_cost_some_performance_but_stays_close() {
        // Table 4: GRP/Var gives up 5.8% performance for the traffic cut.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let fix = b.run(Scheme::GrpFix, &cfg);
        let var = b.run(Scheme::GrpVar, &cfg);
        assert!(var.cycles <= fix.cycles * 23 / 20);
    }

    #[test]
    fn prefetches_arrive_too_late_to_cover_much() {
        // §5.5: random probe starts mean region prefetches can't lead the
        // demand stream; coverage stays low under every scheme.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            grp.coverage_vs(&base) < 0.6,
            "coverage {:.2}",
            grp.coverage_vs(&base)
        );
    }
}

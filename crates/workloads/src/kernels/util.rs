//! Shared setup helpers for the kernels.

use grp_mem::{Addr, HeapAllocator, Memory};
use grp_testkit::Rng;

/// All workloads place their heap at the same base; the pointer
/// base-and-bounds test uses the allocator's high-water mark.
pub const HEAP_BASE: Addr = Addr(0x1000_0000);

/// A fresh heap allocator at the standard base.
pub fn heap() -> HeapAllocator {
    HeapAllocator::new(HEAP_BASE)
}

/// A deterministic RNG; `salt` separates workloads.
pub fn rng(salt: u64) -> Rng {
    Rng::seed_from_u64(0x5eed_0000 ^ salt)
}

/// Initializes `n` little-endian `i32`s at `base` from a function of the
/// index.
pub fn fill_i32(mem: &mut Memory, base: Addr, n: u64, mut f: impl FnMut(u64) -> i32) {
    for i in 0..n {
        mem.write_i32(base.offset(i as i64 * 4), f(i));
    }
}

/// Initializes `n` `f64`s at `base`.
pub fn fill_f64(mem: &mut Memory, base: Addr, n: u64, mut f: impl FnMut(u64) -> f64) {
    for i in 0..n {
        mem.write_f64(base.offset(i as i64 * 8), f(i));
    }
}

/// A random permutation of `0..n`.
pub fn permutation(r: &mut Rng, n: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..n as u32).collect();
    r.shuffle(&mut v);
    v
}

/// Plants a singly-linked list of `n` nodes of `node_size` bytes with the
/// `next` pointer at byte offset `next_off`, in the given address order.
/// Returns the head address. The final node's next pointer is null.
pub fn link_chain(mem: &mut Memory, nodes: &[Addr], next_off: u64) -> Addr {
    for w in nodes.windows(2) {
        mem.write_u64(w[0].offset(next_off as i64), w[1].0);
    }
    if let Some(last) = nodes.last() {
        mem.write_u64(last.offset(next_off as i64), 0);
    }
    nodes.first().copied().unwrap_or(Addr(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(1);
        let p = permutation(&mut r, 100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn link_chain_plants_pointers() {
        let mut mem = Memory::new();
        let nodes = vec![Addr(0x1000), Addr(0x2000), Addr(0x3000)];
        let head = link_chain(&mut mem, &nodes, 8);
        assert_eq!(head, Addr(0x1000));
        assert_eq!(mem.read_u64(Addr(0x1008)), 0x2000);
        assert_eq!(mem.read_u64(Addr(0x2008)), 0x3000);
        assert_eq!(mem.read_u64(Addr(0x3008)), 0);
    }

    #[test]
    fn fill_helpers_write_expected_values() {
        let mut mem = Memory::new();
        fill_i32(&mut mem, Addr(0x1000), 4, |i| i as i32 * 2);
        assert_eq!(mem.read_i32(Addr(0x1008)), 4);
        fill_f64(&mut mem, Addr(0x2000), 2, |i| i as f64 + 0.5);
        assert_eq!(mem.read_f64(Addr(0x2008)), 1.5);
    }

    #[test]
    fn rng_is_deterministic() {
        let a: u64 = rng(7).gen();
        let b: u64 = rng(7).gen();
        assert_eq!(a, b);
    }
}

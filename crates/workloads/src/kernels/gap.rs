//! `254.gap` — computational group theory.
//!
//! GAP manages a large workspace ("bag") arena it periodically sweeps.
//! Half the sweep walks objects by a *data-dependent* size field (the
//! compiler cannot prove an induction pointer), half streams a handle
//! table affinely. Table 5's shape: SRP coverage 97.6% (the arena is
//! physically sequential) versus GRP 52.8% — GRP only covers the
//! hintable half — with GRP traffic equal to baseline.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds gap at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let handles = scale.pick(1_024, 50_000, 150_000) as i64;
    let arena_objs = scale.pick(512, 25_000, 75_000) as i64;

    // Multiplication-table dimensions: the column sweep's reuse distance
    // is rows × one block — beyond the L2 at Small/Paper scale, so only
    // the §5.4 aggressive policy marks it (and pays for it).
    let mrows = scale.pick(1_024, 20_480, 49_152) as i64;
    let mcols = 64i64;

    let mut pb = ProgramBuilder::new("gap");
    let htab = pb.array("handles", ElemTy::I64, &[handles as u64]);
    let mult = pb.array("mult", ElemTy::I64, &[mrows as u64, mcols as u64]);
    let p = pb.var("p");
    let arena_start = pb.var("arena_start");
    let arena_stop = pb.var("arena_stop");
    let i = pb.var("i");
    let col = pb.var("col");
    let acc = pb.var("acc");
    let sz = pb.var("sz");

    let body = vec![
        // Affine half: handle-table sweep (hinted spatial).
        for_(
            i,
            c(0),
            c(handles),
            1,
            vec![
                assign(acc, add(var(acc), load(arr(htab, vec![var(i)])))),
                work(6),
            ],
        ),
        // Finite-field table lookups walk one column of the large
        // multiplication table: the reuse distance of `mult(i, col)`
        // across `col` iterations is the whole column of blocks — larger
        // than the L2, so the default policy leaves it unmarked.
        for_(
            col,
            c(0),
            c(8),
            1,
            vec![for_(
                i,
                c(0),
                c(mrows),
                1,
                vec![
                    assign(acc, add(var(acc), load(arr(mult, vec![var(i), var(col)])))),
                    work(4),
                ],
            )],
        ),
        // Arena half: walk objects by their size field — the increment is
        // loaded, so `p` is not a recognizable induction pointer.
        assign(p, var(arena_start)),
        while_(
            lt(var(p), var(arena_stop)),
            vec![
                assign(sz, load(deref(var(p), ElemTy::I64, 0))),
                assign(acc, add(var(acc), load(deref(var(p), ElemTy::I64, 8)))),
                work(8),
                assign(p, add(var(p), var(sz))),
            ],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let htab_base = heap.alloc_array(handles as u64, 8);
    bindings.bind_array(htab, htab_base);
    let mult_base = heap.alloc_array((mrows * mcols) as u64, 8);
    bindings.bind_array(mult, mult_base);
    // Arena: variable-size objects, 32–128 bytes, size header first.
    let mut r = util::rng(254);
    let arena_base = heap.alloc(arena_objs as u64 * 128, 64);
    let mut off = 0i64;
    for _ in 0..arena_objs {
        let size = r.gen_range(2..=8) * 16i64;
        memory.write_i64(arena_base.offset(off), size);
        memory.write_i64(arena_base.offset(off + 8), off % 1009);
        off += size;
    }
    let arena_end = arena_base.offset(off);
    bindings.bind_var(arena_start, arena_base.0 as i64);
    bindings.bind_var(arena_stop, arena_end.0 as i64);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn only_the_affine_half_is_hinted() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.spatial >= 1, "handle sweep spatial");
        // The arena derefs (size + payload) stay unhinted: p += *(p)
        // is not a constant-increment induction pointer.
        assert!((cs.hinted() as u32) < cs.mem_refs);
    }

    #[test]
    fn srp_outperforms_grp_on_unhintable_sweeps() {
        // Table 5's gap row: SRP coverage 97.6% vs GRP 52.8% — SRP wins
        // on the references the compiler cannot mark (the data-dependent
        // arena walk and the over-L2-distance column sweep), while GRP's
        // traffic stays at baseline (179K == 179K).
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            srp.speedup_vs(&base) > grp.speedup_vs(&base) * 1.1,
            "SRP {:.2} vs GRP {:.2}",
            srp.speedup_vs(&base),
            grp.speedup_vs(&base)
        );
        assert!(
            srp.coverage_vs(&base) >= grp.coverage_vs(&base),
            "SRP coverage at least GRP's"
        );
        assert!(grp.traffic_vs(&base) < 1.2, "{}", grp.traffic_vs(&base));
    }

    #[test]
    fn aggressive_policy_pays_traffic_for_nothing_on_gap() {
        // §5.4: the aggressive policy "degrades performance by 2% overall
        // and increases traffic by an additional 5%" — gap's column sweep
        // is the canonical victim: reuse distance beyond the L2.
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let def = b.run(Scheme::GrpVar, &cfg);
        let aggr = b.run(Scheme::GrpAggressive, &cfg);
        assert!(
            aggr.traffic_vs(&base) > def.traffic_vs(&base) * 1.15,
            "aggressive {:.2}× vs default {:.2}×",
            aggr.traffic_vs(&base),
            def.traffic_vs(&base)
        );
        assert!(
            aggr.speedup_vs(&base) < def.speedup_vs(&base) * 1.05,
            "…without a matching speedup"
        );
    }
}

//! `197.parser` — link-grammar natural-language parser.
//!
//! Dictionary lookups walk trie/list structures; Table 3 gives parser
//! the suite's largest `recursive pointer` census (1263 sites). The
//! nodes come from a custom pool allocator, so chains are laid out in
//! *mostly* allocation order — spatial prefetching recovers much of the
//! traversal (Table 5: SRP coverage 77.5%, GRP 56.0% at 82.5% accuracy).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::types::field;
use grp_ir::{ElemTy, FieldId, ProgramBuilder};

/// Builds parser at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let chains = scale.pick(64, 2_000, 6_000) as i64;
    let chain_len = scale.pick(8, 24, 40) as usize;

    let mut pb = ProgramBuilder::new("parser");
    let sid = pb.peek_struct_id();
    let dnode = pb.add_struct(
        "disjunct",
        vec![
            field("next", ElemTy::ptr_to(sid)),
            field("cost", ElemTy::I64),
            field("len", ElemTy::I64),
        ],
    );
    let next_f = FieldId(0);
    let cost_f = FieldId(1);
    let heads = pb.array("heads", ElemTy::ptr_to(sid), &[chains as u64]);
    let w = pb.var("w");
    let p = pb.var("p");
    let acc = pb.var("acc");

    let body = vec![for_(
        w,
        c(0),
        c(chains),
        1,
        vec![
            assign(p, load(arr(heads, vec![var(w)]))),
            while_(
                ne(var(p), c(0)),
                vec![
                    assign(acc, add(var(acc), load(fld(var(p), dnode, cost_f)))),
                    work(10),
                    assign(p, load(fld(var(p), dnode, next_f))),
                ],
            ),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let heads_base = heap.alloc_array(chains as u64, 8);
    bindings.bind_array(heads, heads_base);
    // Pool allocation: each chain's nodes are contiguous (24 B each),
    // with an occasional out-of-pool node (10%) modelling reuse of freed
    // slots — the source of the coverage gap between SRP and GRP.
    let mut r = util::rng(197);
    let mut stragglers: Vec<grp_mem::Addr> = Vec::new();
    for ch in 0..chains {
        let mut nodes = Vec::with_capacity(chain_len);
        for _ in 0..chain_len {
            if r.gen_bool(0.1) && !stragglers.is_empty() {
                let k = r.gen_range(0..stragglers.len());
                nodes.push(stragglers.swap_remove(k));
            } else {
                nodes.push(heap.alloc(24, 8));
            }
            if r.gen_bool(0.05) {
                stragglers.push(heap.alloc(24, 8));
            }
        }
        let head = util::link_chain(&mut memory, &nodes, 0);
        for (k, n) in nodes.iter().enumerate() {
            memory.write_i64(n.offset(8), k as i64);
        }
        memory.write_u64(heads_base.offset(ch * 8), head.0);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn traversal_is_recursive_and_heads_spatial() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.recursive >= 1);
        assert!(cs.pointer >= 2);
        assert!(cs.spatial >= 1, "heads[] array streams");
    }

    #[test]
    fn both_srp_and_grp_improve_parser() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(srp.speedup_vs(&base) > 1.05, "SRP {}", srp.speedup_vs(&base));
        assert!(grp.speedup_vs(&base) > 1.05, "GRP {}", grp.speedup_vs(&base));
        // GRP's traffic stays in SRP's neighbourhood or below (the pool
        // allocator makes SRP's regions efficient here; GRP adds the
        // two-blocks-per-pointer chase, so allow a small overshoot).
        assert!(grp.traffic.total_blocks() <= srp.traffic.total_blocks() * 11 / 10);
    }
}

//! `186.crafty` — chess search.
//!
//! Crafty's working set (bitboards, attack tables) fits comfortably in
//! the 1 MB L2: the paper measures a 0.4% L2 miss rate and drops crafty
//! from the performance figures, keeping it only in the static hint
//! census (Table 3). The kernel sweeps small attack tables repeatedly so
//! that after a cold warm-up pass everything hits.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds crafty at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let tables = 8i64;
    let entries = 4_096i64; // 8 × 4096 × 8 B = 256 KB working set
    let iters = scale.pick(4, 48, 120) as i64;
    let mut pb = ProgramBuilder::new("crafty");
    let attacks = pb.array("attacks", ElemTy::I64, &[tables as u64, entries as u64]);
    let occupied = pb.array("occupied", ElemTy::I64, &[entries as u64]);
    let t = pb.var("t");
    let tb = pb.var("tb");
    let sq = pb.var("sq");
    let acc = pb.var("acc");

    let body = vec![for_(
        t,
        c(0),
        c(iters),
        1,
        vec![for_(
            tb,
            c(0),
            c(tables),
            1,
            vec![for_(
                sq,
                c(0),
                c(entries),
                1,
                vec![assign(
                    acc,
                    add(
                        var(acc),
                        and_(
                            load(arr(attacks, vec![var(tb), var(sq)])),
                            load(arr(occupied, vec![var(sq)])),
                        ),
                    ),
                )],
            )],
        )],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let a_base = heap.alloc_array((tables * entries) as u64, 8);
    let o_base = heap.alloc_array(entries as u64, 8);
    for k in 0..entries {
        memory.write_i64(o_base.offset(k * 8), (k * 0x9E37) ^ 0x5555);
    }
    bindings.bind_array(attacks, a_base);
    bindings.bind_array(occupied, o_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn crafty_is_l2_resident() {
        let b = build(Scale::Small);
        let base = b.run(Scheme::NoPrefetch, &SimConfig::paper());
        assert!(
            base.l2.miss_ratio() < 0.05,
            "crafty's L2 miss ratio is negligible: {}",
            base.l2.miss_ratio()
        );
    }

    #[test]
    fn census_still_reports_hints() {
        // It stays in Table 3 even though perf figures drop it.
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.spatial >= 2);
        assert!(cs.hinted_ratio() > 0.2);
    }
}

//! `300.twolf` — standard-cell place and route.
//!
//! §5.5: "mcf and twolf contain heavy traversals of short linked lists
//! and tree data structures, making them poor matches for the GRP
//! pointer prefetching or spatially-based schemes." Net terminals hang
//! off hash buckets in 1–3 node chains scattered across the heap; every
//! hop is a dependent miss with no spatial structure. Table 5: SRP
//! coverage 15.9% at 4.2% accuracy and ~16× traffic; GRP coverage 3.2%.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::types::field;
use grp_ir::{ElemTy, FieldId, ProgramBuilder};

/// Builds twolf at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let buckets = scale.pick(512, 30_000, 90_000) as i64;
    let lookups = scale.pick(512, 30_000, 90_000) as i64;

    let mut pb = ProgramBuilder::new("twolf");
    let sid = pb.peek_struct_id();
    let term = pb.add_struct(
        "termbox",
        vec![
            field("next", ElemTy::ptr_to(sid)),
            field("xy", ElemTy::I64),
        ],
    );
    let next_f = FieldId(0);
    let xy_f = FieldId(1);
    let table = pb.array("table", ElemTy::ptr_to(sid), &[buckets as u64]);
    let i = pb.var("i");
    let h = pb.var("h");
    let p = pb.var("p");
    let acc = pb.var("acc");

    let body = vec![for_(
        i,
        c(0),
        c(lookups),
        1,
        vec![
            // Pseudo-random bucket choice (non-affine).
            assign(h, and_(mul(var(i), c(0x9E3779B1u32 as i64)), c(buckets - 1))),
            assign(p, load(arr(table, vec![var(h)]))),
            work(14),
            while_(
                ne(var(p), c(0)),
                vec![
                    assign(acc, add(var(acc), load(fld(var(p), term, xy_f)))),
                    assign(p, load(fld(var(p), term, next_f))),
                ],
            ),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let table_base = heap.alloc_array(buckets as u64, 8);
    bindings.bind_array(table, table_base);
    // Scatter nodes: allocate a big slab and place nodes at random slots.
    let mut r = util::rng(300);
    let slots = (buckets * 4) as u64;
    let slab = heap.alloc(slots * 64, 64);
    let perm = util::permutation(&mut r, slots);
    let mut next_slot = 0usize;
    let mut take = || {
        let a = slab.offset(perm[next_slot] as i64 * 64);
        next_slot += 1;
        a
    };
    for bkt in 0..buckets {
        let len = 1 + (r.gen_range(0..100) % 3);
        let nodes: Vec<_> = (0..len).map(|_| take()).collect();
        let head = util::link_chain(&mut memory, &nodes, 0);
        for n in &nodes {
            memory.write_i64(n.offset(8), bkt);
        }
        memory.write_u64(table_base.offset(bkt * 8), head.0);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn chains_are_pointer_hinted_but_lookups_not_spatial() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.pointer >= 2);
        assert!(cs.recursive >= 1);
        // The hash-indexed bucket load is not affine → not spatial.
        assert!(cs.spatial <= 1, "spatial={}", cs.spatial);
    }

    #[test]
    fn nothing_helps_twolf_much() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        for s in [Scheme::Stride, Scheme::Srp, Scheme::GrpVar] {
            let r = b.run(s, &cfg);
            let sp = r.speedup_vs(&base);
            assert!(
                (0.85..1.25).contains(&sp),
                "{s}: speedup {sp} out of the nothing-works band"
            );
        }
    }

    #[test]
    fn srp_burns_bandwidth_for_nothing() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let srp = b.run(Scheme::Srp, &cfg);
        let grp = b.run(Scheme::GrpVar, &cfg);
        assert!(
            srp.traffic_vs(&base) > 3.0,
            "SRP traffic explodes on twolf: {:.1}×",
            srp.traffic_vs(&base)
        );
        assert!(
            grp.traffic_vs(&base) < srp.traffic_vs(&base) / 2.0,
            "GRP stays restrained: {:.1}×",
            grp.traffic_vs(&base)
        );
    }
}

//! `168.wupwise` — lattice QCD (complex dense linear algebra).
//!
//! The hot kernels (`zgemm`/`zaxpy`) stream unit-stride over large
//! complex matrices. Table 3 shows a purely spatial hint profile (152
//! spatial, 0 pointer); Table 5 shows SRP/GRP covering ~96% of misses.
//! Complex numbers are modelled as interleaved (re, im) f64 pairs.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds wupwise at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let n = scale.pick(32, 192, 320) as i64; // matrix is n×n complex
    let reps = scale.pick(1, 2, 3) as i64;

    let mut pb = ProgramBuilder::new("wupwise");
    // m: n×n complex matrix (2 f64 per element); x, y: complex vectors.
    let m = pb.array("m", ElemTy::F64, &[n as u64, 2 * n as u64]);
    let x = pb.array("x", ElemTy::F64, &[2 * n as u64]);
    let y = pb.array("y", ElemTy::F64, &[2 * n as u64]);
    let t = pb.var("t");
    let i = pb.var("i");
    let j = pb.var("j");
    let re = pb.var("re");
    let im = pb.var("im");

    // y(i) = Σ_j m(i,j) * x(j), complex — the zgemv backbone of zgemm.
    let body = vec![for_(
        t,
        c(0),
        c(reps),
        1,
        vec![for_(
            i,
            c(0),
            c(n),
            1,
            vec![
                assign(re, f(0.0)),
                assign(im, f(0.0)),
                for_(
                    j,
                    c(0),
                    c(n),
                    1,
                    vec![
                        // (a+bi)(c+di): four loads, unit stride over the row.
                        assign(
                            re,
                            add(
                                var(re),
                                sub(
                                    mul(
                                        load(arr(m, vec![var(i), mul(c(2), var(j))])),
                                        load(arr(x, vec![mul(c(2), var(j))])),
                                    ),
                                    mul(
                                        load(arr(m, vec![var(i), add(mul(c(2), var(j)), c(1))])),
                                        load(arr(x, vec![add(mul(c(2), var(j)), c(1))])),
                                    ),
                                ),
                            ),
                        ),
                        assign(
                            im,
                            add(
                                var(im),
                                add(
                                    mul(
                                        load(arr(m, vec![var(i), mul(c(2), var(j))])),
                                        load(arr(x, vec![add(mul(c(2), var(j)), c(1))])),
                                    ),
                                    mul(
                                        load(arr(m, vec![var(i), add(mul(c(2), var(j)), c(1))])),
                                        load(arr(x, vec![mul(c(2), var(j))])),
                                    ),
                                ),
                            ),
                        ),
                    ],
                ),
                store(arr(y, vec![mul(c(2), var(i))]), var(re)),
                store(arr(y, vec![add(mul(c(2), var(i)), c(1))]), var(im)),
            ],
        )],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let m_base = heap.alloc_array((n * 2 * n) as u64, 8);
    let x_base = heap.alloc_array(2 * n as u64, 8);
    let y_base = heap.alloc_array(2 * n as u64, 8);
    util::fill_f64(&mut memory, x_base, 2 * n as u64, |k| 1.0 / (k + 1) as f64);
    bindings.bind_array(m, m_base);
    bindings.bind_array(x, x_base);
    bindings.bind_array(y, y_base);

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn hint_profile_is_purely_spatial() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert!(cs.spatial >= 8, "matrix/vector refs all spatial: {}", cs.spatial);
        assert_eq!(cs.pointer, 0, "Table 3: wupwise has no pointer hints");
        assert_eq!(cs.recursive, 0);
        assert_eq!(cs.indirect, 0);
    }

    #[test]
    fn region_prefetching_covers_the_matrix_stream() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let base = b.run(Scheme::NoPrefetch, &cfg);
        let grp = b.run(Scheme::GrpFix, &cfg);
        assert!(
            grp.speedup_vs(&base) > 1.1,
            "speedup {}",
            grp.speedup_vs(&base)
        );
        assert!(grp.coverage_vs(&base) > 0.5, "coverage {}", grp.coverage_vs(&base));
    }
}

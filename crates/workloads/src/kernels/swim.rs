//! `171.swim` — shallow-water modelling.
//!
//! Table 6: "transpose array access" causes 92% of swim's remaining L2
//! misses, and §5.5 adds that "swim has a low IPC due to pathological
//! array conflicts". The reproduction runs the two access styles the
//! source mixes:
//!
//! * unit-stride 5-point stencils over `u`, `v`, `p` (spatial-hinted,
//!   prefetches cover them), and
//! * a column-major sweep `p(j, i)` whose 8·N-byte row stride is a large
//!   power of two, so successive rows collide in a handful of L2 sets —
//!   the pathological conflicts.
//!
//! GRP is expected to match SRP's performance at a fraction of the
//! traffic (the paper reports GRP *beating* SRP on swim by >10% thanks to
//! lower bandwidth pressure), with a large residual gap versus perfect L2.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds swim at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    // N×N f64 grids; N a power of two so the transposed sweep conflicts.
    let n = scale.pick(64, 512, 1024) as i64;
    let sweeps = scale.pick(1, 1, 2) as i64;

    let mut pb = ProgramBuilder::new("swim");
    let u = pb.array("u", ElemTy::F64, &[n as u64, n as u64]);
    let v = pb.array("v", ElemTy::F64, &[n as u64, n as u64]);
    let p = pb.array("p", ElemTy::F64, &[n as u64, n as u64]);
    let unew = pb.array("unew", ElemTy::F64, &[n as u64, n as u64]);
    let t = pb.var("t");
    let i = pb.var("i");
    let j = pb.var("j");
    // The Fortran source's grid extent is a runtime parameter: the
    // transposed sweep's reuse distance is symbolic to the compiler
    // (§4.1), so only the aggressive §5.4 policy marks it spatial.
    let nsym = pb.var("n");
    let acc = pb.var("acc");

    let body = vec![for_(
        t,
        c(0),
        c(sweeps),
        1,
        vec![
            // Stencil: unew(i,j) = u(i,j) + v(i,j-1) + p(i,j+1) …
            for_(
                i,
                c(1),
                c(n - 1),
                1,
                vec![for_(
                    j,
                    c(1),
                    c(n - 1),
                    1,
                    vec![store(
                        arr(unew, vec![var(i), var(j)]),
                        add(
                            add(
                                load(arr(u, vec![var(i), var(j)])),
                                load(arr(v, vec![var(i), sub(var(j), c(1))])),
                            ),
                            load(arr(p, vec![var(i), add(var(j), c(1))])),
                        ),
                    )],
                )],
            ),
            // Transposed reduction: acc += p(j, i) — the conflict sweep,
            // with a symbolic inner bound.
            for_(
                i,
                c(0),
                c(n),
                1,
                vec![for_(
                    j,
                    c(0),
                    var(nsym),
                    1,
                    vec![assign(
                        acc,
                        add(var(acc), load(arr(p, vec![var(j), var(i)]))),
                    )],
                )],
            ),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let cells = (n * n) as u64;
    let mut bindings = program.bindings();
    bindings.bind_var(nsym, n);
    for (arr_id, name_salt) in [(u, 1u64), (v, 2), (p, 3), (unew, 4)] {
        let base = heap.alloc_array(cells, 8);
        util::fill_f64(&mut memory, base, cells.min(4096), |k| {
            (k as f64 * 0.01) + name_salt as f64
        });
        bindings.bind_array(arr_id, base);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

/// The §5.5 source fix: "we can prevent that benchmark from being
/// memory-bound by manually applying loop distribution and loop
/// permutation". This variant permutes the transposed sweep so the
/// spatial dimension is innermost.
pub fn build_permuted(scale: Scale) -> BuiltWorkload {
    let n = scale.pick(64, 512, 1024) as i64;
    let sweeps = scale.pick(1, 1, 2) as i64;

    let mut pb = ProgramBuilder::new("swim-permuted");
    let p = pb.array("p", ElemTy::F64, &[n as u64, n as u64]);
    let t = pb.var("t");
    let i = pb.var("i");
    let j = pb.var("j");
    let acc = pb.var("acc");
    let body = vec![for_(
        t,
        c(0),
        c(sweeps),
        1,
        vec![for_(
            j,
            c(0),
            c(n),
            1,
            vec![for_(
                i,
                c(0),
                c(n),
                1,
                // p(j, i) with i innermost: unit stride, no conflicts.
                vec![assign(
                    acc,
                    add(var(acc), load(arr(p, vec![var(j), var(i)]))),
                )],
            )],
        )],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    bindings.bind_array(p, heap.alloc_array((n * n) as u64, 8));

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn stencil_refs_are_spatial_but_transpose_is_policy_dependent() {
        let b = build(Scale::Small);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        // Stencil refs (u, v, p, unew) are spatial; at this size the
        // transposed p(j,i) column footprint (512·8 B per outer step)
        // also fits the reuse bound, mirroring how the real compiler
        // marks swim's arrays heavily (Table 3: 115 of 250 sites).
        assert!(cs.spatial >= 4, "spatial={}", cs.spatial);
        assert_eq!(cs.pointer, 0);
        assert_eq!(cs.recursive, 0);
    }

    #[test]
    fn transposed_sweep_conflicts_dominate_misses() {
        let b = build(Scale::Test);
        let base = b.run(Scheme::NoPrefetch, &SimConfig::paper());
        // The transpose loop's reference is the last array ref in the
        // kernel; attribution must show it dominating.
        let top = base.attribution.top(1);
        assert!(!top.is_empty());
        assert!(
            base.l2.demand_misses > 0,
            "swim misses in L2 even at test scale"
        );
    }

    #[test]
    fn grp_never_exceeds_srp_traffic() {
        let b = build(Scale::Test);
        let srp = b.run(Scheme::Srp, &SimConfig::paper());
        let grp = b.run(Scheme::GrpVar, &SimConfig::paper());
        assert!(grp.traffic.total_blocks() <= srp.traffic.total_blocks());
    }

    #[test]
    fn loop_permutation_recovers_swim() {
        // §5.5: permuting the transposed sweep makes it unit-stride; with
        // prefetching the permuted sweep reaches most of perfect-L2.
        let cfg = SimConfig::paper();
        let perm = build_permuted(Scale::Small);
        let base = perm.run(Scheme::NoPrefetch, &cfg);
        let grp = perm.run(Scheme::GrpVar, &cfg);
        let perfect = perm.run(Scheme::PerfectL2, &cfg);
        assert!(grp.speedup_vs(&base) > 1.2, "{}", grp.speedup_vs(&base));
        assert!(
            grp.gap_vs_perfect(&perfect) < 35.0,
            "permuted swim is no longer hopelessly memory-bound: {:.1}%",
            grp.gap_vs_perfect(&perfect)
        );
    }

    #[test]
    fn permuted_sweep_is_fully_spatial() {
        let b = build_permuted(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        assert_eq!(cs.spatial, cs.mem_refs, "every ref unit-stride after permutation");
    }
}

//! `179.art` — adaptive resonance theory neural network.
//!
//! §5.5: "art is bandwidth bound"; Table 6 attributes its misses to
//! bandwidth (24%) and a *transposed heap array access* (36%). The
//! network sweeps f64 weight rows forward (f1 layer) and the same
//! weights column-wise (f2 layer) through a heap array of row pointers.
//! All prefetchers improve art but none closes the gap — the channels
//! are the bottleneck (the paper notes "larger caches and wider channels
//! improve art appreciably", which the bandwidth-sweep ablation bench
//! reproduces).

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds art at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let f1 = scale.pick(1_024, 20_000, 60_000) as i64; // f1 layer size
    let f2 = scale.pick(8, 24, 32) as i64; // f2 categories
    let mut pb = ProgramBuilder::new("art");
    // bus: heap array of f2 row pointers, each row f1 f64 weights.
    let bus = pb.heap_array("bus", ElemTy::ptr(), &[f2 as u64]);
    let tds = pb.array("tds", ElemTy::F64, &[f2 as u64, f1 as u64]);
    let i = pb.var("i");
    let j = pb.var("j");
    let acc = pb.var("acc");
    let row = pb.var("row");

    let body = vec![
        // Forward pass: row-major streaming over tds (bandwidth).
        for_(
            j,
            c(0),
            c(f2),
            1,
            vec![for_(
                i,
                c(0),
                c(f1),
                1,
                vec![
                    assign(acc, add(var(acc), load(arr(tds, vec![var(j), var(i)])))),
                    work(2),
                ],
            )],
        ),
        // Match phase: for each f1 element, walk all categories via the
        // heap rows — the transposed heap-array access of Table 6.
        for_(
            i,
            c(0),
            c(f1),
            1,
            vec![for_(
                j,
                c(0),
                c(f2),
                1,
                vec![
                    assign(row, load(arr(bus, vec![var(j)]))),
                    assign(
                        acc,
                        add(var(acc), load(ptr_index(var(row), ElemTy::F64, var(i)))),
                    ),
                ],
            )],
        ),
    ];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let tds_base = heap.alloc_array((f2 * f1) as u64, 8);
    bindings.bind_array(tds, tds_base);
    let bus_base = heap.alloc_array(f2 as u64, 8);
    bindings.bind_array(bus, bus_base);
    for k in 0..f2 {
        let row = heap.alloc_array(f1 as u64, 8);
        memory.write_u64(bus_base.offset(k * 8), row.0);
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn hint_profile_mixes_spatial_and_pointer() {
        let b = build(Scale::Test);
        let cs = census(&b.program, &b.hints(&AnalysisConfig::default()));
        // Table 3 gives art a high ratio (77.6%) with both spatial and
        // pointer hints (the heap row pointers).
        assert!(cs.spatial >= 2);
        assert!(cs.pointer >= 1, "bus[j] is a spatial heap pointer array");
        assert!(cs.hinted_ratio() > 0.5);
    }

    #[test]
    fn art_remains_memory_bound_under_grp() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let grp = b.run(Scheme::GrpVar, &cfg);
        let perfect = b.run(Scheme::PerfectL2, &cfg);
        assert!(
            grp.gap_vs_perfect(&perfect) > 10.0,
            "art stays far from perfect L2 (bandwidth bound): {:.1}%",
            grp.gap_vs_perfect(&perfect)
        );
    }

    #[test]
    fn wider_channels_help_art() {
        // §5.5's bandwidth observation: doubling channels shrinks the gap.
        let b = build(Scale::Test);
        let mut narrow = SimConfig::paper();
        narrow.dram.channels = 2;
        let mut wide = SimConfig::paper();
        wide.dram.channels = 8;
        let slow = b.run(Scheme::GrpVar, &narrow);
        let fast = b.run(Scheme::GrpVar, &wide);
        assert!(fast.cycles < slow.cycles);
    }
}

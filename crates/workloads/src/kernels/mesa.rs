//! `177.mesa` — software OpenGL rasterizer.
//!
//! Vertex-pipeline stages process one small attribute row per vertex:
//! many invocations of a short inner loop over a ~128-byte row reached
//! through a pointer table. This is the paper's flagship variable-size
//! case: Table 4 shows GRP/Var issuing 90.3% two-block regions and
//! cutting mesa's traffic from 6.55× to 1.11× of baseline while matching
//! GRP/Fix's performance.

use crate::kernels::util;
use crate::{BuiltWorkload, Scale};
use grp_ir::build::*;
use grp_ir::{ElemTy, ProgramBuilder};

/// Builds mesa at `scale`.
pub fn build(scale: Scale) -> BuiltWorkload {
    let verts = scale.pick(512, 16_000, 48_000) as i64;
    let attrs = 12i64; // 12 f64 attributes ≈ 96 B ≈ 2 blocks per vertex row
    let mut pb = ProgramBuilder::new("mesa");
    let vtab = pb.heap_array("vtab", ElemTy::ptr(), &[verts as u64]);
    let out = pb.array("out", ElemTy::F64, &[verts as u64]);
    let v = pb.var("v");
    let k = pb.var("k");
    let row = pb.var("row");
    let acc = pb.var("acc");

    let body = vec![for_(
        v,
        c(0),
        c(verts),
        1,
        vec![
            assign(row, load(arr(vtab, vec![var(v)]))),
            assign(acc, f(0.0)),
            // Short per-vertex transform loop: the var-size region case.
            for_(
                k,
                c(0),
                c(attrs),
                1,
                vec![assign(
                    acc,
                    add(var(acc), load(ptr_index(var(row), ElemTy::F64, var(k)))),
                )],
            ),
            store(arr(out, vec![var(v)]), var(acc)),
            work(24),
        ],
    )];
    let program = pb.finish(body);

    let mut heap = util::heap();
    let mut memory = grp_mem::Memory::new();
    let mut bindings = program.bindings();
    let vtab_base = heap.alloc_array(verts as u64, 8);
    bindings.bind_array(vtab, vtab_base);
    let out_base = heap.alloc_array(verts as u64, 8);
    bindings.bind_array(out, out_base);
    // Vertex rows live in a display-list arena in *creation* order, which
    // differs from traversal order: a 4 KB region around one row drags in
    // ~30 blocks of unrelated rows (the Table 4 waste GRP/Var avoids).
    let mut r = util::rng(77);
    let slab = heap.alloc(verts as u64 * 256, 64);
    let slots = util::permutation(&mut r, verts as u64);
    for i in 0..verts {
        let row = slab.offset(slots[i as usize] as i64 * 256);
        memory.write_u64(vtab_base.offset(i * 8), row.0);
        for k in 0..attrs {
            memory.write_f64(row.offset(k * 8), r.gen_range(-1.0..1.0));
        }
    }

    BuiltWorkload {
        program,
        bindings,
        memory,
        heap: heap.range(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_compiler::{census, AnalysisConfig};
    use grp_core::{Scheme, SimConfig};

    #[test]
    fn row_loop_gets_a_size_coefficient() {
        let b = build(Scale::Test);
        let h = b.hints(&AnalysisConfig::default());
        let cs = census(&b.program, &h);
        assert!(cs.sized >= 1, "the per-vertex loop is variable-sized");
        assert!(cs.spatial >= 2);
        assert!(cs.pointer >= 1, "vtab is a heap pointer array");
    }

    #[test]
    fn var_regions_slash_mesa_traffic() {
        let b = build(Scale::Small);
        let cfg = SimConfig::paper();
        let fix = b.run(Scheme::GrpFix, &cfg);
        let var = b.run(Scheme::GrpVar, &cfg);
        assert!(
            (var.traffic.total_blocks() as f64)
                < fix.traffic.total_blocks() as f64 * 0.7,
            "GRP/Var traffic {} vs GRP/Fix {}",
            var.traffic.total_blocks(),
            fix.traffic.total_blocks()
        );
        // Performance stays in the same band (Table 4: 1.11 vs 6.55
        // traffic at roughly equal IPC).
        assert!(var.cycles <= fix.cycles * 23 / 20);
    }

    #[test]
    fn var_regions_are_mostly_small() {
        let b = build(Scale::Small);
        let var = b.run(Scheme::GrpVar, &SimConfig::paper());
        let hist = var.engine.region_size_hist;
        let small: u64 = hist[0..=2].iter().sum(); // ≤4-block regions
        let big = hist[6];
        assert!(
            small > big,
            "small regions dominate (Table 4): {hist:?}"
        );
    }
}

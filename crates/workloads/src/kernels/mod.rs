//! The benchmark kernels, one module per SPEC CPU2000 program (plus
//! sphinx). Each module's docs state which paper-documented behaviour it
//! reproduces; DESIGN.md carries the full substitution table.

pub mod ammp;
pub mod applu;
pub mod apsi;
pub mod art;
pub mod bzip2;
pub mod crafty;
pub mod equake;
pub mod gap;
pub mod gzip;
pub mod mcf;
pub mod mesa;
pub mod mgrid;
pub mod parser;
pub mod sphinx;
pub mod swim;
pub mod twolf;
pub mod vpr;
pub mod wupwise;

pub mod util;

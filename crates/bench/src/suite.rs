//! Memoizing suite runner: one simulation per `(benchmark, scheme)`.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use grp_core::{RunResult, Scheme, SimConfig};
use grp_workloads::{all, BuiltWorkload, Scale, Workload};

use crate::sched::{self, CellJob, ReplayMode, WorkloadCache};

/// Problem-size selection for a whole experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SuiteScale {
    /// Tiny (CI / unit tests).
    Test,
    /// Reduced (minutes for the full evaluation).
    #[default]
    Small,
    /// Full size (tens of minutes).
    Paper,
}

impl SuiteScale {
    /// The per-workload scale this suite scale implies.
    pub fn workload_scale(self) -> Scale {
        match self {
            SuiteScale::Test => Scale::Test,
            SuiteScale::Small => Scale::Small,
            SuiteScale::Paper => Scale::Paper,
        }
    }

    /// Parses `test` / `small` / `paper`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "test" => Some(SuiteScale::Test),
            "small" => Some(SuiteScale::Small),
            "paper" => Some(SuiteScale::Paper),
            _ => None,
        }
    }
}

/// Parses `--scale <s>` from an argv slice: `Small` when the flag is
/// absent, an error naming the valid scales on a typo, a missing or
/// flag-like value, or a duplicated flag.
pub fn parse_scale_args(args: &[String]) -> Result<SuiteScale, String> {
    match crate::args::strict_value(args, "--scale", "test, small, paper")? {
        None => Ok(SuiteScale::default()),
        Some(s) => SuiteScale::parse(&s)
            .ok_or_else(|| format!("unknown scale '{s}' (valid: test, small, paper)")),
    }
}

/// Parses `--scale <s>` from argv, defaulting to `Small` when the flag
/// is absent and exiting with an error on a typo (a silent `Small`
/// fallback once burned a paper-scale run down to the small inputs).
pub fn scale_from_args() -> SuiteScale {
    let args: Vec<String> = std::env::args().collect();
    parse_scale_args(&args).unwrap_or_else(|e| {
        crate::telemetry::log::error("suite", &e);
        std::process::exit(2);
    })
}

/// Memoizing runner over the benchmark registry.
pub struct Suite {
    scale: SuiteScale,
    cfg: SimConfig,
    built: HashMap<&'static str, Arc<BuiltWorkload>>,
    results: HashMap<(&'static str, Scheme), RunResult>,
    verbose: bool,
    panic_kernel: Option<&'static str>,
    replay: ReplayMode,
}

impl Suite {
    /// A suite at `scale` with the paper's platform configuration.
    pub fn new(scale: SuiteScale) -> Self {
        Self {
            scale,
            cfg: SimConfig::paper(),
            built: HashMap::new(),
            results: HashMap::new(),
            verbose: false,
            panic_kernel: None,
            replay: ReplayMode::default(),
        }
    }

    /// Selects the replay tier and trace cache ([`ReplayMode`]) for
    /// every subsequent [`Suite::run`] / precompute. Results are
    /// bit-identical across modes; only setup/replay cost shifts.
    pub fn with_replay(mut self, replay: ReplayMode) -> Self {
        self.replay = replay;
        self
    }

    /// Test seam: makes the precompute worker panic when it reaches
    /// `name`, so the panic-isolation path stays covered by a test.
    #[doc(hidden)]
    pub fn inject_panic_kernel(&mut self, name: &'static str) {
        self.panic_kernel = Some(name);
    }

    /// Enables progress logging to stderr.
    pub fn verbose(mut self) -> Self {
        self.verbose = true;
        self
    }

    /// Overrides the platform configuration (ablations).
    pub fn with_config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// The platform configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The benchmark registry entry for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn workload(&self, name: &str) -> &'static Workload {
        grp_workloads::by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"))
    }

    /// The built (setup-complete) workload, building it on first use.
    /// Held behind an `Arc` so the cell scheduler can share it
    /// read-only across workers without a rebuild or a deep clone.
    pub fn built(&mut self, name: &'static str) -> &BuiltWorkload {
        let scale = self.scale.workload_scale();
        self.built.entry(name).or_insert_with(|| {
            Arc::new(grp_workloads::by_name(name).expect("registered").build(scale))
        })
    }

    /// Runs (or recalls) `name` under `scheme`.
    pub fn run(&mut self, name: &'static str, scheme: Scheme) -> RunResult {
        if let Some(r) = self.results.get(&(name, scheme)) {
            return r.clone();
        }
        if self.verbose {
            crate::telemetry::log::info("suite", &format!("running {name} / {scheme}…"));
        }
        let cfg = self.cfg;
        let r = if self.replay.is_default() {
            self.built(name).run(scheme, &cfg)
        } else {
            // The replay-mode path: a trace-cache hit skips the build,
            // so the workload is only materialized inside the closure
            // on a miss.
            let scale = self.scale.workload_scale();
            let mode = self.replay.clone();
            let built = &mut self.built;
            let (r, _events, _setup, _replay) =
                sched::run_cell(name, scale, scheme, &cfg, &mode, || {
                    Ok(built
                        .entry(name)
                        .or_insert_with(|| {
                            Arc::new(
                                grp_workloads::by_name(name).expect("registered").build(scale),
                            )
                        })
                        .clone())
                })
                .unwrap_or_else(|e| panic!("{e}"));
            r
        };
        self.results.insert((name, scheme), r.clone());
        r
    }

    /// Pre-computes `(benchmark, scheme)` results in parallel across OS
    /// threads (one worker per benchmark; schemes run sequentially within
    /// a worker so each built workload is reused). Subsequent
    /// [`Suite::run`] calls hit the memo table.
    pub fn precompute(&mut self, names: &[&'static str], schemes: &[Scheme]) {
        self.precompute_jobs(names, schemes, None);
    }

    /// [`Suite::precompute`] with an explicit worker count (`--jobs N` /
    /// `GRP_JOBS`, see [`crate::args::parse_jobs_args`]); `None` uses
    /// available parallelism. Results are bit-identical regardless of
    /// the worker count — each `(benchmark, scheme)` simulation is
    /// independent and internally deterministic.
    ///
    /// # Panics
    ///
    /// Panics with the summary from [`Suite::precompute_jobs_result`]
    /// if any kernel's worker panicked (after its retry); every
    /// surviving kernel's results have already landed in the memo
    /// table at that point.
    pub fn precompute_jobs(
        &mut self,
        names: &[&'static str],
        schemes: &[Scheme],
        jobs: Option<usize>,
    ) {
        if let Err(e) = self.precompute_jobs_result(names, schemes, jobs) {
            panic!("{e}");
        }
    }

    /// [`Suite::precompute_jobs`], reporting worker panics instead of
    /// propagating them. Each kernel's job (build + every scheme) is
    /// panic-isolated and retried once; a kernel whose job panics twice
    /// is named, with its panic message, in the returned error while
    /// every other kernel's results still land in the memo table — one
    /// poisoned benchmark must not take down a whole suite run.
    pub fn precompute_jobs_result(
        &mut self,
        names: &[&'static str],
        schemes: &[Scheme],
        jobs: Option<usize>,
    ) -> Result<(), String> {
        let scale = self.scale.workload_scale();
        let cfg = self.cfg;
        let verbose = self.verbose;
        let panic_kernel = self.panic_kernel;
        let threads = jobs
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            })
            .max(1)
            .min(names.len().max(1));
        // Drain order: largest kernels first, FIFO within a weight class
        // (a plain `Vec::pop` here used to silently *reverse* the
        // caller's order, so the heaviest kernels could land last and
        // stretch the tail).
        // Precompute progress lands in the process registry so `all
        // --registry-out` (and any later scrape) sees the warm-up
        // phase, not just the fleet counters of the cell scheduler.
        let shard = crate::telemetry::process_shard();
        let kernels_ok = shard.counter("grp_suite_precompute_kernels_total", &[("status", "ok")]);
        let kernels_panicked =
            shard.counter("grp_suite_precompute_kernels_total", &[("status", "panicked")]);
        let retries = shard.counter("grp_suite_precompute_retries_total", &[]);
        let cells_done = shard.counter("grp_suite_precompute_cells_total", &[]);
        let work: std::sync::Mutex<VecDeque<&'static str>> =
            std::sync::Mutex::new(sched::largest_first(names).into());
        let results: std::sync::Mutex<Vec<(&'static str, Scheme, RunResult)>> =
            std::sync::Mutex::new(Vec::new());
        let builts: std::sync::Mutex<Vec<(&'static str, BuiltWorkload)>> =
            std::sync::Mutex::new(Vec::new());
        let failures: std::sync::Mutex<Vec<(&'static str, String)>> =
            std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let Some(name) = work.lock().expect("work queue").pop_front() else {
                        return;
                    };
                    if verbose {
                        crate::telemetry::log::info("suite", &format!("[precompute] {name}…"));
                    }
                    // The whole per-kernel job, buffered locally so a
                    // panic mid-scheme leaves no partial results behind.
                    let job = || {
                        if panic_kernel == Some(name) {
                            panic!("injected precompute panic in {name}");
                        }
                        let built =
                            grp_workloads::by_name(name).expect("registered").build(scale);
                        let rs: Vec<(&'static str, Scheme, RunResult)> = schemes
                            .iter()
                            .map(|&scheme| (name, scheme, built.run(scheme, &cfg)))
                            .collect();
                        (built, rs)
                    };
                    let outcome = catch_unwind(AssertUnwindSafe(&job)).or_else(|_| {
                        retries.inc();
                        catch_unwind(AssertUnwindSafe(&job))
                    });
                    match outcome {
                        Ok((built, rs)) => {
                            kernels_ok.inc();
                            cells_done.add(rs.len() as u64);
                            results.lock().expect("results").extend(rs);
                            builts.lock().expect("builts").push((name, built));
                        }
                        Err(payload) => {
                            kernels_panicked.inc();
                            failures
                                .lock()
                                .expect("failures")
                                .push((name, panic_message(&*payload)));
                        }
                    }
                });
            }
        });
        // Hand the worker-built workloads to the memo table too: a later
        // built()/run() for an unmemoized scheme must not rebuild.
        for (name, built) in builts.into_inner().expect("builts") {
            self.built.insert(name, Arc::new(built));
        }
        for (name, scheme, r) in results.into_inner().expect("results") {
            self.results.insert((name, scheme), r);
        }
        let mut failed = failures.into_inner().expect("failures");
        if failed.is_empty() {
            return Ok(());
        }
        failed.sort_by_key(|(name, _)| *name);
        let detail: Vec<String> = failed
            .iter()
            .map(|(name, msg)| format!("{name}: {msg}"))
            .collect();
        Err(format!(
            "precompute: {}/{} kernel(s) panicked even after retry at {:?} scale — {}",
            failed.len(),
            names.len(),
            self.scale,
            detail.join("; ")
        ))
    }

    /// Warms the memo table through the **cell-granular** work-stealing
    /// scheduler ([`crate::sched`]): every `(benchmark, scheme)` cell is
    /// an independent unit of work, so a wide scheme row of one heavy
    /// kernel spreads across workers instead of serializing on the
    /// worker that built the kernel (the `precompute_jobs` granularity).
    /// Built workloads are shared read-only via the scheduler's
    /// [`WorkloadCache`] — seeded from, and adopted back into, this
    /// suite's built map, so schemes of the same kernel never rebuild.
    ///
    /// `jobs` is the worker count (`None` = available parallelism).
    /// Per-cell results are bit-identical to the serial [`Suite::run`]
    /// path for any worker count and steal order.
    ///
    /// # Errors
    ///
    /// Lists every failed cell (unknown kernel or a panic inside the
    /// cell) while the surviving cells' results still land in the memo
    /// table.
    pub fn precompute_cells(
        &mut self,
        names: &[&'static str],
        schemes: &[Scheme],
        jobs: Option<usize>,
    ) -> Result<(), String> {
        let scale = self.scale.workload_scale();
        let cache = WorkloadCache::new();
        for (name, built) in &self.built {
            cache.insert(name, scale, built.clone());
        }
        let cells: Vec<CellJob> = sched::grid_jobs(names, schemes, scale, self.cfg);
        let workers = jobs.unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        });
        let verbose = self.verbose;
        let results = &mut self.results;
        let mut failures: Vec<String> = Vec::new();
        let stats = sched::run_cells_mode(&cells, workers, &cache, &self.replay, |cell| {
            if verbose {
                crate::telemetry::log::log_kv(
                    crate::telemetry::log::Level::Info,
                    "suite",
                    "fleet cell done",
                    &[
                        ("bench", cell.kernel.into()),
                        ("scheme", cell.scheme.label().into()),
                        ("worker", (cell.worker as u64).into()),
                    ],
                );
            }
            match cell.outcome {
                Ok(r) => {
                    results.insert((cell.kernel, cell.scheme), r);
                }
                Err(e) => failures.push(format!("{}/{}: {e}", cell.kernel, cell.scheme)),
            }
        });
        // Adopt scheduler-built workloads so later built()/run() calls
        // for unmemoized schemes reuse them.
        for &name in names {
            if !self.built.contains_key(name) {
                if let Some(b) = cache.get(name, scale) {
                    self.built.insert(name, b);
                }
            }
        }
        if verbose {
            crate::telemetry::log::info(
                "suite",
                &format!(
                    "[fleet] {} cells on {} workers in {:.3}s ({} steals)",
                    stats.cells, stats.workers, stats.wall_seconds, stats.steals
                ),
            );
        }
        if failures.is_empty() {
            return Ok(());
        }
        failures.sort();
        Err(format!(
            "precompute_cells: {}/{} cell(s) failed at {:?} scale — {}",
            failures.len(),
            cells.len(),
            self.scale,
            failures.join("; ")
        ))
    }

    /// Names of the performance-figure benchmarks (crafty excluded).
    pub fn perf_names(&self) -> Vec<&'static str> {
        grp_workloads::perf_set().iter().map(|w| w.name).collect()
    }

    /// All registry names (Table 3 includes crafty).
    pub fn all_names(&self) -> Vec<&'static str> {
        all().iter().map(|w| w.name).collect()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(SuiteScale::parse("test"), Some(SuiteScale::Test));
        assert_eq!(SuiteScale::parse("small"), Some(SuiteScale::Small));
        assert_eq!(SuiteScale::parse("paper"), Some(SuiteScale::Paper));
        assert_eq!(SuiteScale::parse("big"), None);
        assert_eq!(SuiteScale::Test.workload_scale(), Scale::Test);
    }

    #[test]
    fn suite_memoizes_runs() {
        let mut s = Suite::new(SuiteScale::Test);
        let a = s.run("crafty", Scheme::NoPrefetch);
        let b = s.run("crafty", Scheme::NoPrefetch);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(s.results.len(), 1);
    }

    #[test]
    fn precompute_fills_the_memo_table() {
        let mut s = Suite::new(SuiteScale::Test);
        s.precompute(&["crafty", "sphinx"], &[Scheme::NoPrefetch, Scheme::PerfectL2]);
        assert_eq!(s.results.len(), 4);
        // Regression: the worker-built workloads must land in the built
        // cache too — a later built()/run() for an unmemoized scheme
        // used to rebuild the whole workload from scratch.
        assert!(s.built.contains_key("crafty"));
        assert!(s.built.contains_key("sphinx"));
        let before = Arc::as_ptr(s.built.get("crafty").expect("cached"));
        let after = s.built("crafty") as *const BuiltWorkload;
        assert_eq!(before, after, "built() must reuse the precomputed workload");
        // A later run() must not recompute (results are identical objects).
        let r = s.run("crafty", Scheme::NoPrefetch);
        assert!(r.cycles > 0);
    }

    #[test]
    fn scale_args_parse_and_error_path() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(|a| a.to_string()).collect() };
        // Absent flag: the documented Small default.
        assert_eq!(parse_scale_args(&argv(&["all"])), Ok(SuiteScale::Small));
        assert_eq!(
            parse_scale_args(&argv(&["all", "--scale", "paper"])),
            Ok(SuiteScale::Paper)
        );
        assert_eq!(
            parse_scale_args(&argv(&["all", "--scale", "test"])),
            Ok(SuiteScale::Test)
        );
        // Regression: a typo used to fall back silently to Small; it must
        // now surface an error that names the valid scales.
        let err = parse_scale_args(&argv(&["all", "--scale", "papr"])).unwrap_err();
        assert!(err.contains("papr"), "error names the bad value: {err}");
        assert!(err.contains("test, small, paper"), "error lists valid scales: {err}");
        let err = parse_scale_args(&argv(&["all", "--scale"])).unwrap_err();
        assert!(err.contains("requires a value"), "missing value is an error: {err}");
        // A duplicated flag must not silently pick one occurrence.
        let err =
            parse_scale_args(&argv(&["all", "--scale", "test", "--scale", "paper"])).unwrap_err();
        assert!(err.contains("more than once"), "{err}");
        // A value that is itself a flag must not be swallowed.
        let err = parse_scale_args(&argv(&["all", "--scale", "--verbose"])).unwrap_err();
        assert!(err.contains("--verbose"), "{err}");
        assert!(err.contains("test, small, paper"), "{err}");
    }

    #[test]
    fn precompute_matches_sequential_run() {
        let mut a = Suite::new(SuiteScale::Test);
        a.precompute(&["twolf"], &[Scheme::GrpVar]);
        let ra = a.run("twolf", Scheme::GrpVar);
        let mut b = Suite::new(SuiteScale::Test);
        let rb = b.run("twolf", Scheme::GrpVar);
        assert_eq!(ra, rb);
    }

    #[test]
    fn parallel_precompute_is_bit_identical_to_serial() {
        // Every counter of every (benchmark, scheme) result must match
        // the serial run() loop exactly, for any worker count —
        // scheduling order must not leak into results.
        let names = ["twolf", "mcf", "sphinx", "crafty"];
        let schemes = [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar];
        let mut serial = Suite::new(SuiteScale::Test);
        let mut expected = Vec::new();
        for name in names {
            for scheme in schemes {
                expected.push((name, scheme, serial.run(name, scheme)));
            }
        }
        for jobs in [Some(1), Some(3), None] {
            let mut par = Suite::new(SuiteScale::Test);
            par.precompute_jobs(&names, &schemes, jobs);
            for (name, scheme, want) in &expected {
                let got = par.run(name, *scheme);
                assert_eq!(
                    got, *want,
                    "{name}/{scheme:?} differs between serial and jobs={jobs:?}"
                );
            }
        }
    }

    #[test]
    fn precompute_isolates_a_panicking_kernel() {
        // Regression: a panicking worker used to tear down the whole
        // thread::scope, losing every other kernel's results. Now the
        // poisoned kernel is named (with its panic message) and the
        // survivors' results land.
        let mut s = Suite::new(SuiteScale::Test);
        s.inject_panic_kernel("crafty");
        let err = s
            .precompute_jobs_result(
                &["crafty", "sphinx", "twolf"],
                &[Scheme::NoPrefetch],
                Some(2),
            )
            .unwrap_err();
        assert!(err.contains("crafty"), "error names the kernel: {err}");
        assert!(err.contains("injected precompute panic"), "{err}");
        assert!(err.contains("1/3"), "error counts failures: {err}");
        assert!(err.contains("Test"), "error names the scale: {err}");
        // Survivors' results landed and the suite stays usable.
        assert!(s.results.contains_key(&("sphinx", Scheme::NoPrefetch)));
        assert!(s.results.contains_key(&("twolf", Scheme::NoPrefetch)));
        assert!(!s.results.contains_key(&("crafty", Scheme::NoPrefetch)));
        let r = s.run("sphinx", Scheme::NoPrefetch);
        assert!(r.cycles > 0);
    }

    #[test]
    fn precompute_cells_fills_the_memo_table_and_shares_builds() {
        let mut s = Suite::new(SuiteScale::Test);
        s.precompute_cells(
            &["crafty", "sphinx"],
            &[Scheme::NoPrefetch, Scheme::PerfectL2],
            Some(2),
        )
        .expect("clean grid");
        assert_eq!(s.results.len(), 4);
        // The scheduler-built workloads are adopted: built() reuses them.
        assert!(s.built.contains_key("crafty"));
        let before = Arc::as_ptr(s.built.get("crafty").expect("cached"));
        let after = s.built("crafty") as *const BuiltWorkload;
        assert_eq!(before, after, "built() must reuse the scheduler's workload");
        // And the memoized results match the serial path.
        let mut serial = Suite::new(SuiteScale::Test);
        assert_eq!(
            s.run("sphinx", Scheme::PerfectL2),
            serial.run("sphinx", Scheme::PerfectL2)
        );
    }

    #[test]
    fn precompute_cells_isolates_a_failing_cell() {
        let mut s = Suite::new(SuiteScale::Test);
        let err = s
            .precompute_cells(&["nope", "twolf"], &[Scheme::NoPrefetch], Some(2))
            .unwrap_err();
        assert!(err.contains("nope"), "error names the failing cell: {err}");
        assert!(err.contains("1/2"), "error counts failures: {err}");
        // The surviving cell's result landed and the suite stays usable.
        assert!(s.results.contains_key(&("twolf", Scheme::NoPrefetch)));
        assert!(s.run("twolf", Scheme::NoPrefetch).cycles > 0);
    }

    #[test]
    fn precompute_drains_largest_first_not_reversed() {
        // Regression: the work queue used to pop LIFO, silently
        // reversing the caller's order — the heaviest kernel could land
        // last and stretch the tail. The drain order is now largest-
        // first (stable), independent of how the caller listed them.
        let drain = sched::largest_first(&["parser", "twolf", "bzip2", "swim"]);
        assert_eq!(drain[0], "bzip2", "heaviest first: {drain:?}");
        assert_eq!(drain[1], "swim");
        // Equal-weight kernels keep the caller's order — never reversed.
        assert_eq!(&drain[2..], &["parser", "twolf"]);
    }

    #[test]
    fn replay_modes_match_the_default_suite_path() {
        let mut base = Suite::new(SuiteScale::Test);
        let want = base.run("twolf", Scheme::GrpVar);
        let dir = std::env::temp_dir()
            .join(format!("grp-suite-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tc = Arc::new(crate::tracecache::TraceCache::new(&dir));
        // Packed tier, cold cache, then a second suite hitting the warm
        // cache — all bit-identical to the default path.
        let packed = ReplayMode { packed: true, trace_cache: None, telemetry: None };
        let both = ReplayMode { packed: true, trace_cache: Some(tc.clone()), telemetry: None };
        let mut s = Suite::new(SuiteScale::Test).with_replay(packed);
        assert_eq!(s.run("twolf", Scheme::GrpVar), want);
        let mut cold = Suite::new(SuiteScale::Test).with_replay(both.clone());
        assert_eq!(cold.run("twolf", Scheme::GrpVar), want);
        let mut warm = Suite::new(SuiteScale::Test).with_replay(both);
        assert_eq!(warm.run("twolf", Scheme::GrpVar), want);
        assert!(
            !warm.built.contains_key("twolf"),
            "a warm trace cache must satisfy run() without building the workload"
        );
        // The cell scheduler honours the suite's mode too.
        let mut cells = Suite::new(SuiteScale::Test)
            .with_replay(ReplayMode { packed: true, trace_cache: Some(tc), telemetry: None });
        cells
            .precompute_cells(&["twolf"], &[Scheme::GrpVar, Scheme::NoPrefetch], Some(2))
            .expect("clean grid");
        assert_eq!(cells.run("twolf", Scheme::GrpVar), want);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_lists() {
        let s = Suite::new(SuiteScale::Test);
        assert_eq!(s.all_names().len(), 18);
        assert_eq!(s.perf_names().len(), 17);
        assert!(!s.perf_names().contains(&"crafty"));
    }
}

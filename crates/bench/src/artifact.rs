//! Crash-safe artifact output shared by the bench binaries.
//!
//! Every file the harness emits (perf trajectories, lifecycle traces,
//! metrics, `--json` dumps) goes through [`atomic_write`]: the bytes
//! land in a uniquely-named temp sibling first, are flushed to stable
//! storage (`sync_all`), and are renamed into place. A process killed
//! mid-write can therefore never leave a truncated artifact at the
//! final path — readers (and the binaries' `--check` modes) see either
//! the previous complete file or the new complete file.
//!
//! Two crash-safety holes the original `<path>.tmp` staging had, both
//! closed here:
//!
//! * every writer staged into the **same** sibling name, so two
//!   concurrent workers writing one artifact interleaved their staged
//!   bytes and the survivor renamed a corrupted file into place — the
//!   temp name now carries the pid plus a per-process counter, so
//!   concurrent writers stage independently and last-rename-wins with
//!   each candidate complete;
//! * the staged bytes were never fsynced, so a power loss shortly
//!   after the rename could surface an empty (or partial) file even
//!   though the rename itself had landed — the temp file is now
//!   `sync_all`ed before the rename.
//!
//! A crash can still orphan a uniquely-named `.tmp` sibling; orphans
//! are inert (never renamed, never read) and safe to delete.

use std::fs;
use std::io::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Writes `contents` to `path` via write-temp-fsync-rename, creating
/// parent directories as needed. Safe to call concurrently for the
/// same path: each writer stages into its own temp file, and the final
/// path always holds one writer's complete bytes.
///
/// # Errors
///
/// Any I/O error from directory creation, the temp write/sync, or the
/// rename; on error the final path is untouched and the temp file is
/// cleaned up.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = unique_tmp_path(path);
    let staged = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_ref())?;
        // Flush to stable storage *before* the rename: without this, a
        // power loss after the (metadata-only) rename commits can
        // surface a zero-length file at the final path.
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// A temp sibling unique to this write: `<path>.<pid>.<counter>.tmp`.
/// The pid separates concurrent processes; the per-process counter
/// separates concurrent threads (and reuses nothing within a process).
pub fn unique_tmp_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{n}.tmp", std::process::id()));
    PathBuf::from(tmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grp-artifact-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Orphaned `.tmp` siblings of `path` left in its directory.
    fn orphans(path: &Path) -> Vec<PathBuf> {
        let dir = path.parent().unwrap();
        fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.to_string_lossy().ends_with(".tmp"))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested/out.json");
        atomic_write(&path, "{\"v\":1}").expect("atomic write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        assert!(orphans(&path).is_empty(), "temp file renamed away");
        // Overwrite keeps the same guarantees.
        atomic_write(&path, "{\"v\":2}").expect("overwrite");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(orphans(&path).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_names_are_unique_per_write() {
        // Regression: every writer used to stage into the same
        // `<path>.tmp`, so two concurrent writers interleaved staged
        // bytes. Unique names make concurrent staging independent.
        let p = Path::new("/x/out.json");
        let a = unique_tmp_path(p);
        let b = unique_tmp_path(p);
        assert_ne!(a, b, "two writes never share a temp file");
        let a = a.to_string_lossy();
        assert!(a.starts_with("/x/out.json."), "{a}");
        assert!(a.ends_with(".tmp"), "{a}");
        assert!(a.contains(&std::process::id().to_string()), "{a}");
    }

    #[test]
    fn interrupted_write_leaves_previous_file_intact() {
        // Simulate a kill between the temp write and the rename: the
        // temp file exists, the final path still holds the old bytes.
        let dir = scratch("interrupted");
        let path = dir.join("out.json");
        atomic_write(&path, "old-complete").expect("first write");
        fs::write(unique_tmp_path(&path), "new-but-trunc").expect("stage temp");
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "old-complete",
            "final path never observes the staged temp"
        );
        // Later atomic_writes are oblivious to the orphan.
        atomic_write(&path, "new-complete").expect("recover");
        assert_eq!(fs::read_to_string(&path).unwrap(), "new-complete");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_path_writers_never_interleave() {
        // Two threads hammering one artifact path: whatever write wins,
        // the final file must be exactly one thread's complete payload
        // — never a byte-interleave of both stagings.
        let dir = scratch("stress");
        let path = dir.join("out.json");
        let payload = |t: usize, i: usize| {
            // Distinct lengths and contents per writer so an interleave
            // or truncation cannot masquerade as a valid payload.
            format!("writer-{t}:").repeat(50 + t * 17 + i % 3)
        };
        const ITERS: usize = 40;
        std::thread::scope(|s| {
            for t in 0..2 {
                let path = &path;
                let payload = &payload;
                s.spawn(move || {
                    for i in 0..ITERS {
                        atomic_write(path, payload(t, i)).expect("concurrent write");
                    }
                });
            }
        });
        let got = fs::read_to_string(&path).expect("file exists");
        let valid: Vec<String> = (0..2)
            .flat_map(|t| (0..ITERS).map(move |i| payload(t, i)))
            .collect();
        assert!(
            valid.contains(&got),
            "final contents must be one writer's complete payload (len {})",
            got.len()
        );
        assert!(orphans(&path).is_empty(), "no temp files left behind");
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Crash-safe artifact output shared by the bench binaries.
//!
//! Every file the harness emits (perf trajectories, lifecycle traces,
//! metrics, `--json` dumps) goes through [`atomic_write`]: the bytes
//! land in a `<path>.tmp` sibling first and are renamed into place.
//! A process killed mid-write can therefore never leave a truncated
//! artifact at the final path — readers (and the binaries' `--check`
//! modes) see either the previous complete file or the new complete
//! file, with at worst an orphaned `.tmp` left to overwrite next run.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` via write-temp-then-rename, creating
/// parent directories as needed.
///
/// # Errors
///
/// Any I/O error from directory creation, the temp write, or the
/// rename; on error the final path is untouched.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_path(path);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

/// The temp sibling `atomic_write` stages into: `<path>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    PathBuf::from(tmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grp-artifact-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested/out.json");
        atomic_write(&path, "{\"v\":1}").expect("atomic write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        assert!(!tmp_path(&path).exists(), "temp file renamed away");
        // Overwrite keeps the same guarantees.
        atomic_write(&path, "{\"v\":2}").expect("overwrite");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_write_leaves_previous_file_intact() {
        // Simulate a kill between the temp write and the rename: the
        // temp file exists, the final path still holds the old bytes.
        let dir = scratch("interrupted");
        let path = dir.join("out.json");
        atomic_write(&path, "old-complete").expect("first write");
        fs::write(tmp_path(&path), "new-but-trunc").expect("stage temp");
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "old-complete",
            "final path never observes the staged temp"
        );
        // The next atomic_write simply overwrites the orphan.
        atomic_write(&path, "new-complete").expect("recover");
        assert_eq!(fs::read_to_string(&path).unwrap(), "new-complete");
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Crash-safe artifact output shared by the bench binaries.
//!
//! Every file the harness emits (perf trajectories, lifecycle traces,
//! metrics, `--json` dumps) goes through [`atomic_write`]: the bytes
//! land in a uniquely-named temp sibling first, are flushed to stable
//! storage (`sync_all`), and are renamed into place. A process killed
//! mid-write can therefore never leave a truncated artifact at the
//! final path — readers (and the binaries' `--check` modes) see either
//! the previous complete file or the new complete file.
//!
//! Two crash-safety holes the original `<path>.tmp` staging had, both
//! closed here:
//!
//! * every writer staged into the **same** sibling name, so two
//!   concurrent workers writing one artifact interleaved their staged
//!   bytes and the survivor renamed a corrupted file into place — the
//!   temp name now carries the pid plus a per-process counter, so
//!   concurrent writers stage independently and last-rename-wins with
//!   each candidate complete;
//! * the staged bytes were never fsynced, so a power loss shortly
//!   after the rename could surface an empty (or partial) file even
//!   though the rename itself had landed — the temp file is now
//!   `sync_all`ed before the rename.
//!
//! A crash can still orphan a uniquely-named `.tmp` sibling; orphans
//! are inert (never renamed, never read), and the startup
//! [`recover_dir`] scan sweeps them (age/liveness-gated) so they don't
//! accumulate forever.
//!
//! Fault seam: [`atomic_write_with`] threads an optional
//! [`IoFaultState`] through the stage/fsync/rename steps so the
//! resilience tests can *prove* the crash-only contract — an injected
//! short write, `ENOSPC`, failed fsync, or failed rename surfaces as
//! an error with the final path untouched and the temp cleaned up.
//! [`atomic_write`] is the zero-cost common case, armed only by the
//! process-global `GRP_IOFAULT` state (off by default).

use crate::iofault::{self, IoFaultKind, IoFaultState};

use std::fs;
use std::io::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Writes `contents` to `path` via write-temp-fsync-rename, creating
/// parent directories as needed. Safe to call concurrently for the
/// same path: each writer stages into its own temp file, and the final
/// path always holds one writer's complete bytes.
///
/// # Errors
///
/// Any I/O error from directory creation, the temp write/sync, or the
/// rename; on error the final path is untouched and the temp file is
/// cleaned up.
pub fn atomic_write(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    atomic_write_with(iofault::global().map(|a| a.as_ref()), path, contents)
}

/// [`atomic_write`] with an explicit I/O fault state (tests pass their
/// own so parallel tests don't share the process-global arming).
///
/// # Errors
///
/// Real I/O errors as for [`atomic_write`], plus any injected fault;
/// the crash-only contract holds either way — on error the final path
/// is untouched and the temp file is cleaned up.
pub fn atomic_write_with(
    faults: Option<&IoFaultState>,
    path: impl AsRef<Path>,
    contents: impl AsRef<[u8]>,
) -> io::Result<()> {
    let path = path.as_ref();
    let contents = contents.as_ref();
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    if faults.is_some_and(|f| f.is_torn_rename()) {
        // Deliberate-bug mode (negative teeth for `check --chaos`):
        // publish a torn half-payload at the final path and report
        // success. A correct gate MUST catch this.
        return fs::write(path, &contents[..contents.len() / 2]);
    }
    let tmp = unique_tmp_path(path);
    let staged = (|| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        match faults.and_then(|f| f.on_write()) {
            Some(IoFaultKind::ShortWrite) => {
                // The device takes a prefix, then fills up.
                f.write_all(&contents[..contents.len() / 2])?;
                return Err(iofault::nospace_err());
            }
            Some(_) => return Err(iofault::nospace_err()),
            None => {}
        }
        f.write_all(contents)?;
        // Flush to stable storage *before* the rename: without this, a
        // power loss after the (metadata-only) rename commits can
        // surface a zero-length file at the final path.
        if let Some(fa) = faults {
            fa.on_fsync()?;
        }
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    // Chaos-gate hold point: with GRP_IOFAULT_HOLD_MS set, the staged
    // temp file sits on disk for that long before the rename — a
    // kill-9 inside the window reliably orphans a temp for the
    // recovery gate to sweep.
    if let Some(ms) = write_hold_ms() {
        std::thread::sleep(Duration::from_millis(ms));
    }
    if let Some(fa) = faults {
        if let Err(e) = fa.on_rename() {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
    }
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// The `GRP_IOFAULT_HOLD_MS` pre-rename hold, read once per process.
fn write_hold_ms() -> Option<u64> {
    static HOLD: std::sync::OnceLock<Option<u64>> = std::sync::OnceLock::new();
    *HOLD.get_or_init(|| {
        std::env::var("GRP_IOFAULT_HOLD_MS")
            .ok()
            .and_then(|v| v.parse().ok())
    })
}

/// A temp sibling unique to this write: `<path>.<pid>.<counter>.tmp`.
/// The pid separates concurrent processes; the per-process counter
/// separates concurrent threads (and reuses nothing within a process).
pub fn unique_tmp_path(path: &Path) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.{n}.tmp", std::process::id()));
    PathBuf::from(tmp)
}

/// What a [`recover_dir`] scan swept (also counted in the telemetry
/// registry as `grp_recovery_swept_tmp_total` /
/// `grp_recovery_swept_lock_total`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Orphaned `<base>.<pid>.<counter>.tmp` staging files removed.
    pub swept_tmp: usize,
    /// Stale `<target>.lock` files (dead owner) removed.
    pub swept_lock: usize,
}

impl RecoveryReport {
    /// Merges another scan's counts into this one.
    pub fn absorb(&mut self, other: RecoveryReport) {
        self.swept_tmp += other.swept_tmp;
        self.swept_lock += other.swept_lock;
    }
}

/// Crash-recovery sweep over one directory (non-recursive): removes
/// orphaned atomic-write staging files (`<base>.<pid>.<counter>.tmp`,
/// exactly this crate's [`unique_tmp_path`] shape) and stale
/// `<target>.lock` files left by a crashed process.
///
/// A file is swept only when **both** hold: its owning pid (from the
/// temp name, or the lock file's contents) is provably not running —
/// `/proc/<pid>` absent, and never this process — **and** its mtime is
/// at least `max_age` old. The pid gate protects live writers in
/// other processes; the age gate protects against pid reuse and lets
/// callers keep a safety margin (`Duration::ZERO` sweeps every
/// dead-owner orphan immediately, the serve startup default). Files
/// whose names don't parse as this crate's shapes are never touched.
///
/// # Errors
///
/// Only a failure to list the directory; a missing directory is an
/// empty scan, and per-file races (someone else removed it first) are
/// ignored.
pub fn recover_dir(dir: &Path, max_age: Duration) -> io::Result<RecoveryReport> {
    let mut report = RecoveryReport::default();
    let entries = match fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(e),
    };
    let old_enough = |path: &Path| {
        fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.elapsed().ok())
            .is_some_and(|age| age >= max_age)
    };
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        // A lock whose pid never landed (crash inside acquire) has no
        // readable owner: treat it as dead and let the age gate decide.
        let (owner, is_lock) = if let Some(pid) = tmp_owner_pid(name) {
            (Some(pid), false)
        } else if name.ends_with(".lock") {
            (lock_owner_pid(&path), true)
        } else {
            continue;
        };
        let dead = match owner {
            Some(pid) => pid != std::process::id() && !pid_alive(pid),
            None => is_lock,
        };
        if !(dead && old_enough(&path)) {
            continue;
        }
        if fs::remove_file(&path).is_ok() {
            let (slot, counter) = if is_lock {
                (&mut report.swept_lock, "grp_recovery_swept_lock_total")
            } else {
                (&mut report.swept_tmp, "grp_recovery_swept_tmp_total")
            };
            *slot += 1;
            crate::telemetry::process_shard().counter(counter, &[]).inc();
            crate::telemetry::log::warn(
                "recover",
                &format!("swept stale {} {}", if is_lock { "lock" } else { "tmp" }, path.display()),
            );
        }
    }
    Ok(report)
}

/// The owning pid encoded in a `<base>.<pid>.<counter>.tmp` name, or
/// `None` when the name is not this crate's staging shape.
fn tmp_owner_pid(name: &str) -> Option<u32> {
    let stem = name.strip_suffix(".tmp")?;
    let (rest, counter) = stem.rsplit_once('.')?;
    counter.parse::<u64>().ok()?;
    let (_base, pid) = rest.rsplit_once('.')?;
    pid.parse().ok()
}

/// The owning pid recorded inside a `.lock` file (see
/// [`crate::traj`]'s lock protocol), or `None` when unreadable.
fn lock_owner_pid(path: &Path) -> Option<u32> {
    fs::read_to_string(path).ok()?.trim().parse().ok()
}

/// Best-effort liveness: true when `/proc/<pid>` exists. On systems
/// without procfs every foreign pid reads as dead, and the age gate is
/// the only protection — callers there should pass a generous
/// `max_age`.
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("grp-artifact-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Orphaned `.tmp` siblings of `path` left in its directory.
    fn orphans(path: &Path) -> Vec<PathBuf> {
        let dir = path.parent().unwrap();
        fs::read_dir(dir)
            .map(|rd| {
                rd.filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.to_string_lossy().ends_with(".tmp"))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn writes_land_complete_and_leave_no_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested/out.json");
        atomic_write(&path, "{\"v\":1}").expect("atomic write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        assert!(orphans(&path).is_empty(), "temp file renamed away");
        // Overwrite keeps the same guarantees.
        atomic_write(&path, "{\"v\":2}").expect("overwrite");
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        assert!(orphans(&path).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn temp_names_are_unique_per_write() {
        // Regression: every writer used to stage into the same
        // `<path>.tmp`, so two concurrent writers interleaved staged
        // bytes. Unique names make concurrent staging independent.
        let p = Path::new("/x/out.json");
        let a = unique_tmp_path(p);
        let b = unique_tmp_path(p);
        assert_ne!(a, b, "two writes never share a temp file");
        let a = a.to_string_lossy();
        assert!(a.starts_with("/x/out.json."), "{a}");
        assert!(a.ends_with(".tmp"), "{a}");
        assert!(a.contains(&std::process::id().to_string()), "{a}");
    }

    #[test]
    fn interrupted_write_leaves_previous_file_intact() {
        // Simulate a kill between the temp write and the rename: the
        // temp file exists, the final path still holds the old bytes.
        let dir = scratch("interrupted");
        let path = dir.join("out.json");
        atomic_write(&path, "old-complete").expect("first write");
        fs::write(unique_tmp_path(&path), "new-but-trunc").expect("stage temp");
        assert_eq!(
            fs::read_to_string(&path).unwrap(),
            "old-complete",
            "final path never observes the staged temp"
        );
        // Later atomic_writes are oblivious to the orphan.
        atomic_write(&path, "new-complete").expect("recover");
        assert_eq!(fs::read_to_string(&path).unwrap(), "new-complete");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_same_path_writers_never_interleave() {
        // Two threads hammering one artifact path: whatever write wins,
        // the final file must be exactly one thread's complete payload
        // — never a byte-interleave of both stagings.
        let dir = scratch("stress");
        let path = dir.join("out.json");
        let payload = |t: usize, i: usize| {
            // Distinct lengths and contents per writer so an interleave
            // or truncation cannot masquerade as a valid payload.
            format!("writer-{t}:").repeat(50 + t * 17 + i % 3)
        };
        const ITERS: usize = 40;
        std::thread::scope(|s| {
            for t in 0..2 {
                let path = &path;
                let payload = &payload;
                s.spawn(move || {
                    for i in 0..ITERS {
                        atomic_write(path, payload(t, i)).expect("concurrent write");
                    }
                });
            }
        });
        let got = fs::read_to_string(&path).expect("file exists");
        let valid: Vec<String> = (0..2)
            .flat_map(|t| (0..ITERS).map(move |i| payload(t, i)))
            .collect();
        assert!(
            valid.contains(&got),
            "final contents must be one writer's complete payload (len {})",
            got.len()
        );
        assert!(orphans(&path).is_empty(), "no temp files left behind");
        let _ = fs::remove_dir_all(&dir);
    }

    use crate::iofault::{IoFaultEvent, IoFaultPlan};

    fn one_fault(kind: IoFaultKind) -> IoFaultState {
        IoFaultState::new(&IoFaultPlan::new(vec![IoFaultEvent { op: 0, kind }]))
    }

    #[test]
    fn injected_faults_never_tear_the_final_path() {
        // Every fault class: the write errors, the previous complete
        // payload survives at the final path, and no temp is left.
        for kind in [
            IoFaultKind::ShortWrite,
            IoFaultKind::WriteNoSpace,
            IoFaultKind::FsyncFail,
            IoFaultKind::RenameFail,
        ] {
            let dir = scratch(&format!("fault-{}", kind.label()));
            let path = dir.join("out.json");
            atomic_write_with(None, &path, "old-complete").expect("clean write");
            let st = one_fault(kind);
            let err = atomic_write_with(Some(&st), &path, "new-payload")
                .expect_err("armed fault surfaces as an error");
            assert!(err.to_string().contains("injected"), "{kind:?}: {err}");
            assert_eq!(st.injected(), 1, "{kind:?} fired");
            assert_eq!(
                fs::read_to_string(&path).unwrap(),
                "old-complete",
                "{kind:?}: final path untouched"
            );
            assert!(orphans(&path).is_empty(), "{kind:?}: temp cleaned up");
            // The fault is one-shot: the retry lands completely.
            atomic_write_with(Some(&st), &path, "new-payload").expect("retry succeeds");
            assert_eq!(fs::read_to_string(&path).unwrap(), "new-payload");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn zero_fault_state_is_byte_identical_to_unfaulted() {
        let dir = scratch("inert");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        let st = IoFaultState::new(&IoFaultPlan::none());
        atomic_write_with(Some(&st), &a, "payload-bytes").expect("inert state");
        atomic_write_with(None, &b, "payload-bytes").expect("no state");
        assert_eq!(fs::read(&a).unwrap(), fs::read(&b).unwrap());
        assert_eq!(st.injected(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_rename_teeth_publish_a_torn_artifact() {
        // The deliberate-bug mode the chaos gate must catch: a half
        // payload lands at the final path and the call reports success.
        let dir = scratch("teeth");
        let path = dir.join("out.json");
        let st = IoFaultState::torn_rename();
        atomic_write_with(Some(&st), &path, "0123456789").expect("bug mode reports ok");
        assert_eq!(fs::read_to_string(&path).unwrap(), "01234", "torn half payload");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_scan_sweeps_dead_owner_tmp_and_lock_only() {
        let dir = scratch("recover");
        fs::create_dir_all(&dir).unwrap();
        // A pid that is certainly not running (beyond default pid_max).
        let dead_pid = 4_999_999u32;
        let dead_tmp = dir.join(format!("out.json.{dead_pid}.7.tmp"));
        let live_tmp = dir.join(format!("out.json.{}.8.tmp", std::process::id()));
        let dead_lock = dir.join("BENCH_perf.json.lock");
        let artifact = dir.join("out.json");
        let odd_name = dir.join("notes.tmp"); // not the staging shape
        for (p, body) in [
            (&dead_tmp, "partial"),
            (&live_tmp, "in-flight"),
            (&dead_lock, &format!("{dead_pid}") as &str),
            (&artifact, "complete"),
            (&odd_name, "unrelated"),
        ] {
            fs::write(p, body).unwrap();
        }
        // Age gate: everything is fresh, so a generous max_age spares it.
        let spared = recover_dir(&dir, Duration::from_secs(3600)).expect("scan");
        assert_eq!(spared, RecoveryReport::default(), "fresh files spared by age gate");
        // Zero max_age sweeps exactly the dead-owner staging + lock.
        let swept = recover_dir(&dir, Duration::ZERO).expect("scan");
        assert_eq!(swept, RecoveryReport { swept_tmp: 1, swept_lock: 1 });
        assert!(!dead_tmp.exists(), "dead-owner tmp swept");
        assert!(!dead_lock.exists(), "dead-owner lock swept");
        assert!(live_tmp.exists(), "live-owner tmp untouched");
        assert!(artifact.exists(), "published artifact untouched");
        assert!(odd_name.exists(), "non-staging .tmp name untouched");
        // Missing directory is an empty scan, not an error.
        let none = recover_dir(&dir.join("nope"), Duration::ZERO).expect("missing dir");
        assert_eq!(none, RecoveryReport::default());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_owner_pid_parses_only_the_staging_shape() {
        assert_eq!(tmp_owner_pid("out.json.1234.0.tmp"), Some(1234));
        assert_eq!(tmp_owner_pid("a.b.c.99.17.tmp"), Some(99));
        assert_eq!(tmp_owner_pid("out.json.tmp"), None);
        assert_eq!(tmp_owner_pid("out.json.x.0.tmp"), None);
        assert_eq!(tmp_owner_pid("out.json.1234.x.tmp"), None);
        assert_eq!(tmp_owner_pid("out.json"), None);
    }
}

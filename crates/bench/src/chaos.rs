//! Chaos/soak gate (`check --chaos`): drives the **real** `serve`
//! binary as a subprocess through a seeded storm of injected I/O
//! faults, mid-batch client disconnects, and a kill -9 timed into a
//! cache write, then restarts it and asserts the crash-only contract
//! end to end:
//!
//! * **No torn artifact anywhere** — after the kill, every published
//!   metrics exposition parses and every trace-cache entry validates
//!   (quarantine count zero). The `--inject torn-rename` teeth mode
//!   deliberately publishes half-written artifacts and must make this
//!   gate exit nonzero.
//! * **Counters monotone across restart** — the restarted process
//!   seeds its registry from the dead one's last scrape, so no counter
//!   ever reads lower than before the crash.
//! * **Replies bit-identical** — every job reply (including re-issued
//!   jobs after the restart) carries exactly the `RunResult` a serial
//!   in-process reference computes.
//! * **No staging litter** — once the dust settles, no `*.tmp` or
//!   `*.lock` file survives anywhere under the scratch directory.
//!
//! Every fault is seeded (`GRP_IOFAULT=seed:<n>` per round), so a
//! failing storm reproduces from its printed seed.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use grp_core::{Scheme, SimConfig};
use grp_workloads::Scale;

use crate::json::{run_result_json, Json};
use crate::telemetry::exposition;
use crate::tracecache::TraceCache;

/// Configuration for one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosOpts {
    /// Path to the built `serve` binary (next to `check` in the target
    /// dir, or `CARGO_BIN_EXE_serve` in integration tests).
    pub serve_bin: PathBuf,
    /// Scratch directory (created; artifacts left behind for autopsy).
    pub dir: PathBuf,
    /// Base seed; round `r` storms with `seed + r`.
    pub seed: u64,
    /// Storm rounds before the kill-9 phase.
    pub rounds: u64,
    /// Teeth mode: arm `GRP_IOFAULT=torn-rename` on the subprocess so
    /// it publishes torn artifacts — the gate must then fail.
    pub torn_rename: bool,
}

/// The storm batch: jobs replayed under injected I/O faults.
const STORM_JOBS: &[(&str, &str)] = &[("gzip", "SRP"), ("mcf", "none"), ("twolf", "GRP/Var")];

/// Jobs primed before the kill and re-issued after the restart.
const RESTART_JOBS: &[(&str, &str)] = &[("crafty", "SRP"), ("gzip", "GRP/Var")];

/// The job sent right before the kill -9 (uncached, so the child is
/// mid-cache-write when the signal lands).
const KILL_JOBS: &[(&str, &str)] = &[("bzip2", "SRP")];

/// How long the kill-phase child holds a staged write before renaming
/// (widens the kill window without changing any observable behavior).
const HOLD_MS: u64 = 400;

/// Runs the whole gate; `Ok` carries a one-line summary.
///
/// # Errors
///
/// The first violated invariant, naming the phase and artifact.
pub fn run_chaos(opts: &ChaosOpts) -> Result<String, String> {
    std::fs::create_dir_all(&opts.dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.dir.display()))?;
    if !opts.serve_bin.exists() {
        return Err(format!(
            "serve binary not found at {} (build it first)",
            opts.serve_bin.display()
        ));
    }
    let reference = reference_results()?;

    // Phase A: seeded I/O-fault storms with disconnects and drains.
    let cache_a = opts.dir.join("cache");
    let metrics_a = opts.dir.join("metrics.prom");
    let mut prev: Option<BTreeMap<String, u64>> = None;
    for round in 0..opts.rounds {
        let fault_seed = opts.seed.wrapping_add(round);
        println!("chaos: storm round {} (GRP_IOFAULT seed {fault_seed:#x})", round + 1);
        let sock = opts.dir.join(format!("storm-{round}.sock"));
        let envs = [("GRP_IOFAULT", format!("seed:{fault_seed}"))];
        let mut child = spawn_serve(opts, &sock, &cache_a, &metrics_a, None, &envs)?;
        let result = storm_round(&sock, &mut child, &reference);
        if result.is_err() {
            let _ = child.kill();
            let _ = child.wait();
        }
        result.map_err(|e| format!("storm round {} (seed {fault_seed:#x}): {e}", round + 1))?;
        let cur = scrape_counters(&twin_path(&metrics_a))?;
        if let (Some(p), Some(c)) = (&prev, &cur) {
            check_monotone_counters(p, c)
                .map_err(|e| format!("storm round {}: counters not monotone: {e}", round + 1))?;
        }
        if cur.is_some() {
            prev = cur;
        }
    }

    // Phase B: kill -9 timed into a cache write, then restart.
    println!("chaos: kill -9 mid-cache-write, then restart");
    let cache_b = opts.dir.join("cache-b");
    let metrics_b = opts.dir.join("metrics-b.prom");
    let perf_b = opts.dir.join("perf-b.ndjson");
    let sock_b = opts.dir.join("kill.sock");
    let mut envs: Vec<(&str, String)> = vec![("GRP_IOFAULT_HOLD_MS", HOLD_MS.to_string())];
    if opts.torn_rename {
        envs.push(("GRP_IOFAULT", "torn-rename".to_string()));
    }
    let mut child = spawn_serve(opts, &sock_b, &cache_b, &metrics_b, Some(&perf_b), &envs)?;
    let kill_result = kill_phase(&sock_b, &mut child, &reference);
    if kill_result.is_err() {
        let _ = child.kill();
        let _ = child.wait();
    }
    let before = kill_result?;

    // Pre-restart autopsy: everything published must be whole. This is
    // where `--inject torn-rename` must trip the gate.
    validate_artifacts(&cache_b, &metrics_b)?;

    // Restart: recovery is the normal startup path. Re-issued jobs
    // must be bit-identical, counters must carry over, and the drain
    // must exit 0.
    let sock_r = opts.dir.join("restart.sock");
    let mut child = spawn_serve(opts, &sock_r, &cache_b, &metrics_b, Some(&perf_b), &[])?;
    let restart_result = restart_phase(&sock_r, &mut child, &reference);
    if restart_result.is_err() {
        let _ = child.kill();
        let _ = child.wait();
    }
    restart_result?;
    let after = scrape_counters(&twin_path(&metrics_b))?
        .ok_or("no metrics scrape after restart".to_string())?;
    if let Some(before) = &before {
        check_monotone_counters(before, &after)
            .map_err(|e| format!("counters not monotone across kill -9 restart: {e}"))?;
    }
    let entries = crate::traj::load_entries(perf_b.to_str().expect("utf8 path"))
        .map_err(|e| format!("perf trajectory after drain: {e}"))?;
    if entries.is_empty() {
        return Err("drain flushed no perf entry".to_string());
    }

    // Final sweep: the whole scratch tree must be free of staging
    // litter once every process has exited.
    let mut stale = Vec::new();
    find_stale(&opts.dir, &mut stale);
    if !stale.is_empty() {
        return Err(format!(
            "stale staging files survived the run: {}",
            stale.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", ")
        ));
    }

    Ok(format!(
        "{} storm round(s) + kill -9 restart: replies bit-identical, artifacts whole, \
         counters monotone, {} perf entr(y/ies), no staging litter",
        opts.rounds,
        entries.len()
    ))
}

/// One storm round: identical replies under faults, a mid-batch
/// disconnect that must not kill the process, a stats liveness probe,
/// and a drain that must exit 0.
fn storm_round(
    sock: &Path,
    child: &mut Child,
    reference: &BTreeMap<(String, String), String>,
) -> Result<(), String> {
    await_socket(sock, child)?;

    // Connection 1: the storm batch must answer bit-identically — an
    // injected cache fault is a named miss that rebuilds, never a
    // wrong (or lost) reply.
    let mut conn = connect(sock)?;
    send_jobs(&mut conn, STORM_JOBS)?;
    let replies = read_replies(&conn, STORM_JOBS.len())?;
    check_job_replies(&replies, STORM_JOBS, reference)?;
    drop(conn);

    // Connection 2: vanish mid-batch. The server must cancel that
    // batch's remaining work and keep serving everyone else.
    let mut conn = connect(sock)?;
    send_jobs(&mut conn, STORM_JOBS)?;
    drop(conn);

    // Connection 3: liveness probe — the disconnect above must not
    // have taken the process down.
    if child.try_wait().map_err(|e| format!("try_wait: {e}"))?.is_some() {
        return Err("server died after a mid-batch client disconnect".to_string());
    }
    let mut conn = connect(sock)?;
    writeln!(conn, r#"{{"stats":true,"id":500}}"#).map_err(|e| format!("stats write: {e}"))?;
    let replies = read_replies(&conn, 1)?;
    let stats = &replies[0];
    if stats.get("ok").and_then(|v| v.as_bool()) != Some(true)
        || stats.get("stats").and_then(|s| s.get("counters")).is_none()
    {
        return Err(format!("bad stats reply after disconnect: {}", stats.render()));
    }
    drop(conn);

    // Connection 4: drain. The ack must land and the process must
    // flush its artifacts and exit 0.
    drain_and_wait(sock, child)
}

/// The kill phase: prime the cache and a first scrape, then send an
/// uncached job and SIGKILL the child while it is (probably) holding a
/// staged cache write. Returns the last scrape before the kill.
fn kill_phase(
    sock: &Path,
    child: &mut Child,
    reference: &BTreeMap<(String, String), String>,
) -> Result<Option<BTreeMap<String, u64>>, String> {
    await_socket(sock, child)?;
    let mut conn = connect(sock)?;
    send_jobs(&mut conn, RESTART_JOBS)?;
    let replies = read_replies(&conn, RESTART_JOBS.len())?;
    check_job_replies(&replies, RESTART_JOBS, reference)?;
    // EOF ends the session, which exports a scrape we snapshot as the
    // monotonicity baseline for the post-restart comparison.
    drop(conn);
    let metrics_twin = sock
        .parent()
        .expect("socket has a parent")
        .join("metrics-b.prom.json");
    let deadline = Instant::now() + Duration::from_secs(30);
    while !metrics_twin.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let before = scrape_counters(&metrics_twin)?;

    let mut conn = connect(sock)?;
    send_jobs(&mut conn, KILL_JOBS)?;
    // The uncached kernel forces a cache store; the staged write holds
    // for HOLD_MS before renaming, so this sleep lands the SIGKILL
    // inside the write window often — and the invariants must hold for
    // *any* landing point.
    std::thread::sleep(Duration::from_millis(HOLD_MS / 2));
    child.kill().map_err(|e| format!("kill -9: {e}"))?;
    child.wait().map_err(|e| format!("wait after kill: {e}"))?;
    Ok(before)
}

/// Post-restart phase: re-issued jobs answer bit-identically, then a
/// drain must flush and exit 0.
fn restart_phase(
    sock: &Path,
    child: &mut Child,
    reference: &BTreeMap<(String, String), String>,
) -> Result<(), String> {
    await_socket(sock, child)?;
    let mut conn = connect(sock)?;
    send_jobs(&mut conn, KILL_JOBS)?;
    let replies = read_replies(&conn, KILL_JOBS.len())?;
    check_job_replies(&replies, KILL_JOBS, reference)
        .map_err(|e| format!("re-issued jobs after restart: {e}"))?;
    drop(conn);
    drain_and_wait(sock, child)
}

/// Sends the drain probe, checks the ack, and requires exit status 0.
fn drain_and_wait(sock: &Path, child: &mut Child) -> Result<(), String> {
    let mut conn = connect(sock)?;
    writeln!(conn, r#"{{"drain":true,"id":9000}}"#).map_err(|e| format!("drain write: {e}"))?;
    let replies = read_replies(&conn, 1)?;
    let ack = &replies[0];
    if ack.get("ok").and_then(|v| v.as_bool()) != Some(true)
        || ack.get("drain").and_then(|v| v.as_bool()) != Some(true)
    {
        return Err(format!("bad drain ack: {}", ack.render()));
    }
    drop(conn);
    let status = wait_exit(child, Duration::from_secs(60))?;
    if !status.success() {
        return Err(format!("serve did not exit 0 after drain: {status}"));
    }
    Ok(())
}

/// Spawns the serve binary with the chaos-standard flags.
fn spawn_serve(
    opts: &ChaosOpts,
    sock: &Path,
    cache: &Path,
    metrics: &Path,
    perf: Option<&Path>,
    envs: &[(&str, String)],
) -> Result<Child, String> {
    let mut cmd = Command::new(&opts.serve_bin);
    cmd.arg("--scale")
        .arg("test")
        .arg("--jobs")
        .arg("2")
        .arg("--packed")
        .arg("--trace-cache")
        .arg(cache)
        .arg("--socket")
        .arg(sock)
        .arg("--metrics-out")
        .arg(metrics)
        .arg("--request-deadline-ms")
        .arg("60000")
        .arg("--max-inflight")
        .arg("64")
        .arg("--log-level")
        .arg("error")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(p) = perf {
        cmd.arg("--perf-out").arg(p).arg("--label").arg("chaos");
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().map_err(|e| format!("cannot spawn {}: {e}", opts.serve_bin.display()))
}

/// Waits for the socket to become connectable (and the child to stay
/// alive while we wait).
fn await_socket(sock: &Path, child: &mut Child) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if UnixStream::connect(sock).is_ok() {
            return Ok(());
        }
        if let Some(status) = child.try_wait().map_err(|e| format!("try_wait: {e}"))? {
            return Err(format!("serve exited before listening: {status}"));
        }
        if Instant::now() >= deadline {
            return Err(format!("socket {} never became connectable", sock.display()));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A connection with a generous read timeout (a hung reply must fail
/// the gate, not hang it).
fn connect(sock: &Path) -> Result<UnixStream, String> {
    let stream = UnixStream::connect(sock)
        .map_err(|e| format!("cannot connect {}: {e}", sock.display()))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    Ok(stream)
}

/// Writes one batch (ids are 1-based indexes into `jobs`) and the
/// blank-line flush.
fn send_jobs(conn: &mut UnixStream, jobs: &[(&str, &str)]) -> Result<(), String> {
    for (i, (kernel, scheme)) in jobs.iter().enumerate() {
        writeln!(conn, r#"{{"id":{},"kernel":"{kernel}","scheme":"{scheme}"}}"#, i + 1)
            .map_err(|e| format!("job write: {e}"))?;
    }
    writeln!(conn).map_err(|e| format!("flush write: {e}"))?;
    conn.flush().map_err(|e| format!("flush: {e}"))?;
    Ok(())
}

/// Reads exactly `n` reply lines.
fn read_replies(conn: &UnixStream, n: usize) -> Result<Vec<Json>, String> {
    let mut reader = BufReader::new(
        conn.try_clone().map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut line = String::new();
        let read = reader.read_line(&mut line).map_err(|e| format!("reply read: {e}"))?;
        if read == 0 {
            return Err(format!("connection closed after {} of {n} replies", out.len()));
        }
        out.push(Json::parse(line.trim()).map_err(|e| format!("malformed reply: {e}"))?);
    }
    Ok(out)
}

/// Every reply must be `ok:true` and its `result` must render
/// byte-identically to the serial in-process reference.
fn check_job_replies(
    replies: &[Json],
    jobs: &[(&str, &str)],
    reference: &BTreeMap<(String, String), String>,
) -> Result<(), String> {
    for reply in replies {
        let id = reply
            .get("id")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("reply without id: {}", reply.render()))?;
        let (kernel, scheme) = jobs
            .get((id as usize).wrapping_sub(1))
            .ok_or_else(|| format!("reply for unknown id {id}"))?;
        if reply.get("ok").and_then(|v| v.as_bool()) != Some(true) {
            return Err(format!("{kernel}/{scheme}: failed reply: {}", reply.render()));
        }
        let got = reply
            .get("result")
            .ok_or_else(|| format!("{kernel}/{scheme}: reply missing result"))?
            .render();
        let want = &reference[&(kernel.to_string(), scheme.to_string())];
        if got != *want {
            return Err(format!(
                "{kernel}/{scheme}: reply diverges from the serial reference\n  got:  {got}\n  want: {want}"
            ));
        }
    }
    Ok(())
}

/// Serial in-process reference results for every job this gate issues.
fn reference_results() -> Result<BTreeMap<(String, String), String>, String> {
    let cfg = SimConfig::paper();
    let mut out = BTreeMap::new();
    for (kernel, scheme_label) in STORM_JOBS.iter().chain(RESTART_JOBS).chain(KILL_JOBS) {
        let scheme = Scheme::by_label(scheme_label)
            .ok_or_else(|| format!("unknown scheme label {scheme_label}"))?;
        let w = grp_workloads::by_name(kernel)
            .ok_or_else(|| format!("unknown kernel {kernel}"))?;
        let r = w.build(Scale::Test).run(scheme, &cfg);
        out.insert(
            (kernel.to_string(), scheme_label.to_string()),
            run_result_json(&r, None).render(),
        );
    }
    Ok(out)
}

/// The JSON twin `serve --metrics-out` writes next to the exposition.
fn twin_path(metrics: &Path) -> PathBuf {
    PathBuf::from(format!("{}.json", metrics.display()))
}

/// Counter values from a scrape's JSON twin (`None` when no scrape has
/// landed yet).
fn scrape_counters(path: &Path) -> Result<Option<BTreeMap<String, u64>>, String> {
    if !path.exists() {
        return Ok(None);
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("{}: malformed: {e}", path.display()))?;
    let mut out = BTreeMap::new();
    if let Some(entries) = doc.get("counters").and_then(|c| c.entries()) {
        for (k, v) in entries {
            if let Some(n) = v.as_u64() {
                out.insert(k.clone(), n);
            }
        }
    }
    Ok(Some(out))
}

/// Every counter in `prev` must read at least as high in `cur`.
fn check_monotone_counters(
    prev: &BTreeMap<String, u64>,
    cur: &BTreeMap<String, u64>,
) -> Result<(), String> {
    for (id, v) in prev {
        let now = cur.get(id).copied().unwrap_or(0);
        if now < *v {
            return Err(format!("{id}: {v} -> {now}"));
        }
    }
    Ok(())
}

/// Post-kill autopsy: every *published* artifact must be one complete
/// payload — the metrics exposition re-parses, the JSON twin parses,
/// and no trace-cache entry fails validation (quarantine count zero).
fn validate_artifacts(cache_dir: &Path, metrics: &Path) -> Result<(), String> {
    if metrics.exists() {
        let text = std::fs::read_to_string(metrics)
            .map_err(|e| format!("cannot read {}: {e}", metrics.display()))?;
        exposition::validate_text(&text)
            .map_err(|e| format!("torn/invalid metrics exposition {}: {e}", metrics.display()))?;
    }
    let twin = twin_path(metrics);
    if twin.exists() {
        let text = std::fs::read_to_string(&twin)
            .map_err(|e| format!("cannot read {}: {e}", twin.display()))?;
        Json::parse(&text)
            .map_err(|e| format!("torn metrics JSON twin {}: {e}", twin.display()))?;
    }
    let (_, quarantined) = TraceCache::new(cache_dir)
        .recover(Duration::ZERO)
        .map_err(|e| format!("trace-cache scan of {}: {e}", cache_dir.display()))?;
    if quarantined > 0 {
        return Err(format!(
            "{quarantined} torn/corrupt trace-cache entr(y/ies) found in {} after kill -9",
            cache_dir.display()
        ));
    }
    Ok(())
}

/// Recursively collects surviving `*.tmp` / `*.lock` staging files.
fn find_stale(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            find_stale(&path, out);
            continue;
        }
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") || name.ends_with(".lock") {
            out.push(path);
        }
    }
}

/// Polls for exit up to `timeout`, killing a hung child.
fn wait_exit(child: &mut Child, timeout: Duration) -> Result<std::process::ExitStatus, String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().map_err(|e| format!("try_wait: {e}"))? {
            return Ok(status);
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            return Err("serve did not exit within the drain timeout".to_string());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

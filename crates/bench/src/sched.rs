//! Work-stealing cell scheduler: shards `(kernel, scheme, config)`
//! simulation *cells* across OS threads.
//!
//! `Suite::precompute` parallelizes per **kernel** — one worker builds a
//! kernel and then replays every scheme serially, so the replay phase of
//! a wide grid is bounded by the heaviest kernel's whole scheme row
//! (bzip2 alone is a third of the small-scale replay wall). Here the
//! unit of work is one cell: a single `(kernel, scheme)` simulation.
//!
//! * Built workloads are shared **read-only** between workers through
//!   [`WorkloadCache`] (`Arc<BuiltWorkload>` keyed by `(kernel, scale)`),
//!   so two schemes of the same kernel never rebuild — whichever worker
//!   gets there first builds, everyone else waits on that one build.
//! * Cells are ordered **largest-first** by a static cost model
//!   ([`cell_weight`], calibrated against measured packed-tier per-cell
//!   replay times) and dealt round-robin into per-worker
//!   deques; an idle worker steals from the *back* of a victim's deque,
//!   so big early cells stay with their owner and stragglers spread out.
//! * Results stream to the caller **as cells complete** over a channel
//!   (`on_complete` runs on the calling thread), so artifacts can be
//!   written incrementally instead of at end-of-run.
//!
//! Determinism: scheduling order and steal order are timing-dependent,
//! but every cell is an independent, internally-deterministic
//! simulation over its own `Memory` clone — per-cell `RunResult`s are
//! bit-identical to the serial path for any worker count and any steal
//! interleaving. `crates/bench/tests/fleet.rs` enforces this over the
//! full 18×12 grid.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use grp_core::{run_trace, run_trace_packed, LatencyHist, RunResult, Scheme, SimConfig};
use grp_cpu::PackedTrace;
use grp_workloads::{BuiltWorkload, Scale};

use crate::telemetry::registry::{Registry, Shard};
use crate::tracecache::TraceCache;

/// How cells replay: the materialized enum-event path (default), the
/// packed struct-of-arrays tier (`--packed`), and optionally a
/// cross-process [`TraceCache`] of packed, pre-interpreted traces
/// (`--trace-cache <dir>`). Both knobs are observationally pure:
/// per-cell `RunResult`s are bit-identical across all four
/// combinations (enforced by `tests/packed_identity.rs` and the
/// scheduler determinism tests).
#[derive(Debug, Clone, Default)]
pub struct ReplayMode {
    /// Replay through [`run_trace_packed`] instead of [`run_trace`].
    pub packed: bool,
    /// Persist and reuse packed traces + memory images across
    /// processes. A cache hit skips build + interpretation + hint
    /// derivation entirely; stale or corrupt entries read as misses
    /// and are rebuilt, never trusted.
    pub trace_cache: Option<Arc<TraceCache>>,
    /// Metrics registry the fleet records into (`grp_fleet_*`,
    /// `grp_replay_*`, `grp_sim_*` families; one shard per worker,
    /// merged at scrape). `None` — the default — records nothing and
    /// adds nothing to the replay path.
    pub telemetry: Option<Arc<Registry>>,
}

impl ReplayMode {
    /// True when this mode is the plain materialized path with no
    /// cache and no metrics — the zero-overhead default.
    pub fn is_default(&self) -> bool {
        !self.packed && self.trace_cache.is_none() && self.telemetry.is_none()
    }

    /// This mode with fleet metrics recorded into `reg`.
    pub fn with_telemetry(mut self, reg: Arc<Registry>) -> Self {
        self.telemetry = Some(reg);
        self
    }
}

/// One schedulable unit: a single `(kernel, scheme, config)` simulation.
#[derive(Debug, Clone, Copy)]
pub struct CellJob {
    /// Caller's correlation id, echoed in [`CellResult::id`] (the serve
    /// protocol uses it to match replies to requests).
    pub id: u64,
    /// Registry kernel name (`"bzip2"`, …). Unknown names surface as an
    /// `Err` outcome for this cell only, never a panic.
    pub kernel: &'static str,
    /// The scheme to replay.
    pub scheme: Scheme,
    /// Problem size; part of the workload-cache key.
    pub scale: Scale,
    /// Platform configuration for the timing simulation.
    pub cfg: SimConfig,
    /// Wall-clock deadline: a cell whose deadline has passed **at
    /// pickup** is failed with a [`DEADLINE_EXCEEDED`]-prefixed error
    /// instead of running (a cell already executing runs to completion
    /// — the in-simulation `--max-cycles` watchdog bounds that side).
    /// `None` (the default) never expires.
    pub deadline: Option<Instant>,
}

/// Error prefix for a cell whose [`CellJob::deadline`] passed before
/// pickup. The serve layer surfaces it verbatim as the named
/// `deadline_exceeded` reply.
pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Error text for a cell skipped because its batch was cancelled
/// (client disconnected mid-batch).
pub const CANCELLED: &str = "cancelled: client disconnected before this cell ran";

/// Shared cancel flag for one batch of cells: flipping it makes every
/// not-yet-picked-up cell in the batch fail with [`CANCELLED`] instead
/// of running, so a dead client stops costing simulation time without
/// killing the session or other connections.
#[derive(Debug, Default)]
pub struct BatchCtl {
    cancelled: AtomicBool,
}

impl BatchCtl {
    /// A fresh, un-cancelled control.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancels the remaining (unstarted) cells of the batch.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`BatchCtl::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// A completed cell, streamed to `on_complete` in completion order.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// [`CellJob::id`], echoed.
    pub id: u64,
    /// Kernel name, echoed.
    pub kernel: &'static str,
    /// Scheme, echoed.
    pub scheme: Scheme,
    /// Scale, echoed.
    pub scale: Scale,
    /// The simulation result, or why this cell failed (unknown kernel,
    /// or a panic inside build/trace/replay). One poisoned cell never
    /// takes down the fleet.
    pub outcome: Result<RunResult, String>,
    /// Trace events replayed (0 on error).
    pub events: u64,
    /// Seconds spent building/tracing before replay (includes the
    /// workload build only for the worker that actually built it).
    pub setup_seconds: f64,
    /// Seconds spent in `run_trace` alone — the comparable unit to the
    /// serial perf harness's replay column.
    pub replay_seconds: f64,
    /// Microseconds the cell waited from scheduler start to pickup.
    pub queue_micros: u64,
    /// Index of the worker that ran the cell.
    pub worker: usize,
}

/// Aggregate accounting for one [`run_cells`] invocation.
#[derive(Debug, Clone)]
pub struct FleetStats {
    /// Workers spawned.
    pub workers: usize,
    /// Cells completed (success + error).
    pub cells: usize,
    /// Cells whose outcome was `Err`.
    pub errors: usize,
    /// Wall-clock seconds from scheduler start to last cell done.
    pub wall_seconds: f64,
    /// Total trace events replayed across all cells.
    pub events: u64,
    /// Total simulated cycles across all cells.
    pub sim_cycles: u64,
    /// Sum of per-cell replay seconds (aggregate busy replay time).
    pub replay_seconds: f64,
    /// Sum of per-cell setup seconds (builds + hint derivation).
    pub setup_seconds: f64,
    /// Per-worker busy seconds (time executing cells, not idle/steal).
    pub busy_seconds: Vec<f64>,
    /// Per-worker completed-cell counts.
    pub cells_per_worker: Vec<usize>,
    /// Cells a worker took from another worker's deque.
    pub steals: u64,
    /// Queue-wait distribution (microseconds from scheduler start to
    /// cell pickup), reusing the observer layer's power-of-two
    /// histogram so percentiles come from the same machinery as the
    /// epoch sampler's latency accounting.
    pub queue_wait_micros: LatencyHist,
}

impl FleetStats {
    /// Aggregate fleet throughput: trace events replayed per wall
    /// second across all workers (the "millions of users" headline).
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_seconds.max(1e-9)
    }

    /// Aggregate simulated cycles per wall second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.wall_seconds.max(1e-9)
    }

    /// Worker `w`'s busy fraction of the wall clock.
    pub fn utilization(&self, w: usize) -> f64 {
        (self.busy_seconds[w] / self.wall_seconds.max(1e-9)).min(1.0)
    }
}

/// Built workloads shared read-only across workers (and, in server
/// mode, across request batches), keyed by `(kernel, scale)`.
///
/// Each slot is a [`OnceLock`]: the first worker to need a workload
/// builds it, concurrent requesters block on that one build instead of
/// duplicating it, and every user gets the same `Arc`.
#[derive(Debug, Default)]
pub struct WorkloadCache {
    map: Mutex<HashMap<(&'static str, Scale), Arc<OnceLock<Arc<BuiltWorkload>>>>>,
}

impl WorkloadCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built workload for `(kernel, scale)`, building it exactly
    /// once on first use.
    ///
    /// # Errors
    ///
    /// Names the unknown kernel when it is not in the registry.
    pub fn get_or_build(&self, kernel: &str, scale: Scale) -> Result<Arc<BuiltWorkload>, String> {
        let w = grp_workloads::by_name(kernel)
            .ok_or_else(|| format!("unknown workload '{kernel}' (valid: registry names, e.g. gzip, mcf, bzip2)"))?;
        let slot = self
            .map
            .lock()
            .expect("workload cache")
            .entry((w.name, scale))
            .or_default()
            .clone();
        Ok(slot.get_or_init(|| Arc::new(w.build(scale))).clone())
    }

    /// The cached workload, if already built (never builds).
    pub fn get(&self, kernel: &str, scale: Scale) -> Option<Arc<BuiltWorkload>> {
        let w = grp_workloads::by_name(kernel)?;
        self.map
            .lock()
            .expect("workload cache")
            .get(&(w.name, scale))
            .and_then(|slot| slot.get().cloned())
    }

    /// Seeds the cache with an already-built workload (e.g. from a
    /// suite's memo table). A previously-built entry wins: the cache
    /// never swaps a workload out from under readers.
    pub fn insert(&self, kernel: &'static str, scale: Scale, built: Arc<BuiltWorkload>) {
        let slot = self
            .map
            .lock()
            .expect("workload cache")
            .entry((kernel, scale))
            .or_default()
            .clone();
        let _ = slot.set(built);
    }

    /// Number of built workloads resident.
    pub fn built_count(&self) -> usize {
        self.map
            .lock()
            .expect("workload cache")
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }
}

/// Static relative cost of one cell, calibrated against measured
/// per-cell replay seconds under the packed tier at Small scale (bzip2
/// is ~26% of the replay wall; SRP-class schemes replay ~2.3× slower
/// than the no-prefetch baseline — the packed tier narrowed the old 6×
/// gap by cutting per-event dispatch overhead, which baseline cells
/// paid proportionally more of). Kernel weights are replay-wall
/// percentages; scheme weights are ~10× the per-scheme ratio to the
/// no-prefetch baseline. Only *load balance* depends on this — results
/// never do — so a stale table degrades tail latency, not correctness.
pub fn cell_weight(kernel: &str, scheme: Scheme) -> u64 {
    let k: u64 = match kernel {
        "bzip2" => 26,
        "swim" => 13,
        "crafty" => 13,
        "applu" => 11,
        "art" => 7,
        "gzip" => 6,
        "apsi" => 4,
        "gap" => 4,
        "mesa" => 3,
        "mgrid" => 3,
        "sphinx" => 2,
        "wupwise" => 2,
        "vpr" => 2,
        _ => 1,
    };
    let s: u64 = match scheme {
        Scheme::Srp | Scheme::SrpPointer => 23,
        Scheme::GrpAggressive => 18,
        Scheme::GrpFix | Scheme::GrpVar | Scheme::GrpConservative => 16,
        Scheme::HwPointer | Scheme::GrpPointer => 14,
        Scheme::Stride => 13,
        Scheme::NoPrefetch => 10,
        Scheme::PerfectL1 | Scheme::PerfectL2 => 4,
    };
    k * s
}

/// Kernels reordered largest-first (stable: ties keep the caller's
/// order) — the per-kernel precompute queue drains in this order so the
/// heaviest builds start first instead of landing last.
pub fn largest_first(names: &[&'static str]) -> Vec<&'static str> {
    let mut out = names.to_vec();
    out.sort_by_key(|n| std::cmp::Reverse(cell_weight(n, Scheme::Srp)));
    out
}

/// The full `names × schemes` grid as cell jobs (row-major ids), ready
/// for [`run_cells`].
pub fn grid_jobs(
    names: &[&'static str],
    schemes: &[Scheme],
    scale: Scale,
    cfg: SimConfig,
) -> Vec<CellJob> {
    let mut jobs = Vec::with_capacity(names.len() * schemes.len());
    for (i, &kernel) in names.iter().enumerate() {
        for (j, &scheme) in schemes.iter().enumerate() {
            jobs.push(CellJob {
                id: (i * schemes.len() + j) as u64,
                kernel,
                scheme,
                scale,
                cfg,
                deadline: None,
            });
        }
    }
    jobs
}

/// Runs every job across `workers` threads with work stealing, calling
/// `on_complete` on the **calling thread** as each cell finishes
/// (completion order, not submission order — correlate via
/// [`CellResult::id`]).
///
/// Worker panics inside a cell are caught and surfaced as that cell's
/// `Err` outcome; the fleet always runs to completion.
pub fn run_cells<F: FnMut(CellResult)>(
    jobs: &[CellJob],
    workers: usize,
    cache: &WorkloadCache,
    on_complete: F,
) -> FleetStats {
    run_cells_mode(jobs, workers, cache, &ReplayMode::default(), on_complete)
}

/// [`run_cells`] under an explicit [`ReplayMode`] (packed tier and/or
/// trace cache). Per-cell results are bit-identical to the default
/// mode; only setup/replay timing shifts.
pub fn run_cells_mode<F: FnMut(CellResult)>(
    jobs: &[CellJob],
    workers: usize,
    cache: &WorkloadCache,
    mode: &ReplayMode,
    on_complete: F,
) -> FleetStats {
    run_cells_ctl(jobs, workers, cache, mode, None, on_complete)
}

/// [`run_cells_mode`] with an optional per-batch [`BatchCtl`]: at cell
/// pickup a cancelled batch fails the cell with [`CANCELLED`] and an
/// expired [`CellJob::deadline`] fails it with a
/// [`DEADLINE_EXCEEDED`]-prefixed error — in both cases the cell is
/// skipped (never simulated) but still streamed to `on_complete`, so
/// every job gets exactly one reply and a batch can never hang or lose
/// a cell.
pub fn run_cells_ctl<F: FnMut(CellResult)>(
    jobs: &[CellJob],
    workers: usize,
    cache: &WorkloadCache,
    mode: &ReplayMode,
    ctl: Option<&BatchCtl>,
    mut on_complete: F,
) -> FleetStats {
    let workers = workers.max(1).min(jobs.len().max(1));

    // Largest-first deal: sort by descending weight (stable, so equal-
    // weight cells keep submission order), then round-robin so every
    // worker starts on one of the heaviest remaining cells.
    let mut ordered: Vec<CellJob> = jobs.to_vec();
    ordered.sort_by_key(|j| std::cmp::Reverse(cell_weight(j.kernel, j.scheme)));
    let queues: Vec<Mutex<VecDeque<CellJob>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, job) in ordered.into_iter().enumerate() {
        queues[i % workers].lock().expect("deal").push_back(job);
    }

    let steals = AtomicU64::new(0);
    let busy: Vec<Mutex<(f64, usize)>> = (0..workers).map(|_| Mutex::new((0.0, 0))).collect();
    // One registry shard per worker: each worker records lock-free into
    // its own handles; merging happens only when someone scrapes.
    let shards: Option<Vec<Arc<Shard>>> = mode
        .telemetry
        .as_ref()
        .map(|reg| (0..workers).map(|_| reg.shard()).collect());
    let start = Instant::now();
    let (tx, rx) = mpsc::channel::<CellResult>();

    let mut stats = FleetStats {
        workers,
        cells: 0,
        errors: 0,
        wall_seconds: 0.0,
        events: 0,
        sim_cycles: 0,
        replay_seconds: 0.0,
        setup_seconds: 0.0,
        busy_seconds: vec![0.0; workers],
        cells_per_worker: vec![0; workers],
        steals: 0,
        queue_wait_micros: LatencyHist::default(),
    };

    std::thread::scope(|s| {
        for me in 0..workers {
            let tx = tx.clone();
            let queues = &queues;
            let busy = &busy;
            let steals = &steals;
            let cache_ref = cache;
            let shard = shards.as_ref().map(|s| s[me].clone());
            s.spawn(move || loop {
                // Own deque first (front: biggest still-local cell)…
                let mut job = queues[me].lock().expect("own deque").pop_front();
                // …then steal from the back of the first non-empty victim.
                if job.is_none() {
                    for off in 1..queues.len() {
                        let victim = (me + off) % queues.len();
                        if let Some(j) = queues[victim].lock().expect("victim deque").pop_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            if let Some(shard) = &shard {
                                shard.counter("grp_fleet_steals_total", &[]).inc();
                            }
                            job = Some(j);
                            break;
                        }
                    }
                }
                let Some(job) = job else { return };
                let queue_micros = start.elapsed().as_micros() as u64;
                let t0 = Instant::now();
                // Pickup gate: a cancelled batch or an expired deadline
                // skips the simulation but still produces a named-error
                // result, so the caller sees every cell exactly once.
                let (outcome, events, setup_seconds, replay_seconds) =
                    if ctl.is_some_and(|c| c.is_cancelled()) {
                        (Err(CANCELLED.to_string()), 0, 0.0, 0.0)
                    } else if job.deadline.is_some_and(|d| Instant::now() >= d) {
                        (
                            Err(format!(
                                "{DEADLINE_EXCEEDED}: wall-clock deadline passed before cell \
                                 {}/{} started",
                                job.kernel, job.scheme
                            )),
                            0,
                            0.0,
                            0.0,
                        )
                    } else {
                        execute_cell(&job, cache_ref, mode)
                    };
                let busy_secs = t0.elapsed().as_secs_f64();
                {
                    let mut b = busy[me].lock().expect("busy");
                    b.0 += busy_secs;
                    b.1 += 1;
                }
                if let Some(shard) = &shard {
                    record_cell(shard, me, &job, &outcome, events, busy_secs, queue_micros);
                }
                // The receiver outlives every sender (rx drains below in
                // this scope); a send failure means the caller vanished.
                let _ = tx.send(CellResult {
                    id: job.id,
                    kernel: job.kernel,
                    scheme: job.scheme,
                    scale: job.scale,
                    outcome,
                    events,
                    setup_seconds,
                    replay_seconds,
                    queue_micros,
                    worker: me,
                });
            });
        }
        drop(tx);
        // Collector: the calling thread streams completions to the
        // caller while workers are still running.
        for r in rx {
            stats.cells += 1;
            stats.events += r.events;
            stats.replay_seconds += r.replay_seconds;
            stats.setup_seconds += r.setup_seconds;
            stats.queue_wait_micros.record(r.queue_micros);
            match &r.outcome {
                Ok(res) => stats.sim_cycles += res.cycles,
                Err(_) => stats.errors += 1,
            }
            on_complete(r);
        }
    });

    stats.wall_seconds = start.elapsed().as_secs_f64();
    stats.steals = steals.load(Ordering::Relaxed);
    for (w, b) in busy.iter().enumerate() {
        let b = b.lock().expect("busy");
        stats.busy_seconds[w] = b.0;
        stats.cells_per_worker[w] = b.1;
    }
    if let Some(shards) = &shards {
        // Run-level accounting goes through the first shard (the
        // collector runs on the calling thread, after workers joined).
        let s0 = &shards[0];
        s0.counter("grp_fleet_runs_total", &[]).inc();
        s0.counter("grp_fleet_wall_micros_total", &[])
            .add((stats.wall_seconds * 1e6) as u64);
        for w in 0..workers {
            s0.gauge("grp_fleet_worker_utilization", &[("worker", &w.to_string())])
                .set(stats.utilization(w));
        }
    }
    stats
}

/// Records one completed cell into the owning worker's shard.
fn record_cell(
    shard: &Shard,
    worker: usize,
    job: &CellJob,
    outcome: &Result<RunResult, String>,
    events: u64,
    busy_secs: f64,
    queue_micros: u64,
) {
    let scheme = job.scheme.to_string();
    let cell = [("bench", job.kernel), ("scheme", scheme.as_str())];
    shard.counter("grp_fleet_cells_total", &cell).inc();
    shard.counter("grp_replay_events_total", &[]).add(events);
    match outcome {
        Ok(res) => {
            shard.counter("grp_sim_cycles_total", &[]).add(res.cycles);
        }
        Err(_) => {
            shard.counter("grp_fleet_cell_errors_total", &cell).inc();
        }
    }
    shard
        .counter("grp_fleet_busy_micros_total", &[("worker", &worker.to_string())])
        .add((busy_secs * 1e6) as u64);
    shard.hist("grp_fleet_queue_wait_micros", &[]).record(queue_micros);
}

/// Runs one `(kernel, scheme)` cell under `mode`, preferring the trace
/// cache when one is configured. `get_built` supplies the built
/// workload and is only invoked on a cache miss — a hit skips the
/// build, interpretation, and hint derivation entirely.
///
/// Returns `(result, events, setup_seconds, replay_seconds)`; `events`
/// counts materialized trace events in both tiers so packed rows stay
/// comparable.
///
/// # Errors
///
/// Unknown kernel (from `get_built`) or a trace that cannot pack.
pub fn run_cell(
    kernel: &str,
    scale: Scale,
    scheme: Scheme,
    cfg: &SimConfig,
    mode: &ReplayMode,
    get_built: impl FnOnce() -> Result<Arc<BuiltWorkload>, String>,
) -> Result<(RunResult, u64, f64, f64), String> {
    let cc = scheme.compiler_config();
    // Phase spans attribute this cell's cost in `perf --profile`
    // reports; when the global profiler is off (the default) each
    // span is one atomic load and no clock read.
    let prof = crate::telemetry::profiler();
    let slabel = if prof.enabled() { scheme.to_string() } else { String::new() };
    let t0 = Instant::now();
    // Cache fast path: packed trace + post-interpretation memory +
    // heap straight from disk. A stale/corrupt entry reads as a miss.
    if let Some(cache) = &mode.trace_cache {
        let hit = {
            let _s = prof.span_cell("cache_load", kernel, &slabel);
            cache.load(kernel, scale, cc.as_ref())
        };
        if let Some((pt, mem, heap)) = hit {
            let events = pt.event_count();
            let setup_seconds = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            let _s = prof.span_cell("replay", kernel, &slabel);
            let result = if mode.packed {
                run_trace_packed(&pt, &mem, heap, scheme, cfg)
            } else {
                run_trace(&pt.unpack(), &mem, heap, scheme, cfg)
            };
            return Ok((result, events, setup_seconds, t1.elapsed().as_secs_f64()));
        }
    }
    let built = {
        let _s = prof.span_cell("build", kernel, &slabel);
        get_built()?
    };
    let (trace, mem) = {
        let _s = prof.span_cell("interpret", kernel, &slabel);
        built.trace(cc.as_ref())
    };
    let events = trace.events().len() as u64;
    let pt = if mode.packed || mode.trace_cache.is_some() {
        let _s = prof.span_cell("pack", kernel, &slabel);
        Some(
            PackedTrace::pack(&trace)
                .map_err(|e| format!("{kernel}/{scheme}: trace does not pack: {e}"))?,
        )
    } else {
        None
    };
    if let (Some(cache), Some(pt)) = (&mode.trace_cache, &pt) {
        // Best-effort: a full disk must degrade to "no cache", not
        // fail the cell.
        let _s = prof.span_cell("cache_store", kernel, &slabel);
        if let Err(e) = cache.store(kernel, scale, cc.as_ref(), pt, &mem, built.heap) {
            crate::telemetry::log::log_kv(
                crate::telemetry::log::Level::Warn,
                "sched",
                "trace-cache store failed; continuing uncached",
                &[("bench", kernel.into()), ("error", e.to_string().into())],
            );
        }
    }
    let setup_seconds = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _s = prof.span_cell("replay", kernel, &slabel);
    let result = match &pt {
        Some(pt) if mode.packed => run_trace_packed(pt, &mem, built.heap, scheme, cfg),
        _ => run_trace(&trace, &mem, built.heap, scheme, cfg),
    };
    Ok((result, events, setup_seconds, t1.elapsed().as_secs_f64()))
}

/// Builds (via the cache), traces, and replays one cell under `mode`,
/// converting panics into an `Err` naming the cell.
fn execute_cell(
    job: &CellJob,
    cache: &WorkloadCache,
    mode: &ReplayMode,
) -> (Result<RunResult, String>, u64, f64, f64) {
    let body = || {
        run_cell(job.kernel, job.scale, job.scheme, &job.cfg, mode, || {
            cache.get_or_build(job.kernel, job.scale)
        })
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok((result, events, setup, replay))) => (Ok(result), events, setup, replay),
        Ok(Err(e)) => (Err(e), 0, 0.0, 0.0),
        Err(payload) => (
            Err(format!(
                "cell {}/{} panicked: {}",
                job.kernel,
                job.scheme,
                panic_message(&*payload)
            )),
            0,
            0.0,
            0.0,
        ),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_order_heavy_cells_first() {
        assert!(cell_weight("bzip2", Scheme::Srp) > cell_weight("parser", Scheme::Srp));
        assert!(cell_weight("bzip2", Scheme::Srp) > cell_weight("bzip2", Scheme::NoPrefetch));
        let order = largest_first(&["parser", "bzip2", "mcf", "swim"]);
        assert_eq!(order[0], "bzip2");
        assert_eq!(order[1], "swim");
        // Stability: equal-weight kernels keep caller order.
        assert_eq!(order[2], "parser");
        assert_eq!(order[3], "mcf");
    }

    #[test]
    fn cache_builds_once_and_shares() {
        let cache = WorkloadCache::new();
        let a = cache.get_or_build("crafty", Scale::Test).expect("build");
        let b = cache.get_or_build("crafty", Scale::Test).expect("cached");
        assert!(Arc::ptr_eq(&a, &b), "same Arc for repeated requests");
        assert_eq!(cache.built_count(), 1);
        assert!(cache.get("crafty", Scale::Test).is_some());
        assert!(cache.get("crafty", Scale::Small).is_none(), "scale is part of the key");
        let err = cache.get_or_build("nope", Scale::Test).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn cache_insert_seeds_without_replacing() {
        let cache = WorkloadCache::new();
        let built = Arc::new(grp_workloads::by_name("twolf").unwrap().build(Scale::Test));
        cache.insert("twolf", Scale::Test, built.clone());
        let got = cache.get_or_build("twolf", Scale::Test).expect("seeded");
        assert!(Arc::ptr_eq(&built, &got), "seeded workload is reused, not rebuilt");
        // A second insert must not swap the workload out from under readers.
        let other = Arc::new(grp_workloads::by_name("twolf").unwrap().build(Scale::Test));
        cache.insert("twolf", Scale::Test, other);
        let still = cache.get_or_build("twolf", Scale::Test).expect("still seeded");
        assert!(Arc::ptr_eq(&built, &still));
    }

    #[test]
    fn run_cells_streams_every_cell_and_isolates_errors() {
        let cfg = SimConfig::paper();
        let jobs = vec![
            CellJob {
                id: 7,
                kernel: "twolf",
                scheme: Scheme::NoPrefetch,
                scale: Scale::Test,
                cfg,
                deadline: None,
            },
            CellJob {
                id: 8,
                kernel: "not-a-kernel",
                scheme: Scheme::Srp,
                scale: Scale::Test,
                cfg,
                deadline: None,
            },
            CellJob {
                id: 9,
                kernel: "twolf",
                scheme: Scheme::Srp,
                scale: Scale::Test,
                cfg,
                deadline: None,
            },
        ];
        let cache = WorkloadCache::new();
        let mut seen = Vec::new();
        let stats = run_cells(&jobs, 2, &cache, |r| seen.push(r));
        assert_eq!(stats.cells, 3);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.queue_wait_micros.count(), 3);
        assert_eq!(stats.cells_per_worker.iter().sum::<usize>(), 3);
        seen.sort_by_key(|r| r.id);
        assert_eq!(seen.iter().map(|r| r.id).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert!(seen[0].outcome.is_ok());
        let err = seen[1].outcome.as_ref().unwrap_err();
        assert!(err.contains("not-a-kernel"), "{err}");
        assert!(seen[2].outcome.is_ok());
        // The two twolf cells shared one build.
        assert_eq!(cache.built_count(), 1);
        // Replays really ran and were accounted.
        assert!(stats.events > 0);
        assert!(stats.sim_cycles > 0);
        assert!(stats.wall_seconds > 0.0);
    }

    #[test]
    fn replay_modes_are_bit_identical_and_cache_hits_skip_builds() {
        let cfg = SimConfig::paper();
        let schemes = [Scheme::NoPrefetch, Scheme::Srp, Scheme::GrpVar];
        let jobs = grid_jobs(&["twolf", "crafty"], &schemes, Scale::Test, cfg);
        let collect = |mode: &ReplayMode, cache: &WorkloadCache| {
            let mut out: Vec<(u64, RunResult)> = Vec::new();
            let stats = run_cells_mode(&jobs, 2, cache, mode, |r| {
                out.push((r.id, r.outcome.expect("cell ok")));
            });
            assert_eq!(stats.errors, 0);
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let baseline = collect(&ReplayMode::default(), &WorkloadCache::new());

        let dir = std::env::temp_dir()
            .join(format!("grp-sched-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tc = Arc::new(TraceCache::new(&dir));
        let packed = ReplayMode { packed: true, trace_cache: None, telemetry: None };
        let cached = ReplayMode { packed: false, trace_cache: Some(tc.clone()), telemetry: None };
        let both = ReplayMode { packed: true, trace_cache: Some(tc.clone()), telemetry: None };
        assert_eq!(collect(&packed, &WorkloadCache::new()), baseline, "packed tier diverged");
        assert_eq!(collect(&cached, &WorkloadCache::new()), baseline, "cache (cold) diverged");
        // Warm cache: every cell must be served from disk — zero builds.
        let warm_cache = WorkloadCache::new();
        assert_eq!(collect(&both, &warm_cache), baseline, "cache (warm, packed) diverged");
        assert_eq!(
            warm_cache.built_count(),
            0,
            "a warm trace cache must skip workload builds entirely"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_deadlines_yield_named_errors_never_lost_replies() {
        let cfg = SimConfig::paper();
        // Deterministic: every deadline is already in the past, so every
        // cell must come back as a deadline_exceeded error — exactly one
        // reply per job, none simulated, none hung.
        let past = Instant::now();
        let mut jobs = grid_jobs(&["twolf", "crafty"], &[Scheme::NoPrefetch, Scheme::Srp], Scale::Test, cfg);
        for j in &mut jobs {
            j.deadline = Some(past);
        }
        let cache = WorkloadCache::new();
        let mut seen = Vec::new();
        let stats = run_cells_ctl(&jobs, 2, &cache, &ReplayMode::default(), None, |r| {
            seen.push(r)
        });
        assert_eq!(stats.cells, jobs.len(), "every job answered");
        assert_eq!(stats.errors, jobs.len());
        for r in &seen {
            let err = r.outcome.as_ref().unwrap_err();
            assert!(err.starts_with(DEADLINE_EXCEEDED), "{err}");
            assert!(err.contains(r.kernel), "error names the cell: {err}");
        }
        assert_eq!(cache.built_count(), 0, "expired cells never build");
        // A generous deadline changes nothing about the results.
        for j in &mut jobs {
            j.deadline = Some(Instant::now() + std::time::Duration::from_secs(3600));
        }
        let stats = run_cells_ctl(&jobs, 2, &cache, &ReplayMode::default(), None, |_| {});
        assert_eq!(stats.errors, 0, "live deadlines run normally");
    }

    #[test]
    fn cancelled_batch_fails_remaining_cells_without_running_them() {
        let cfg = SimConfig::paper();
        let jobs = grid_jobs(&["twolf"], &[Scheme::NoPrefetch, Scheme::Srp], Scale::Test, cfg);
        let cache = WorkloadCache::new();
        let ctl = BatchCtl::new();
        ctl.cancel(); // cancelled before any pickup: all cells skip
        let mut seen = Vec::new();
        let stats =
            run_cells_ctl(&jobs, 2, &cache, &ReplayMode::default(), Some(&ctl), |r| seen.push(r));
        assert_eq!(stats.cells, jobs.len(), "cancelled cells still reply");
        assert_eq!(stats.errors, jobs.len());
        for r in &seen {
            assert_eq!(r.outcome.as_ref().unwrap_err(), CANCELLED);
        }
        assert_eq!(cache.built_count(), 0, "cancelled cells never build");
    }

    #[test]
    fn grid_jobs_cover_the_whole_grid_with_unique_ids() {
        let jobs = grid_jobs(
            &["twolf", "mcf"],
            &[Scheme::NoPrefetch, Scheme::Stride, Scheme::Srp],
            Scale::Test,
            SimConfig::paper(),
        );
        assert_eq!(jobs.len(), 6);
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6, "ids are unique");
    }
}

//! Replay-server engine behind the `serve` binary: request parsing,
//! batch scheduling, reply rendering, selfcheck, session accounting —
//! and the live telemetry surface.
//!
//! The binary owns only transport (stdin vs unix socket, accept retry)
//! and process-exit policy; everything protocol-shaped lives here so
//! tests can drive whole sessions through in-memory readers/writers.
//!
//! # Protocol
//!
//! One JSON object per line; a blank line (or EOF) flushes the current
//! batch through the work-stealing fleet and writes one reply line per
//! job in completion order (correlate by `id`). Two request forms:
//!
//! * Job: `{"kernel":"bzip2","scheme":"SRP"}` with optional `"id"`
//!   (defaults to the 1-based line number) and `"scale"`. Unknown
//!   fields are rejected — a typo'd field must not be silently
//!   ignored.
//! * Stats: `{"stats":true}` with optional `"id"` — answered
//!   **immediately** (not batched) with
//!   `{"id":…,"ok":true,"stats":{…}}`, a snapshot of the server's
//!   metrics registry at that instant: requests, batches, replies,
//!   per-cell fleet counters, trace-cache hits/misses, worker
//!   utilization. This is the in-band "what has this session actually
//!   done" probe; scraping it does not perturb the counters it reads
//!   (beyond counting the stats request itself).
//!
//! Every session records into an externally supplied
//! [`Registry`](crate::telemetry::Registry) (`grp_serve_*` families;
//! the fleet and trace-cache families land in the same registry), and
//! [`Server::write_metrics`] exports the whole registry as Prometheus
//! text plus a JSON twin for `--metrics-out`.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

use grp_core::{Scheme, SimConfig};
use grp_workloads::Scale;

use crate::json::{run_result_json, Json};
use crate::sched::{self, CellJob, CellResult, FleetStats, ReplayMode, WorkloadCache};
use crate::suite::SuiteScale;
use crate::telemetry::exposition;
use crate::telemetry::log::{self, Level};
use crate::telemetry::registry::{Registry, Shard};

/// Construction-time configuration for a [`Server`].
#[derive(Debug)]
pub struct ServerOpts {
    /// Fleet worker count per batch.
    pub workers: usize,
    /// Scale for requests that don't name one.
    pub default_scale: SuiteScale,
    /// Platform configuration for every cell.
    pub cfg: SimConfig,
    /// Replay tier + optional trace cache; its `telemetry` field is
    /// overwritten with [`ServerOpts::registry`] so fleet counters
    /// land in the server's registry.
    pub mode: ReplayMode,
    /// Re-run every successful reply serially and count mismatches.
    pub selfcheck: bool,
    /// The metrics registry this server records into (the binary
    /// passes the process-global one; tests pass a fresh one).
    pub registry: Arc<Registry>,
}

/// The replay server: batching, scheduling, replies, telemetry.
#[derive(Debug)]
pub struct Server {
    workers: usize,
    default_scale: SuiteScale,
    cfg: SimConfig,
    cache: WorkloadCache,
    mode: ReplayMode,
    selfcheck: bool,
    registry: Arc<Registry>,
    shard: Arc<Shard>,
    batches: u64,
    /// Session-lifetime aggregate for `--perf-out` (fleet entry shape).
    totals: Option<FleetStats>,
    /// Per-cell rows for the fleet entry's `kernels` array.
    rows: Vec<Json>,
    mismatches: u64,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// A simulation job for the next batch.
    Job(CellJob),
    /// An in-band metrics probe, answered immediately.
    Stats {
        /// Echoed reply id.
        id: u64,
    },
}

impl Server {
    /// A server recording into `opts.registry`.
    pub fn new(opts: ServerOpts) -> Self {
        let shard = opts.registry.shard();
        let mode = opts.mode.with_telemetry(opts.registry.clone());
        Server {
            workers: opts.workers,
            default_scale: opts.default_scale,
            cfg: opts.cfg,
            cache: WorkloadCache::new(),
            mode,
            selfcheck: opts.selfcheck,
            registry: opts.registry,
            shard,
            batches: 0,
            totals: None,
            rows: Vec::new(),
            mismatches: 0,
        }
    }

    /// Selfcheck mismatches recorded so far (the binary's exit gate).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Session-lifetime fleet totals, if any batch ran.
    pub fn totals(&self) -> Option<&FleetStats> {
        self.totals.as_ref()
    }

    /// Takes the accumulated per-cell rows (for the `--perf-out`
    /// trajectory entry).
    pub fn take_rows(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.rows)
    }

    /// The registry this server records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The default scale requests inherit.
    pub fn default_scale(&self) -> SuiteScale {
        self.default_scale
    }

    /// Reads one client's request stream to EOF, flushing a batch at
    /// every blank line and answering stats probes inline.
    pub fn session<R: BufRead, W: Write>(&mut self, reader: R, out: &mut W) {
        let session_id = log::next_id();
        self.shard.counter("grp_serve_sessions_total", &[]).inc();
        log::log_kv(
            Level::Info,
            "serve",
            "session started",
            &[("session", session_id.into())],
        );
        let mut batch: Vec<Result<CellJob, (u64, String)>> = Vec::new();
        let mut lineno = 0u64;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    log::log_kv(
                        Level::Error,
                        "serve",
                        "read failed; closing session",
                        &[("session", session_id.into()), ("error", e.to_string().into())],
                    );
                    break;
                }
            };
            lineno += 1;
            if line.trim().is_empty() {
                self.flush_batch(&mut batch, out);
                continue;
            }
            self.shard.counter("grp_serve_requests_total", &[]).inc();
            match parse_request(&line, lineno, self.default_scale) {
                Ok(Request::Job(job)) => batch.push(Ok(job)),
                Ok(Request::Stats { id }) => {
                    self.shard.counter("grp_serve_stats_requests_total", &[]).inc();
                    // Count the reply before snapshotting so the probe
                    // sees itself — every reply on the wire is counted
                    // in the snapshot it carries.
                    self.shard.counter("grp_serve_replies_total", &[("ok", "true")]).inc();
                    let reply = self.stats_reply(id);
                    writeln!(out, "{}", reply.render()).expect("write reply");
                    out.flush().expect("flush reply");
                }
                Err((id, e)) => {
                    self.shard.counter("grp_serve_request_errors_total", &[]).inc();
                    batch.push(Err((id, e)));
                }
            }
        }
        self.flush_batch(&mut batch, out);
        log::log_kv(
            Level::Info,
            "serve",
            "session ended",
            &[("session", session_id.into()), ("lines", lineno.into())],
        );
    }

    /// The reply for one in-band stats probe: a full registry snapshot
    /// (counters, gauges, histograms) as of this instant.
    fn stats_reply(&self, id: u64) -> Json {
        let snap = self.registry.snapshot();
        Json::object()
            .set("id", id)
            .set("ok", true)
            .set("stats", exposition::snapshot_json(&snap, None))
    }

    fn write_reply<W: Write>(&self, out: &mut W, ok: bool, reply: Json) {
        self.shard
            .counter("grp_serve_replies_total", &[("ok", if ok { "true" } else { "false" })])
            .inc();
        writeln!(out, "{}", reply.render()).expect("write reply");
        out.flush().expect("flush reply");
    }

    /// Schedules the accumulated batch across the fleet and writes one
    /// reply line per job as its cell completes.
    fn flush_batch<W: Write>(
        &mut self,
        batch: &mut Vec<Result<CellJob, (u64, String)>>,
        out: &mut W,
    ) {
        if batch.is_empty() {
            return;
        }
        let mut jobs: Vec<CellJob> = Vec::new();
        for req in batch.drain(..) {
            match req {
                Ok(job) => jobs.push(job),
                Err((id, e)) => {
                    let reply = Json::object().set("id", id).set("ok", false).set("error", e);
                    self.write_reply(out, false, reply);
                }
            }
        }
        if jobs.is_empty() {
            return;
        }
        self.batches += 1;
        self.shard.counter("grp_serve_batches_total", &[]).inc();
        let mut completed: Vec<CellResult> = Vec::new();
        // Workers record into their own registry shards inside
        // run_cells_mode (mode.telemetry is this server's registry);
        // only serve-protocol counters go through self.shard here.
        let shard = self.shard.clone();
        let stats = sched::run_cells_mode(&jobs, self.workers, &self.cache, &self.mode, |cell| {
            let (ok, reply) = match &cell.outcome {
                Ok(r) => (
                    true,
                    Json::object()
                        .set("id", cell.id)
                        .set("ok", true)
                        .set("bench", cell.kernel)
                        .set("scheme", cell.scheme.label())
                        .set("scale", scale_label(cell.scale))
                        .set("worker", cell.worker as u64)
                        .set("events", cell.events)
                        .set("replay_seconds", cell.replay_seconds)
                        .set("result", run_result_json(r, None)),
                ),
                Err(e) => (
                    false,
                    Json::object().set("id", cell.id).set("ok", false).set("error", e.as_str()),
                ),
            };
            shard
                .counter("grp_serve_replies_total", &[("ok", if ok { "true" } else { "false" })])
                .inc();
            writeln!(out, "{}", reply.render()).expect("write reply");
            out.flush().expect("flush reply");
            completed.push(cell);
        });
        self.shard
            .hist("grp_serve_batch_wall_micros", &[])
            .record((stats.wall_seconds * 1e6) as u64);
        self.shard
            .gauge("grp_serve_cached_workloads", &[])
            .set(self.cache.built_count() as f64);
        log::log_kv(
            Level::Info,
            "serve",
            "batch complete",
            &[
                ("batch", self.batches.into()),
                ("jobs", (stats.cells as u64).into()),
                ("errors", (stats.errors as u64).into()),
                ("wall_seconds", stats.wall_seconds.into()),
                ("events_per_sec", stats.events_per_sec().into()),
                ("cached_workloads", (self.cache.built_count() as u64).into()),
            ],
        );
        for cell in &completed {
            if let Ok(r) = &cell.outcome {
                self.rows.push(
                    Json::object()
                        .set("bench", cell.kernel)
                        .set("scheme", cell.scheme.label())
                        .set("events", cell.events)
                        .set("sim_cycles", r.cycles)
                        .set("replay_seconds", cell.replay_seconds)
                        .set(
                            "events_per_sec",
                            cell.events as f64 / cell.replay_seconds.max(1e-9),
                        )
                        .set("sim_cycles_per_sec", r.cycles as f64 / cell.replay_seconds.max(1e-9))
                        .set("worker", cell.worker as u64),
                );
            }
        }
        self.absorb(stats);
        if self.selfcheck {
            self.selfcheck_batch(&completed);
        }
    }

    /// Folds one batch's fleet stats into the session totals.
    fn absorb(&mut self, s: FleetStats) {
        match &mut self.totals {
            None => self.totals = Some(s),
            Some(t) => {
                t.cells += s.cells;
                t.errors += s.errors;
                t.wall_seconds += s.wall_seconds;
                t.events += s.events;
                t.sim_cycles += s.sim_cycles;
                t.replay_seconds += s.replay_seconds;
                t.setup_seconds += s.setup_seconds;
                t.steals += s.steals;
                t.queue_wait_micros.absorb(&s.queue_wait_micros);
                // Worker count is fixed for the session (--jobs), but a
                // tiny batch can spawn fewer workers than configured —
                // fold per-worker columns index-wise.
                for w in 0..s.workers.min(t.workers) {
                    t.busy_seconds[w] += s.busy_seconds[w];
                    t.cells_per_worker[w] += s.cells_per_worker[w];
                }
            }
        }
    }

    /// Re-runs every completed cell serially on a **freshly built**
    /// workload (no shared cache — full independence from the fleet
    /// path) and records any bit-difference. The serial side always
    /// replays materialized, so under `--packed` (or `--trace-cache`)
    /// this is also a packed-vs-materialized identity gate per reply.
    fn selfcheck_batch(&mut self, completed: &[CellResult]) {
        for cell in completed {
            let Ok(got) = &cell.outcome else { continue };
            let Some(w) = grp_workloads::by_name(cell.kernel) else { continue };
            let want = w.build(cell.scale).run(cell.scheme, &self.cfg);
            if *got != want {
                log::log_kv(
                    Level::Error,
                    "serve",
                    "selfcheck mismatch: fleet result differs from serial path",
                    &[
                        ("bench", cell.kernel.into()),
                        ("scheme", cell.scheme.label().into()),
                        ("scale", scale_label(cell.scale).into()),
                        ("fleet_cycles", got.cycles.into()),
                        ("serial_cycles", want.cycles.into()),
                    ],
                );
                self.mismatches += 1;
                self.shard.counter("grp_serve_selfcheck_mismatches_total", &[]).inc();
            }
        }
    }

    /// Writes the registry as Prometheus-style text to `path` and as
    /// JSON (with the explicitly wall-clock `scraped_at_unix_micros`
    /// field) to `<path>.json`, both atomically.
    ///
    /// # Errors
    ///
    /// Any staged-write I/O error; metrics export is best-effort, so
    /// callers typically warn and continue.
    pub fn write_metrics(&self, path: &str) -> std::io::Result<()> {
        let snap = self.registry.snapshot();
        crate::artifact::atomic_write(path, exposition::render_text(&snap))?;
        let scraped_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let doc = exposition::snapshot_json(&snap, Some(scraped_at));
        crate::artifact::atomic_write(format!("{path}.json"), doc.render())
    }
}

/// Bounded exponential backoff for socket accept failures: 10ms
/// doubling to a 1.28s cap, giving up (terminal `None`) after 8
/// consecutive failures. One success resets the schedule — only an
/// unbroken failure run is treated as a dead listener.
#[derive(Debug, Default)]
pub struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    /// Consecutive failures tolerated before giving up.
    pub const MAX_FAILURES: u32 = 8;

    /// A fresh schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one failure: the delay to sleep before retrying, or
    /// `None` when the failure run is terminal and the caller should
    /// stop accepting.
    pub fn on_failure(&mut self) -> Option<Duration> {
        self.consecutive += 1;
        if self.consecutive > Self::MAX_FAILURES {
            return None;
        }
        // 10ms, 20ms, 40ms, … capped at 1280ms.
        Some(Duration::from_millis(10u64 << (self.consecutive - 1).min(7)))
    }

    /// Registers a successful accept, resetting the schedule.
    pub fn on_success(&mut self) {
        self.consecutive = 0;
    }
}

/// The trajectory/scale tag for a workload scale.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Parses one request line into a job or stats probe; errors carry the
/// reply id.
///
/// # Errors
///
/// `(id, message)` naming the malformed field; the reply id is the
/// request's own `id` when present and well-formed, else the 1-based
/// line number.
pub fn parse_request(
    line: &str,
    lineno: u64,
    default_scale: SuiteScale,
) -> Result<Request, (u64, String)> {
    let doc = Json::parse(line).map_err(|e| (lineno, format!("malformed request: {e}")))?;
    let fields = doc
        .entries()
        .ok_or((lineno, "request must be a JSON object".to_string()))?;
    // The id (when present and well-formed) tags even the errors below.
    let id = doc.get("id").and_then(|v| v.as_u64()).unwrap_or(lineno);
    if doc.get("stats").is_some() {
        for (key, value) in fields {
            match key.as_str() {
                "stats" => {
                    if value.as_bool() != Some(true) {
                        return Err((id, "'stats' must be true".to_string()));
                    }
                }
                "id" => {
                    value
                        .as_u64()
                        .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
                }
                other => {
                    return Err((
                        id,
                        format!("unknown stats-request field '{other}' (valid: stats, id)"),
                    ))
                }
            }
        }
        return Ok(Request::Stats { id });
    }
    let mut kernel: Option<&'static str> = None;
    let mut scheme: Option<Scheme> = None;
    let mut scale: Scale = default_scale.workload_scale();
    for (key, value) in fields {
        match key.as_str() {
            "id" => {
                value
                    .as_u64()
                    .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
            }
            "kernel" => {
                let name = value
                    .as_str()
                    .ok_or((id, "'kernel' must be a string".to_string()))?;
                kernel = Some(
                    grp_workloads::by_name(name)
                        .map(|w| w.name)
                        .ok_or_else(|| {
                            (id, format!("unknown kernel '{name}' (valid: registry names, e.g. gzip, mcf, bzip2)"))
                        })?,
                );
            }
            "scheme" => {
                let label = value
                    .as_str()
                    .ok_or((id, "'scheme' must be a string".to_string()))?;
                scheme = Some(Scheme::by_label(label).ok_or_else(|| {
                    (
                        id,
                        format!(
                            "unknown scheme '{label}' (valid: {})",
                            Scheme::ALL.map(|s| s.label()).join(", ")
                        ),
                    )
                })?);
            }
            "scale" => {
                let s = value
                    .as_str()
                    .ok_or((id, "'scale' must be a string".to_string()))?;
                scale = SuiteScale::parse(s)
                    .ok_or_else(|| (id, format!("unknown scale '{s}' (valid: test, small, paper)")))?
                    .workload_scale();
            }
            other => {
                return Err((
                    id,
                    format!(
                        "unknown request field '{other}' (valid: id, kernel, scheme, scale, stats)"
                    ),
                ))
            }
        }
    }
    Ok(Request::Job(CellJob {
        id,
        kernel: kernel.ok_or((id, "request missing 'kernel'".to_string()))?,
        scheme: scheme.ok_or((id, "request missing 'scheme'".to_string()))?,
        scale,
        cfg: SimConfig::paper(),
    }))
}

/// Validates a saved reply stream: every line parses, has a boolean
/// `ok`, and successful replies carry the summary fields (stats
/// replies carry their snapshot object instead). Any `ok: false` line
/// is reported as a failure.
///
/// # Errors
///
/// The first malformed or failed line, or an empty file.
pub fn check_replies(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: malformed: {e}", i + 1))?;
        let ok = doc
            .get("ok")
            .and_then(|v| v.as_bool())
            .ok_or(format!("line {}: missing boolean 'ok'", i + 1))?;
        doc.get("id")
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing 'id'", i + 1))?;
        if !ok {
            let e = doc.get("error").and_then(|v| v.as_str()).unwrap_or("<no error field>");
            return Err(format!("line {}: reply failed: {e}", i + 1));
        }
        if let Some(stats) = doc.get("stats") {
            if stats.get("counters").is_none() {
                return Err(format!("line {}: stats reply missing 'counters'", i + 1));
            }
            n += 1;
            continue;
        }
        for key in ["bench", "scheme", "scale"] {
            doc.get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("line {}: missing string '{key}'", i + 1))?;
        }
        let cycles = doc
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing result.cycles", i + 1))?;
        if cycles == 0 {
            return Err(format!("line {}: zero-cycle result", i + 1));
        }
        n += 1;
    }
    if n == 0 {
        return Err("no replies in file".to_string());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(workers: usize) -> Server {
        Server::new(ServerOpts {
            workers,
            default_scale: SuiteScale::Test,
            cfg: SimConfig::paper(),
            mode: ReplayMode::default(),
            selfcheck: false,
            registry: Arc::new(Registry::new()),
        })
    }

    fn run_session(server: &mut Server, input: &str) -> Vec<Json> {
        let mut out = Vec::new();
        server.session(std::io::Cursor::new(input.to_string()), &mut out);
        String::from_utf8(out)
            .expect("utf8 replies")
            .lines()
            .map(|l| Json::parse(l).expect("reply parses"))
            .collect()
    }

    #[test]
    fn accept_backoff_schedule_is_exact() {
        let mut b = AcceptBackoff::new();
        let mut delays = Vec::new();
        loop {
            match b.on_failure() {
                Some(d) => delays.push(d.as_millis() as u64),
                None => break,
            }
        }
        assert_eq!(delays, [10, 20, 40, 80, 160, 320, 640, 1280]);
        // A success resets the schedule back to the first step.
        b.on_success();
        assert_eq!(b.on_failure(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn parse_request_handles_jobs_stats_and_rejections() {
        let job = parse_request(
            r#"{"kernel":"twolf","scheme":"SRP","id":9}"#,
            1,
            SuiteScale::Test,
        )
        .expect("job parses");
        match job {
            Request::Job(j) => {
                assert_eq!(j.id, 9);
                assert_eq!(j.kernel, "twolf");
            }
            other => panic!("expected job, got {other:?}"),
        }
        match parse_request(r#"{"stats":true,"id":3}"#, 2, SuiteScale::Test).expect("stats") {
            Request::Stats { id } => assert_eq!(id, 3),
            other => panic!("expected stats, got {other:?}"),
        }
        let (_, e) =
            parse_request(r#"{"stats":false}"#, 3, SuiteScale::Test).unwrap_err();
        assert!(e.contains("'stats' must be true"), "{e}");
        let (_, e) =
            parse_request(r#"{"stats":true,"kernel":"gzip"}"#, 4, SuiteScale::Test).unwrap_err();
        assert!(e.contains("unknown stats-request field 'kernel'"), "{e}");
        let (_, e) = parse_request(r#"{"kernel":"twolf"}"#, 5, SuiteScale::Test).unwrap_err();
        assert!(e.contains("missing 'scheme'"), "{e}");
    }

    #[test]
    fn stats_reply_counts_match_session_activity() {
        let mut server = test_server(2);
        // 3 job requests (one bad scheme), a flush, then a stats probe.
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"kernel":"crafty","scheme":"SRP","id":2}"#, "\n",
            r#"{"kernel":"twolf","scheme":"SPR","id":3}"#, "\n",
            "\n",
            r#"{"stats":true,"id":99}"#, "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 4, "3 job replies + 1 stats reply");
        let stats = replies
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_u64()) == Some(99))
            .and_then(|r| r.get("stats"))
            .expect("stats reply present");
        let counter = |name: &str| {
            stats
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        // 4 non-blank request lines: 3 jobs + the stats probe itself.
        assert_eq!(counter("grp_serve_requests_total"), 4);
        assert_eq!(counter("grp_serve_stats_requests_total"), 1);
        assert_eq!(counter("grp_serve_request_errors_total"), 1);
        assert_eq!(counter("grp_serve_batches_total"), 1);
        // The batch replayed exactly the two valid cells.
        assert_eq!(counter("grp_fleet_cells_total{bench=\"twolf\",scheme=\"none\"}"), 1);
        assert_eq!(counter("grp_fleet_cells_total{bench=\"crafty\",scheme=\"SRP\"}"), 1);
        // Replies at stats time: 2 ok cells + 1 error + the stats
        // reply itself (counted before rendering the snapshot).
        assert_eq!(counter("grp_serve_replies_total{ok=\"true\"}"), 3);
        assert_eq!(counter("grp_serve_replies_total{ok=\"false\"}"), 1);
        // Session totals track the successful cells.
        let totals = server.totals().expect("batch ran");
        assert_eq!(totals.cells, 2);
        assert_eq!(totals.errors, 0);
        assert_eq!(server.mismatches(), 0);
    }

    #[test]
    fn selfcheck_passes_on_identical_paths_and_metrics_export_roundtrips() {
        let mut server = Server::new(ServerOpts {
            workers: 2,
            default_scale: SuiteScale::Test,
            cfg: SimConfig::paper(),
            mode: ReplayMode { packed: true, trace_cache: None, telemetry: None },
            selfcheck: true,
            registry: Arc::new(Registry::new()),
        });
        let input = concat!(
            r#"{"kernel":"gzip","scheme":"SRP"}"#, "\n",
            r#"{"kernel":"mcf","scheme":"none"}"#, "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.get("ok").and_then(|v| v.as_bool()) == Some(true)));
        assert_eq!(server.mismatches(), 0, "packed fleet path matches serial replay");

        let dir = std::env::temp_dir().join(format!("grp-serve-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        server.write_metrics(path.to_str().unwrap()).expect("export");
        let text = std::fs::read_to_string(&path).expect("text exists");
        let parsed = exposition::validate_text(&text).expect("exposition validates");
        assert!(parsed.counters.contains_key("grp_serve_batches_total"));
        let twin = std::fs::read_to_string(format!("{}.json", path.display())).expect("json twin");
        let doc = Json::parse(&twin).expect("twin parses");
        assert!(doc.get("scraped_at_unix_micros").and_then(|v| v.as_u64()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reply_stream_with_stats_passes_check_replies() {
        let mut server = test_server(1);
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none"}"#, "\n",
            "\n",
            r#"{"stats":true}"#, "\n",
        );
        let mut out = Vec::new();
        server.session(std::io::Cursor::new(input.to_string()), &mut out);
        let dir = std::env::temp_dir().join(format!("grp-serve-replies-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replies.ndjson");
        std::fs::write(&path, &out).unwrap();
        let n = check_replies(path.to_str().unwrap()).expect("replies validate");
        assert_eq!(n, 2, "one job reply + one stats reply");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

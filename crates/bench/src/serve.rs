//! Replay-server engine behind the `serve` binary: request parsing,
//! batch scheduling, reply rendering, selfcheck, session accounting —
//! and the live telemetry surface.
//!
//! The binary owns only transport (stdin vs unix socket, accept retry)
//! and process-exit policy; everything protocol-shaped lives here so
//! tests can drive whole sessions through in-memory readers/writers.
//!
//! # Protocol
//!
//! One JSON object per line; a blank line (or EOF) flushes the current
//! batch through the work-stealing fleet and writes one reply line per
//! job in completion order (correlate by `id`). Two request forms:
//!
//! * Job: `{"kernel":"bzip2","scheme":"SRP"}` with optional `"id"`
//!   (defaults to the 1-based line number) and `"scale"`. Unknown
//!   fields are rejected — a typo'd field must not be silently
//!   ignored.
//! * Stats: `{"stats":true}` with optional `"id"` — answered
//!   **immediately** (not batched) with
//!   `{"id":…,"ok":true,"stats":{…}}`, a snapshot of the server's
//!   metrics registry at that instant: requests, batches, replies,
//!   per-cell fleet counters, trace-cache hits/misses, worker
//!   utilization. This is the in-band "what has this session actually
//!   done" probe; scraping it does not perturb the counters it reads
//!   (beyond counting the stats request itself).
//!
//! Every session records into an externally supplied
//! [`Registry`](crate::telemetry::Registry) (`grp_serve_*` families;
//! the fleet and trace-cache families land in the same registry), and
//! [`Server::write_metrics`] exports the whole registry as Prometheus
//! text plus a JSON twin for `--metrics-out`.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::{Duration, Instant};

use grp_core::{Scheme, SimConfig};
use grp_workloads::Scale;

use crate::json::{run_result_json, Json};
use crate::sched::{self, BatchCtl, CellJob, CellResult, FleetStats, ReplayMode, WorkloadCache};
use crate::suite::SuiteScale;
use crate::telemetry::exposition;
use crate::telemetry::log::{self, Level};
use crate::telemetry::registry::{Registry, Shard};

/// Construction-time configuration for a [`Server`].
#[derive(Debug)]
pub struct ServerOpts {
    /// Fleet worker count per batch.
    pub workers: usize,
    /// Scale for requests that don't name one.
    pub default_scale: SuiteScale,
    /// Platform configuration for every cell.
    pub cfg: SimConfig,
    /// Replay tier + optional trace cache; its `telemetry` field is
    /// overwritten with [`ServerOpts::registry`] so fleet counters
    /// land in the server's registry.
    pub mode: ReplayMode,
    /// Re-run every successful reply serially and count mismatches.
    pub selfcheck: bool,
    /// The metrics registry this server records into (the binary
    /// passes the process-global one; tests pass a fresh one).
    pub registry: Arc<Registry>,
    /// Per-request wall-clock deadline (`--request-deadline-ms`),
    /// stamped at admission: a job still queued when it expires yields
    /// a named `deadline_exceeded` error reply instead of running.
    /// `None` never expires. Composes with the in-simulation
    /// `--max-cycles` watchdog (which bounds a cell already running).
    pub request_deadline: Option<Duration>,
    /// Bounded admission (`--max-inflight`): at most this many
    /// not-yet-flushed jobs per session; excess jobs are shed with a
    /// named `overloaded` error reply instead of queueing unboundedly.
    /// `None` sizes the bound from the worker count (workers × 8).
    pub max_inflight: Option<usize>,
}

impl ServerOpts {
    /// The effective admission bound ([`ServerOpts::max_inflight`] or
    /// the worker-derived default).
    pub fn effective_max_inflight(workers: usize, max_inflight: Option<usize>) -> usize {
        max_inflight.unwrap_or_else(|| workers.max(1) * 8).max(1)
    }
}

/// Why a [`Server::session`] ended — the binary's exit policy hinges
/// on which.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// The request stream reached EOF (stdin closed / socket closed).
    Eof,
    /// The client sent the in-band `{"drain":true}` probe: the session
    /// flushed everything in flight and acknowledged; the process
    /// should export artifacts and exit 0.
    Drain,
    /// The client vanished mid-reply (broken pipe): the batch's
    /// remaining cells were cancelled; the session is over but the
    /// process (and other connections) live on.
    ClientGone,
}

/// The replay server: batching, scheduling, replies, telemetry.
#[derive(Debug)]
pub struct Server {
    workers: usize,
    default_scale: SuiteScale,
    cfg: SimConfig,
    cache: WorkloadCache,
    mode: ReplayMode,
    selfcheck: bool,
    registry: Arc<Registry>,
    shard: Arc<Shard>,
    request_deadline: Option<Duration>,
    max_inflight: usize,
    batches: u64,
    /// Session-lifetime aggregate for `--perf-out` (fleet entry shape).
    totals: Option<FleetStats>,
    /// Per-cell rows for the fleet entry's `kernels` array.
    rows: Vec<Json>,
    mismatches: u64,
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// A simulation job for the next batch.
    Job(CellJob),
    /// An in-band metrics probe, answered immediately.
    Stats {
        /// Echoed reply id.
        id: u64,
    },
    /// An in-band graceful-drain probe (`{"drain":true}`): flush the
    /// pending batch, acknowledge, end the session as
    /// [`SessionEnd::Drain`].
    Drain {
        /// Echoed reply id.
        id: u64,
    },
}

impl Server {
    /// A server recording into `opts.registry`.
    pub fn new(opts: ServerOpts) -> Self {
        let shard = opts.registry.shard();
        let mode = opts.mode.with_telemetry(opts.registry.clone());
        let max_inflight = ServerOpts::effective_max_inflight(opts.workers, opts.max_inflight);
        Server {
            workers: opts.workers,
            default_scale: opts.default_scale,
            cfg: opts.cfg,
            cache: WorkloadCache::new(),
            mode,
            selfcheck: opts.selfcheck,
            registry: opts.registry,
            shard,
            request_deadline: opts.request_deadline,
            max_inflight,
            batches: 0,
            totals: None,
            rows: Vec::new(),
            mismatches: 0,
        }
    }

    /// Selfcheck mismatches recorded so far (the binary's exit gate).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Session-lifetime fleet totals, if any batch ran.
    pub fn totals(&self) -> Option<&FleetStats> {
        self.totals.as_ref()
    }

    /// Takes the accumulated per-cell rows (for the `--perf-out`
    /// trajectory entry).
    pub fn take_rows(&mut self) -> Vec<Json> {
        std::mem::take(&mut self.rows)
    }

    /// The registry this server records into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The default scale requests inherit.
    pub fn default_scale(&self) -> SuiteScale {
        self.default_scale
    }

    /// Reads one client's request stream, flushing a batch at every
    /// blank line and answering stats probes inline, until EOF, an
    /// in-band drain probe, or the client disappears. A broken pipe
    /// cancels the current batch's remaining cells and ends only this
    /// session — the server object (and any other connection) lives on.
    pub fn session<R: BufRead, W: Write>(&mut self, reader: R, out: &mut W) -> SessionEnd {
        let session_id = log::next_id();
        self.shard.counter("grp_serve_sessions_total", &[]).inc();
        log::log_kv(
            Level::Info,
            "serve",
            "session started",
            &[("session", session_id.into())],
        );
        let mut batch: Vec<Result<CellJob, (u64, String)>> = Vec::new();
        let mut lineno = 0u64;
        let mut end: Option<SessionEnd> = None;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    log::log_kv(
                        Level::Error,
                        "serve",
                        "read failed; closing session",
                        &[("session", session_id.into()), ("error", e.to_string().into())],
                    );
                    end = Some(SessionEnd::ClientGone);
                    break;
                }
            };
            lineno += 1;
            if line.trim().is_empty() {
                if !self.flush_batch(&mut batch, out) {
                    end = Some(SessionEnd::ClientGone);
                    break;
                }
                continue;
            }
            self.shard.counter("grp_serve_requests_total", &[]).inc();
            match parse_request(&line, lineno, self.default_scale) {
                Ok(Request::Job(mut job)) => {
                    let pending = batch.iter().filter(|r| r.is_ok()).count();
                    if pending >= self.max_inflight {
                        // Bounded admission: shed with a named reply
                        // instead of queueing unboundedly.
                        self.shard.counter("grp_serve_shed_total", &[]).inc();
                        batch.push(Err((
                            job.id,
                            format!(
                                "overloaded: batch already holds {} jobs (--max-inflight); request shed",
                                self.max_inflight
                            ),
                        )));
                    } else {
                        // The deadline clock starts at admission, so
                        // queueing time counts against it.
                        if let Some(d) = self.request_deadline {
                            job.deadline = Some(Instant::now() + d);
                        }
                        batch.push(Ok(job));
                    }
                }
                Ok(Request::Stats { id }) => {
                    self.shard.counter("grp_serve_stats_requests_total", &[]).inc();
                    // Count the reply before snapshotting so the probe
                    // sees itself — every reply on the wire is counted
                    // in the snapshot it carries.
                    self.shard.counter("grp_serve_replies_total", &[("ok", "true")]).inc();
                    let reply = self.stats_reply(id);
                    if let Err(e) = writeln!(out, "{}", reply.render()).and_then(|()| out.flush())
                    {
                        self.note_client_gone(&e);
                        end = Some(SessionEnd::ClientGone);
                        break;
                    }
                }
                Ok(Request::Drain { id }) => {
                    self.shard.counter("grp_serve_drain_requests_total", &[]).inc();
                    // Finish everything already admitted before
                    // acknowledging — the ack promises nothing is lost.
                    if !self.flush_batch(&mut batch, out) {
                        end = Some(SessionEnd::ClientGone);
                        break;
                    }
                    let reply = Json::object()
                        .set("id", id)
                        .set("ok", true)
                        .set("drain", true)
                        .set("batches", self.batches);
                    end = Some(
                        match writeln!(out, "{}", reply.render()).and_then(|()| out.flush()) {
                            Ok(()) => {
                                self.shard
                                    .counter("grp_serve_replies_total", &[("ok", "true")])
                                    .inc();
                                SessionEnd::Drain
                            }
                            Err(e) => {
                                self.note_client_gone(&e);
                                SessionEnd::ClientGone
                            }
                        },
                    );
                    break;
                }
                Err((id, e)) => {
                    self.shard.counter("grp_serve_request_errors_total", &[]).inc();
                    batch.push(Err((id, e)));
                }
            }
        }
        let end = match end {
            Some(e) => e,
            None => {
                if self.flush_batch(&mut batch, out) {
                    SessionEnd::Eof
                } else {
                    SessionEnd::ClientGone
                }
            }
        };
        log::log_kv(
            Level::Info,
            "serve",
            "session ended",
            &[
                ("session", session_id.into()),
                ("lines", lineno.into()),
                ("end", format!("{end:?}").into()),
            ],
        );
        end
    }

    /// The reply for one in-band stats probe: a full registry snapshot
    /// (counters, gauges, histograms) as of this instant.
    fn stats_reply(&self, id: u64) -> Json {
        let snap = self.registry.snapshot();
        Json::object()
            .set("id", id)
            .set("ok", true)
            .set("stats", exposition::snapshot_json(&snap, None))
    }

    /// Writes one reply line; `false` means the client is gone (the
    /// write or flush failed) and the caller must stop writing.
    fn write_reply<W: Write>(&self, out: &mut W, ok: bool, reply: Json) -> bool {
        if let Err(e) = writeln!(out, "{}", reply.render()).and_then(|()| out.flush()) {
            self.note_client_gone(&e);
            return false;
        }
        self.shard
            .counter("grp_serve_replies_total", &[("ok", if ok { "true" } else { "false" })])
            .inc();
        true
    }

    /// Records one client disappearance (broken pipe mid-reply).
    fn note_client_gone(&self, e: &std::io::Error) {
        self.shard.counter("grp_serve_client_disconnects_total", &[]).inc();
        log::log_kv(
            Level::Warn,
            "serve",
            "client disconnected mid-reply; dropping this batch's remaining work",
            &[("error", e.to_string().into())],
        );
    }

    /// Schedules the accumulated batch across the fleet and writes one
    /// reply line per job as its cell completes. Returns `false` when
    /// the client disappeared mid-batch: the batch's not-yet-started
    /// cells are cancelled (named [`sched::CANCELLED`] errors, never
    /// run) and further writes are suppressed — the session ends, the
    /// process does not.
    fn flush_batch<W: Write>(
        &mut self,
        batch: &mut Vec<Result<CellJob, (u64, String)>>,
        out: &mut W,
    ) -> bool {
        if batch.is_empty() {
            return true;
        }
        let mut jobs: Vec<CellJob> = Vec::new();
        for req in batch.drain(..) {
            match req {
                Ok(job) => jobs.push(job),
                Err((id, e)) => {
                    let reply = Json::object().set("id", id).set("ok", false).set("error", e);
                    if !self.write_reply(out, false, reply) {
                        // Client gone before the batch even started:
                        // the admitted jobs are dropped, not run.
                        return false;
                    }
                }
            }
        }
        if jobs.is_empty() {
            return true;
        }
        self.batches += 1;
        self.shard.counter("grp_serve_batches_total", &[]).inc();
        let mut completed: Vec<CellResult> = Vec::new();
        let ctl = BatchCtl::new();
        let gone = std::cell::Cell::new(false);
        // Workers record into their own registry shards inside
        // run_cells_ctl (mode.telemetry is this server's registry);
        // only serve-protocol counters go through self.shard here.
        let shard = self.shard.clone();
        let stats = sched::run_cells_ctl(
            &jobs,
            self.workers,
            &self.cache,
            &self.mode,
            Some(&ctl),
            |cell| {
                if !gone.get() {
                    let (ok, reply) = match &cell.outcome {
                        Ok(r) => (
                            true,
                            Json::object()
                                .set("id", cell.id)
                                .set("ok", true)
                                .set("bench", cell.kernel)
                                .set("scheme", cell.scheme.label())
                                .set("scale", scale_label(cell.scale))
                                .set("worker", cell.worker as u64)
                                .set("events", cell.events)
                                .set("replay_seconds", cell.replay_seconds)
                                .set("result", run_result_json(r, None)),
                        ),
                        Err(e) => (
                            false,
                            Json::object()
                                .set("id", cell.id)
                                .set("ok", false)
                                .set("error", e.as_str()),
                        ),
                    };
                    match writeln!(out, "{}", reply.render()).and_then(|()| out.flush()) {
                        Ok(()) => {
                            shard
                                .counter(
                                    "grp_serve_replies_total",
                                    &[("ok", if ok { "true" } else { "false" })],
                                )
                                .inc();
                        }
                        Err(e) => {
                            gone.set(true);
                            ctl.cancel();
                            shard.counter("grp_serve_client_disconnects_total", &[]).inc();
                            log::log_kv(
                                Level::Warn,
                                "serve",
                                "client disconnected mid-batch; cancelling remaining cells",
                                &[("error", e.to_string().into())],
                            );
                        }
                    }
                }
                completed.push(cell);
            },
        );
        self.shard
            .hist("grp_serve_batch_wall_micros", &[])
            .record((stats.wall_seconds * 1e6) as u64);
        self.shard
            .gauge("grp_serve_cached_workloads", &[])
            .set(self.cache.built_count() as f64);
        log::log_kv(
            Level::Info,
            "serve",
            "batch complete",
            &[
                ("batch", self.batches.into()),
                ("jobs", (stats.cells as u64).into()),
                ("errors", (stats.errors as u64).into()),
                ("wall_seconds", stats.wall_seconds.into()),
                ("events_per_sec", stats.events_per_sec().into()),
                ("cached_workloads", (self.cache.built_count() as u64).into()),
            ],
        );
        for cell in &completed {
            if let Ok(r) = &cell.outcome {
                self.rows.push(
                    Json::object()
                        .set("bench", cell.kernel)
                        .set("scheme", cell.scheme.label())
                        .set("events", cell.events)
                        .set("sim_cycles", r.cycles)
                        .set("replay_seconds", cell.replay_seconds)
                        .set(
                            "events_per_sec",
                            cell.events as f64 / cell.replay_seconds.max(1e-9),
                        )
                        .set("sim_cycles_per_sec", r.cycles as f64 / cell.replay_seconds.max(1e-9))
                        .set("worker", cell.worker as u64),
                );
            }
        }
        self.absorb(stats);
        if self.selfcheck {
            self.selfcheck_batch(&completed);
        }
        !gone.get()
    }

    /// Folds one batch's fleet stats into the session totals.
    fn absorb(&mut self, s: FleetStats) {
        match &mut self.totals {
            None => self.totals = Some(s),
            Some(t) => {
                t.cells += s.cells;
                t.errors += s.errors;
                t.wall_seconds += s.wall_seconds;
                t.events += s.events;
                t.sim_cycles += s.sim_cycles;
                t.replay_seconds += s.replay_seconds;
                t.setup_seconds += s.setup_seconds;
                t.steals += s.steals;
                t.queue_wait_micros.absorb(&s.queue_wait_micros);
                // Worker count is fixed for the session (--jobs), but a
                // tiny batch can spawn fewer workers than configured —
                // fold per-worker columns index-wise.
                for w in 0..s.workers.min(t.workers) {
                    t.busy_seconds[w] += s.busy_seconds[w];
                    t.cells_per_worker[w] += s.cells_per_worker[w];
                }
            }
        }
    }

    /// Re-runs every completed cell serially on a **freshly built**
    /// workload (no shared cache — full independence from the fleet
    /// path) and records any bit-difference. The serial side always
    /// replays materialized, so under `--packed` (or `--trace-cache`)
    /// this is also a packed-vs-materialized identity gate per reply.
    fn selfcheck_batch(&mut self, completed: &[CellResult]) {
        for cell in completed {
            let Ok(got) = &cell.outcome else { continue };
            let Some(w) = grp_workloads::by_name(cell.kernel) else { continue };
            let want = w.build(cell.scale).run(cell.scheme, &self.cfg);
            if *got != want {
                log::log_kv(
                    Level::Error,
                    "serve",
                    "selfcheck mismatch: fleet result differs from serial path",
                    &[
                        ("bench", cell.kernel.into()),
                        ("scheme", cell.scheme.label().into()),
                        ("scale", scale_label(cell.scale).into()),
                        ("fleet_cycles", got.cycles.into()),
                        ("serial_cycles", want.cycles.into()),
                    ],
                );
                self.mismatches += 1;
                self.shard.counter("grp_serve_selfcheck_mismatches_total", &[]).inc();
            }
        }
    }

    /// Writes the registry as Prometheus-style text to `path` and as
    /// JSON (with the explicitly wall-clock `scraped_at_unix_micros`
    /// field) to `<path>.json`, both atomically — see
    /// [`exposition::write_registry`], which this delegates to.
    ///
    /// # Errors
    ///
    /// Any staged-write I/O error; metrics export is best-effort, so
    /// callers typically warn and continue.
    pub fn write_metrics(&self, path: &str) -> std::io::Result<()> {
        exposition::write_registry(&self.registry, path)
    }
}

/// Seeds `registry` with the counter values from a previous scrape's
/// JSON twin (`--metrics-out <path>.json`), so counters stay monotone
/// across a process restart: the new process's scrapes start where the
/// dead one's ended instead of snapping back to zero. Returns how many
/// counters were carried over.
///
/// # Errors
///
/// The file is unreadable, unparsable, or has no `counters` object —
/// callers warn and start from zero (losing monotonicity, not data).
pub fn seed_counters_from_json(registry: &Registry, path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("malformed: {e}"))?;
    let counters = doc
        .get("counters")
        .ok_or_else(|| "no 'counters' object".to_string())?;
    let entries = counters
        .entries()
        .ok_or_else(|| "'counters' is not an object".to_string())?;
    let shard = registry.shard();
    let mut n = 0usize;
    for (id, value) in entries {
        let Some(v) = value.as_u64() else { continue };
        if v > 0 {
            shard.counter_id(id).add(v);
            n += 1;
        }
    }
    Ok(n)
}

/// Bounded exponential backoff for socket accept failures: 10ms
/// doubling to a 1.28s cap, giving up (terminal `None`) after 8
/// consecutive failures. One success resets the schedule — only an
/// unbroken failure run is treated as a dead listener.
#[derive(Debug, Default)]
pub struct AcceptBackoff {
    consecutive: u32,
}

impl AcceptBackoff {
    /// Consecutive failures tolerated before giving up.
    pub const MAX_FAILURES: u32 = 8;

    /// A fresh schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers one failure: the delay to sleep before retrying, or
    /// `None` when the failure run is terminal and the caller should
    /// stop accepting.
    pub fn on_failure(&mut self) -> Option<Duration> {
        self.consecutive += 1;
        if self.consecutive > Self::MAX_FAILURES {
            return None;
        }
        // 10ms, 20ms, 40ms, … capped at 1280ms.
        Some(Duration::from_millis(10u64 << (self.consecutive - 1).min(7)))
    }

    /// Registers a successful accept, resetting the schedule.
    pub fn on_success(&mut self) {
        self.consecutive = 0;
    }

    /// Consecutive failures registered so far (including the terminal
    /// one), for the give-up log line.
    pub fn failures(&self) -> u32 {
        self.consecutive
    }

    /// Emits the terminal give-up line through the structured logger —
    /// level `error`, naming the failure count and the last OS error —
    /// so a dying listener leaves a machine-readable last word instead
    /// of a silent exit.
    pub fn log_terminal(&self, last_error: &std::io::Error) {
        log::log_kv(
            Level::Error,
            "serve",
            "accept failing terminally; giving up",
            &[
                ("failures", u64::from(self.consecutive).into()),
                ("last_error", last_error.to_string().into()),
                (
                    "errno",
                    last_error
                        .raw_os_error()
                        .map_or("none".to_string(), |e| e.to_string())
                        .into(),
                ),
            ],
        );
    }
}

/// The trajectory/scale tag for a workload scale.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Small => "small",
        Scale::Paper => "paper",
    }
}

/// Parses one request line into a job or stats probe; errors carry the
/// reply id.
///
/// # Errors
///
/// `(id, message)` naming the malformed field; the reply id is the
/// request's own `id` when present and well-formed, else the 1-based
/// line number.
pub fn parse_request(
    line: &str,
    lineno: u64,
    default_scale: SuiteScale,
) -> Result<Request, (u64, String)> {
    let doc = Json::parse(line).map_err(|e| (lineno, format!("malformed request: {e}")))?;
    let fields = doc
        .entries()
        .ok_or((lineno, "request must be a JSON object".to_string()))?;
    // The id (when present and well-formed) tags even the errors below.
    let id = doc.get("id").and_then(|v| v.as_u64()).unwrap_or(lineno);
    if doc.get("stats").is_some() {
        for (key, value) in fields {
            match key.as_str() {
                "stats" => {
                    if value.as_bool() != Some(true) {
                        return Err((id, "'stats' must be true".to_string()));
                    }
                }
                "id" => {
                    value
                        .as_u64()
                        .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
                }
                other => {
                    return Err((
                        id,
                        format!("unknown stats-request field '{other}' (valid: stats, id)"),
                    ))
                }
            }
        }
        return Ok(Request::Stats { id });
    }
    if doc.get("drain").is_some() {
        for (key, value) in fields {
            match key.as_str() {
                "drain" => {
                    if value.as_bool() != Some(true) {
                        return Err((id, "'drain' must be true".to_string()));
                    }
                }
                "id" => {
                    value
                        .as_u64()
                        .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
                }
                other => {
                    return Err((
                        id,
                        format!("unknown drain-request field '{other}' (valid: drain, id)"),
                    ))
                }
            }
        }
        return Ok(Request::Drain { id });
    }
    let mut kernel: Option<&'static str> = None;
    let mut scheme: Option<Scheme> = None;
    let mut scale: Scale = default_scale.workload_scale();
    for (key, value) in fields {
        match key.as_str() {
            "id" => {
                value
                    .as_u64()
                    .ok_or((id, "'id' must be a non-negative integer".to_string()))?;
            }
            "kernel" => {
                let name = value
                    .as_str()
                    .ok_or((id, "'kernel' must be a string".to_string()))?;
                kernel = Some(
                    grp_workloads::by_name(name)
                        .map(|w| w.name)
                        .ok_or_else(|| {
                            (id, format!("unknown kernel '{name}' (valid: registry names, e.g. gzip, mcf, bzip2)"))
                        })?,
                );
            }
            "scheme" => {
                let label = value
                    .as_str()
                    .ok_or((id, "'scheme' must be a string".to_string()))?;
                scheme = Some(Scheme::by_label(label).ok_or_else(|| {
                    (
                        id,
                        format!(
                            "unknown scheme '{label}' (valid: {})",
                            Scheme::ALL.map(|s| s.label()).join(", ")
                        ),
                    )
                })?);
            }
            "scale" => {
                let s = value
                    .as_str()
                    .ok_or((id, "'scale' must be a string".to_string()))?;
                scale = SuiteScale::parse(s)
                    .ok_or_else(|| (id, format!("unknown scale '{s}' (valid: test, small, paper)")))?
                    .workload_scale();
            }
            other => {
                return Err((
                    id,
                    format!(
                        "unknown request field '{other}' (valid: id, kernel, scheme, scale, stats, drain)"
                    ),
                ))
            }
        }
    }
    Ok(Request::Job(CellJob {
        id,
        kernel: kernel.ok_or((id, "request missing 'kernel'".to_string()))?,
        scheme: scheme.ok_or((id, "request missing 'scheme'".to_string()))?,
        scale,
        cfg: SimConfig::paper(),
        // Stamped at admission when the server has a deadline policy.
        deadline: None,
    }))
}

/// Validates a saved reply stream: every line parses, has a boolean
/// `ok`, and successful replies carry the summary fields (stats
/// replies carry their snapshot object instead; drain acks carry
/// `drain: true`). Any `ok: false` line is reported as a failure.
///
/// # Errors
///
/// The first malformed or failed line, or an empty file.
pub fn check_replies(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: malformed: {e}", i + 1))?;
        let ok = doc
            .get("ok")
            .and_then(|v| v.as_bool())
            .ok_or(format!("line {}: missing boolean 'ok'", i + 1))?;
        doc.get("id")
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing 'id'", i + 1))?;
        if !ok {
            let e = doc.get("error").and_then(|v| v.as_str()).unwrap_or("<no error field>");
            return Err(format!("line {}: reply failed: {e}", i + 1));
        }
        if let Some(stats) = doc.get("stats") {
            if stats.get("counters").is_none() {
                return Err(format!("line {}: stats reply missing 'counters'", i + 1));
            }
            n += 1;
            continue;
        }
        if doc.get("drain").and_then(|v| v.as_bool()) == Some(true) {
            n += 1;
            continue;
        }
        for key in ["bench", "scheme", "scale"] {
            doc.get(key)
                .and_then(|v| v.as_str())
                .ok_or(format!("line {}: missing string '{key}'", i + 1))?;
        }
        let cycles = doc
            .get("result")
            .and_then(|r| r.get("cycles"))
            .and_then(|v| v.as_u64())
            .ok_or(format!("line {}: missing result.cycles", i + 1))?;
        if cycles == 0 {
            return Err(format!("line {}: zero-cycle result", i + 1));
        }
        n += 1;
    }
    if n == 0 {
        return Err("no replies in file".to_string());
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server(workers: usize) -> Server {
        test_server_opts(workers, None, None)
    }

    fn test_server_opts(
        workers: usize,
        request_deadline: Option<Duration>,
        max_inflight: Option<usize>,
    ) -> Server {
        Server::new(ServerOpts {
            workers,
            default_scale: SuiteScale::Test,
            cfg: SimConfig::paper(),
            mode: ReplayMode::default(),
            selfcheck: false,
            registry: Arc::new(Registry::new()),
            request_deadline,
            max_inflight,
        })
    }

    fn run_session(server: &mut Server, input: &str) -> Vec<Json> {
        let mut out = Vec::new();
        server.session(std::io::Cursor::new(input.to_string()), &mut out);
        String::from_utf8(out)
            .expect("utf8 replies")
            .lines()
            .map(|l| Json::parse(l).expect("reply parses"))
            .collect()
    }

    /// A writer that reports `BrokenPipe` once a byte budget is spent —
    /// a client that hangs up mid-reply.
    struct FailAfter {
        written: Vec<u8>,
        budget: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written.len() + buf.len() > self.budget {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer closed"));
            }
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn reply_by_id(replies: &[Json], id: u64) -> &Json {
        replies
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_u64()) == Some(id))
            .unwrap_or_else(|| panic!("no reply with id {id}"))
    }

    fn reply_ok(reply: &Json) -> Option<bool> {
        reply.get("ok").and_then(|v| v.as_bool())
    }

    #[test]
    fn broken_pipe_mid_batch_cancels_without_killing_the_server() {
        let mut server = test_server(2);
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"SRP","id":1}"#, "\n",
            r#"{"kernel":"gzip","scheme":"SRP","id":2}"#, "\n",
            r#"{"kernel":"mcf","scheme":"SRP","id":3}"#, "\n",
            "\n",
        );
        let mut out = FailAfter { written: Vec::new(), budget: 0 };
        let end = server.session(std::io::Cursor::new(input.to_string()), &mut out);
        assert_eq!(end, SessionEnd::ClientGone);
        assert!(out.written.is_empty(), "nothing landed on the dead pipe");
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("grp_serve_client_disconnects_total"), 1);
        // The server object survives the disconnect: a fresh session on
        // the same server still answers.
        let replies =
            run_session(&mut server, "{\"kernel\":\"twolf\",\"scheme\":\"none\",\"id\":9}\n\n");
        assert_eq!(replies.len(), 1);
        assert_eq!(reply_ok(&replies[0]), Some(true));
    }

    #[test]
    fn eof_mid_request_line_fails_only_that_request() {
        let mut server = test_server(1);
        // A valid job, then a half-written line with no trailing
        // newline (the client died mid-send).
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"kernel":"gzip","scheme":"SR"#,
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 2, "both lines get a reply at EOF flush");
        assert_eq!(reply_ok(reply_by_id(&replies, 1)), Some(true));
        let half = reply_by_id(&replies, 2); // falls back to the line number
        assert_eq!(reply_ok(half), Some(false));
        let e = half.get("error").and_then(|v| v.as_str()).unwrap();
        assert!(e.contains("malformed request"), "{e}");
    }

    #[test]
    fn truncated_json_mid_batch_fails_only_that_request() {
        let mut server = test_server(1);
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"kernel":"gzip","#, "\n",
            r#"{"kernel":"mcf","scheme":"SRP","id":3}"#, "\n",
            "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 3);
        assert_eq!(reply_ok(reply_by_id(&replies, 1)), Some(true));
        assert_eq!(reply_ok(reply_by_id(&replies, 3)), Some(true));
        assert_eq!(reply_ok(reply_by_id(&replies, 2)), Some(false));
    }

    #[test]
    fn expired_request_deadline_returns_named_error_reply() {
        let mut server = test_server_opts(2, Some(Duration::ZERO), None);
        let replies =
            run_session(&mut server, "{\"kernel\":\"twolf\",\"scheme\":\"SRP\",\"id\":5}\n\n");
        assert_eq!(replies.len(), 1, "an expired job still gets its reply");
        assert_eq!(reply_ok(&replies[0]), Some(false));
        let e = replies[0].get("error").and_then(|v| v.as_str()).unwrap();
        assert!(e.starts_with(sched::DEADLINE_EXCEEDED), "{e}");
    }

    #[test]
    fn overload_sheds_excess_jobs_with_named_replies() {
        let mut server = test_server_opts(1, None, Some(1));
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"kernel":"twolf","scheme":"SRP","id":2}"#, "\n",
            r#"{"kernel":"gzip","scheme":"SRP","id":3}"#, "\n",
            "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 3, "shed jobs still get replies");
        assert_eq!(reply_ok(reply_by_id(&replies, 1)), Some(true));
        for id in [2u64, 3] {
            let r = reply_by_id(&replies, id);
            assert_eq!(reply_ok(r), Some(false));
            let e = r.get("error").and_then(|v| v.as_str()).unwrap();
            assert!(e.starts_with("overloaded"), "{e}");
        }
        let snap = server.registry().snapshot();
        assert_eq!(snap.counter("grp_serve_shed_total"), 2);
    }

    #[test]
    fn drain_probe_flushes_and_ends_the_session() {
        let mut server = test_server(1);
        // The drain arrives with a job still batched (no blank line):
        // the ack must come after that job's reply, and the line after
        // the drain must never be read.
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"drain":true,"id":42}"#, "\n",
            r#"{"kernel":"gzip","scheme":"SRP","id":9}"#, "\n",
        );
        let mut out = Vec::new();
        let end = server.session(std::io::Cursor::new(input.to_string()), &mut out);
        assert_eq!(end, SessionEnd::Drain);
        let replies: Vec<Json> = String::from_utf8(out.clone())
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 2, "flushed job reply + drain ack, nothing after");
        assert_eq!(replies[0].get("id").and_then(|v| v.as_u64()), Some(1));
        let ack = &replies[1];
        assert_eq!(ack.get("id").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(reply_ok(ack), Some(true));
        assert_eq!(ack.get("drain").and_then(|v| v.as_bool()), Some(true));
        // The ack'd stream validates end to end.
        let dir = std::env::temp_dir().join(format!("grp-serve-drain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replies.ndjson");
        std::fs::write(&path, &out).unwrap();
        assert_eq!(check_replies(path.to_str().unwrap()), Ok(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_request_handles_drain_probes() {
        match parse_request(r#"{"drain":true,"id":7}"#, 1, SuiteScale::Test).expect("drain") {
            Request::Drain { id } => assert_eq!(id, 7),
            other => panic!("expected drain, got {other:?}"),
        }
        let (_, e) = parse_request(r#"{"drain":false}"#, 2, SuiteScale::Test).unwrap_err();
        assert!(e.contains("'drain' must be true"), "{e}");
        let (_, e) =
            parse_request(r#"{"drain":true,"kernel":"gzip"}"#, 3, SuiteScale::Test).unwrap_err();
        assert!(e.contains("unknown drain-request field 'kernel'"), "{e}");
    }

    #[test]
    fn accept_backoff_terminal_boundary_logs_through_the_logger() {
        let mut b = AcceptBackoff::new();
        for i in 1..=AcceptBackoff::MAX_FAILURES {
            assert!(b.on_failure().is_some(), "failure {i} still retries");
        }
        assert_eq!(b.failures(), AcceptBackoff::MAX_FAILURES);
        assert_eq!(b.on_failure(), None, "one past MAX_FAILURES is terminal");
        assert_eq!(b.failures(), AcceptBackoff::MAX_FAILURES + 1);
        // The terminal line goes through the structured logger (must
        // not panic even with an errno-less error).
        b.log_terminal(&std::io::Error::from_raw_os_error(98));
        b.log_terminal(&std::io::Error::new(std::io::ErrorKind::Other, "synthetic"));
    }

    #[test]
    fn accept_backoff_schedule_is_exact() {
        let mut b = AcceptBackoff::new();
        let mut delays = Vec::new();
        loop {
            match b.on_failure() {
                Some(d) => delays.push(d.as_millis() as u64),
                None => break,
            }
        }
        assert_eq!(delays, [10, 20, 40, 80, 160, 320, 640, 1280]);
        // A success resets the schedule back to the first step.
        b.on_success();
        assert_eq!(b.on_failure(), Some(Duration::from_millis(10)));
    }

    #[test]
    fn parse_request_handles_jobs_stats_and_rejections() {
        let job = parse_request(
            r#"{"kernel":"twolf","scheme":"SRP","id":9}"#,
            1,
            SuiteScale::Test,
        )
        .expect("job parses");
        match job {
            Request::Job(j) => {
                assert_eq!(j.id, 9);
                assert_eq!(j.kernel, "twolf");
            }
            other => panic!("expected job, got {other:?}"),
        }
        match parse_request(r#"{"stats":true,"id":3}"#, 2, SuiteScale::Test).expect("stats") {
            Request::Stats { id } => assert_eq!(id, 3),
            other => panic!("expected stats, got {other:?}"),
        }
        let (_, e) =
            parse_request(r#"{"stats":false}"#, 3, SuiteScale::Test).unwrap_err();
        assert!(e.contains("'stats' must be true"), "{e}");
        let (_, e) =
            parse_request(r#"{"stats":true,"kernel":"gzip"}"#, 4, SuiteScale::Test).unwrap_err();
        assert!(e.contains("unknown stats-request field 'kernel'"), "{e}");
        let (_, e) = parse_request(r#"{"kernel":"twolf"}"#, 5, SuiteScale::Test).unwrap_err();
        assert!(e.contains("missing 'scheme'"), "{e}");
    }

    #[test]
    fn stats_reply_counts_match_session_activity() {
        let mut server = test_server(2);
        // 3 job requests (one bad scheme), a flush, then a stats probe.
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none","id":1}"#, "\n",
            r#"{"kernel":"crafty","scheme":"SRP","id":2}"#, "\n",
            r#"{"kernel":"twolf","scheme":"SPR","id":3}"#, "\n",
            "\n",
            r#"{"stats":true,"id":99}"#, "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 4, "3 job replies + 1 stats reply");
        let stats = replies
            .iter()
            .find(|r| r.get("id").and_then(|v| v.as_u64()) == Some(99))
            .and_then(|r| r.get("stats"))
            .expect("stats reply present");
        let counter = |name: &str| {
            stats
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(|v| v.as_u64())
                .unwrap_or(0)
        };
        // 4 non-blank request lines: 3 jobs + the stats probe itself.
        assert_eq!(counter("grp_serve_requests_total"), 4);
        assert_eq!(counter("grp_serve_stats_requests_total"), 1);
        assert_eq!(counter("grp_serve_request_errors_total"), 1);
        assert_eq!(counter("grp_serve_batches_total"), 1);
        // The batch replayed exactly the two valid cells.
        assert_eq!(counter("grp_fleet_cells_total{bench=\"twolf\",scheme=\"none\"}"), 1);
        assert_eq!(counter("grp_fleet_cells_total{bench=\"crafty\",scheme=\"SRP\"}"), 1);
        // Replies at stats time: 2 ok cells + 1 error + the stats
        // reply itself (counted before rendering the snapshot).
        assert_eq!(counter("grp_serve_replies_total{ok=\"true\"}"), 3);
        assert_eq!(counter("grp_serve_replies_total{ok=\"false\"}"), 1);
        // Session totals track the successful cells.
        let totals = server.totals().expect("batch ran");
        assert_eq!(totals.cells, 2);
        assert_eq!(totals.errors, 0);
        assert_eq!(server.mismatches(), 0);
    }

    #[test]
    fn selfcheck_passes_on_identical_paths_and_metrics_export_roundtrips() {
        let mut server = Server::new(ServerOpts {
            workers: 2,
            default_scale: SuiteScale::Test,
            cfg: SimConfig::paper(),
            mode: ReplayMode { packed: true, trace_cache: None, telemetry: None },
            selfcheck: true,
            registry: Arc::new(Registry::new()),
            request_deadline: None,
            max_inflight: None,
        });
        let input = concat!(
            r#"{"kernel":"gzip","scheme":"SRP"}"#, "\n",
            r#"{"kernel":"mcf","scheme":"none"}"#, "\n",
        );
        let replies = run_session(&mut server, input);
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.get("ok").and_then(|v| v.as_bool()) == Some(true)));
        assert_eq!(server.mismatches(), 0, "packed fleet path matches serial replay");

        let dir = std::env::temp_dir().join(format!("grp-serve-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        server.write_metrics(path.to_str().unwrap()).expect("export");
        let text = std::fs::read_to_string(&path).expect("text exists");
        let parsed = exposition::validate_text(&text).expect("exposition validates");
        assert!(parsed.counters.contains_key("grp_serve_batches_total"));
        let twin = std::fs::read_to_string(format!("{}.json", path.display())).expect("json twin");
        let doc = Json::parse(&twin).expect("twin parses");
        assert!(doc.get("scraped_at_unix_micros").and_then(|v| v.as_u64()).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_carryover_keeps_scrapes_monotone_across_restart() {
        let mut server = test_server(1);
        let _ = run_session(&mut server, "{\"kernel\":\"twolf\",\"scheme\":\"none\"}\n\n");
        let dir = std::env::temp_dir().join(format!("grp-serve-carry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.prom");
        server.write_metrics(path.to_str().unwrap()).expect("export");
        let before = server.registry().snapshot();
        // "Restart": a fresh registry seeded from the scrape's JSON
        // twin must never read below the dead process's last values.
        let reg = Registry::new();
        let n = seed_counters_from_json(&reg, &format!("{}.json", path.display())).expect("seed");
        assert!(n > 0, "something was carried over");
        let after = reg.snapshot();
        for (id, v) in &before.counters {
            assert!(after.counter(id) >= *v, "{id} went backwards after restart");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reply_stream_with_stats_passes_check_replies() {
        let mut server = test_server(1);
        let input = concat!(
            r#"{"kernel":"twolf","scheme":"none"}"#, "\n",
            "\n",
            r#"{"stats":true}"#, "\n",
        );
        let mut out = Vec::new();
        server.session(std::io::Cursor::new(input.to_string()), &mut out);
        let dir = std::env::temp_dir().join(format!("grp-serve-replies-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("replies.ndjson");
        std::fs::write(&path, &out).unwrap();
        let n = check_replies(path.to_str().unwrap()).expect("replies validate");
        assert_eq!(n, 2, "one job reply + one stats reply");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

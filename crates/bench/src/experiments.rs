//! One function per table/figure of the paper's Section 5.

use grp_compiler::{census, AnalysisConfig};
use grp_core::{geomean, Scheme};
use grp_workloads::BenchClass;

use crate::report::{bar_chart, f2, pct, Table};
use crate::suite::Suite;

/// The schemes compared in the headline tables.
pub const HEADLINE: [Scheme; 5] = [
    Scheme::NoPrefetch,
    Scheme::Stride,
    Scheme::Srp,
    Scheme::GrpFix,
    Scheme::GrpVar,
];

/// Figure 1: IPC of the realistic system vs perfect-L2 and perfect-L1
/// idealizations, plus the GRP bar, per benchmark (sorted by gap size).
pub fn figure1(suite: &mut Suite) -> String {
    let mut rows: Vec<(String, f64, f64, f64, f64, f64)> = Vec::new();
    for name in suite.perf_names() {
        let base = suite.run(name, Scheme::NoPrefetch);
        let l2 = suite.run(name, Scheme::PerfectL2);
        let l1 = suite.run(name, Scheme::PerfectL1);
        let grp = suite.run(name, Scheme::GrpVar);
        let gap = base.gap_vs_perfect(&l2);
        rows.push((name.to_string(), base.ipc(), l2.ipc(), l1.ipc(), grp.ipc(), gap));
    }
    rows.sort_by(|a, b| a.5.total_cmp(&b.5));
    let mut t = Table::new(vec![
        "bench", "base IPC", "perfect-L2", "perfect-L1", "GRP/Var", "gap %",
    ]);
    for (n, b, l2, l1, g, gap) in &rows {
        t.row(vec![
            n.clone(),
            f2(*b),
            f2(*l2),
            f2(*l1),
            f2(*g),
            format!("{gap:.1}"),
        ]);
    }
    let gaps: Vec<f64> = rows.iter().map(|r| 1.0 - r.5 / 100.0).collect();
    let mean_gap = (1.0 - geomean(&gaps)) * 100.0;
    format!(
        "Figure 1: processor performance (perfect-cache bounds)\n{}\ngeometric-mean gap vs perfect L2: {:.1}%\n",
        t.render(),
        mean_gap
    )
}

/// One summary row of Table 1.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Scheme.
    pub scheme: Scheme,
    /// Geometric-mean speedup over no prefetching.
    pub speedup: f64,
    /// Geometric-mean traffic normalized to no prefetching.
    pub traffic: f64,
    /// Geometric-mean performance gap vs perfect L2, percent.
    pub gap: f64,
}

/// Table 1: suite-wide speedup, traffic increase, and perfect-L2 gap.
pub fn table1(suite: &mut Suite) -> (Vec<SummaryRow>, String) {
    let names = suite.perf_names();
    let mut rows = Vec::new();
    for scheme in HEADLINE {
        let mut speedups = Vec::new();
        let mut traffics = Vec::new();
        let mut gap_ratios = Vec::new();
        for name in &names {
            let base = suite.run(name, Scheme::NoPrefetch);
            let perfect = suite.run(name, Scheme::PerfectL2);
            let r = suite.run(name, scheme);
            speedups.push(r.speedup_vs(&base));
            traffics.push(r.traffic_vs(&base).max(1e-9));
            gap_ratios.push((perfect.cycles as f64 / r.cycles as f64).min(1.0));
        }
        rows.push(SummaryRow {
            scheme,
            speedup: geomean(&speedups),
            traffic: geomean(&traffics),
            gap: (1.0 - geomean(&gap_ratios)) * 100.0,
        });
    }
    let mut t = Table::new(vec!["scheme", "speedup", "traffic", "gap vs perfect L2 (%)"]);
    for r in &rows {
        t.row(vec![
            r.scheme.label().to_string(),
            f2(r.speedup),
            f2(r.traffic),
            format!("{:.2}", r.gap),
        ]);
    }
    (rows, format!("Table 1: summary of prefetching performance and traffic\n{}", t.render()))
}

/// Table 2: the hint taxonomy (qualitative; from §3.3).
pub fn table2() -> String {
    let mut t = Table::new(vec!["hint", "meaning", "engine action on L2 miss"]);
    t.row(vec![
        "spatial",
        "reference exhibits spatial locality",
        "queue the 4 KB region's absent blocks",
    ]);
    t.row(vec![
        "size",
        "loop bound × stride bounds the reuse extent",
        "region size = loop bound << coefficient",
    ]);
    t.row(vec![
        "indirect",
        "a[b[i]]: array indexed by an index array",
        "read index block, prefetch base + s·b[i] (≤16)",
    ]);
    t.row(vec![
        "pointer",
        "structure contains pointers the program follows",
        "scan returned line for heap addresses, 2 blocks each",
    ]);
    t.row(vec![
        "recursive",
        "program recursively follows those pointers",
        "same scan, repeated 6 levels deep",
    ]);
    format!("Table 2: compiler hints (§3.3)\n{}", t.render())
}

/// Table 3: static hint census per benchmark.
pub fn table3(suite: &mut Suite) -> String {
    let mut t = Table::new(vec![
        "bench", "mem refs", "spatial", "pointer", "recursive", "ratio %", "indirect",
    ]);
    for name in suite.all_names() {
        let built = suite.built(name);
        let hints = built.hints(&AnalysisConfig::default());
        let cs = census(&built.program, &hints);
        t.row(vec![
            name.to_string(),
            cs.mem_refs.to_string(),
            cs.spatial.to_string(),
            cs.pointer.to_string(),
            cs.recursive.to_string(),
            pct(cs.hinted_ratio()),
            cs.indirect.to_string(),
        ]);
    }
    format!("Table 3: number of compiler hints for each benchmark\n{}", t.render())
}

/// Figure 9: speedup from pointer prefetching alone (C benchmarks).
pub fn figure9(suite: &mut Suite) -> String {
    let c_benches = [
        "gzip", "vpr", "mesa", "art", "mcf", "equake", "ammp", "parser", "gap", "bzip2",
        "twolf", "sphinx",
    ];
    let mut rows = Vec::new();
    for name in c_benches {
        let base = suite.run(name, Scheme::NoPrefetch);
        let hw = suite.run(name, Scheme::HwPointer);
        let hinted = suite.run(name, Scheme::GrpPointer);
        let combined = suite.run(name, Scheme::SrpPointer);
        rows.push((
            name.to_string(),
            hw.speedup_vs(&base),
            hinted.speedup_vs(&base),
            combined.speedup_vs(&base),
        ));
    }
    let mut t = Table::new(vec![
        "bench",
        "hw pointer speedup",
        "hinted pointer speedup",
        "SRP+pointer speedup",
    ]);
    let mut bars = Vec::new();
    for (n, hw, h, comb) in &rows {
        t.row(vec![n.clone(), f2(*hw), f2(*h), f2(*comb)]);
        bars.push((n.clone(), *hw));
    }
    let max = bars.iter().map(|(_, v)| *v).fold(1.0f64, f64::max);
    format!(
        "Figure 9: performance gains from pointer prefetching (C codes)\n{}\n{}",
        t.render(),
        bar_chart(&bars, max, 40)
    )
}

/// Figures 10/11: per-benchmark IPC under each scheme, for one suite
/// class.
pub fn figure_perf(suite: &mut Suite, class: BenchClass) -> String {
    let names: Vec<&'static str> = grp_workloads::perf_set()
        .iter()
        .filter(|w| w.class == class)
        .map(|w| w.name)
        .collect();
    let mut t = Table::new(vec![
        "bench", "none", "stride", "SRP", "GRP/Var", "perfect-L2",
    ]);
    for name in names {
        let base = suite.run(name, Scheme::NoPrefetch);
        let stride = suite.run(name, Scheme::Stride);
        let srp = suite.run(name, Scheme::Srp);
        let grp = suite.run(name, Scheme::GrpVar);
        let l2 = suite.run(name, Scheme::PerfectL2);
        t.row(vec![
            name.to_string(),
            f2(base.ipc()),
            f2(stride.ipc()),
            f2(srp.ipc()),
            f2(grp.ipc()),
            f2(l2.ipc()),
        ]);
    }
    let figno = match class {
        BenchClass::Int => "Figure 10 (integer benchmarks)",
        BenchClass::Fp => "Figure 11 (floating-point benchmarks)",
        BenchClass::App => "Figure 10/11 appendix (applications)",
    };
    format!("{figno}: IPC under region and stride prefetching\n{}", t.render())
}

/// Figure 12: memory traffic normalized to no prefetching.
pub fn figure12(suite: &mut Suite) -> String {
    let mut t = Table::new(vec!["bench", "stride", "SRP", "GRP/Var"]);
    let mut stride_all = Vec::new();
    let mut srp_all = Vec::new();
    let mut grp_all = Vec::new();
    for name in suite.perf_names() {
        let base = suite.run(name, Scheme::NoPrefetch);
        let stride = suite.run(name, Scheme::Stride).traffic_vs(&base);
        let srp = suite.run(name, Scheme::Srp).traffic_vs(&base);
        let grp = suite.run(name, Scheme::GrpVar).traffic_vs(&base);
        stride_all.push(stride);
        srp_all.push(srp);
        grp_all.push(grp);
        t.row(vec![name.to_string(), f2(stride), f2(srp), f2(grp)]);
    }
    t.row(vec![
        "geomean".to_string(),
        f2(geomean(&stride_all)),
        f2(geomean(&srp_all)),
        f2(geomean(&grp_all)),
    ]);
    format!("Figure 12: normalized memory traffic\n{}", t.render())
}

/// Table 4: GRP/Var vs GRP/Fix traffic and the region-size distribution
/// for the three benchmarks where they differ.
pub fn table4(suite: &mut Suite) -> String {
    let mut t = Table::new(vec![
        "bench", "Var traffic", "Fix traffic", "size 2 %", "size 4 %", "size 8 %", "size 64 %",
    ]);
    for name in ["mesa", "bzip2", "sphinx"] {
        let base = suite.run(name, Scheme::NoPrefetch);
        let var = suite.run(name, Scheme::GrpVar);
        let fix = suite.run(name, Scheme::GrpFix);
        let hist = var.engine.region_size_hist;
        let total: u64 = hist.iter().sum::<u64>().max(1);
        let share = |i: usize| 100.0 * hist[i] as f64 / total as f64;
        t.row(vec![
            name.to_string(),
            f2(var.traffic_vs(&base)),
            f2(fix.traffic_vs(&base)),
            format!("{:.1}", share(1)),
            format!("{:.1}", share(2)),
            format!("{:.1}", share(3)),
            format!("{:.1}", share(6)),
        ]);
    }
    format!(
        "Table 4: GRP/Var versus GRP/Fix (traffic vs baseline; Var region-size distribution)\n{}",
        t.render()
    )
}

/// Table 5: per-benchmark miss rate, coverage, accuracy, traffic.
pub fn table5(suite: &mut Suite) -> String {
    let mut t = Table::new(vec![
        "bench",
        "miss rate %",
        "stride cov %",
        "stride acc %",
        "SRP cov %",
        "SRP acc %",
        "GRP cov %",
        "GRP acc %",
        "traffic none/stride/SRP/GRP (blocks)",
    ]);
    let mut sums = [0.0f64; 6];
    let names = suite.perf_names();
    for name in &names {
        let base = suite.run(name, Scheme::NoPrefetch);
        let stride = suite.run(name, Scheme::Stride);
        let srp = suite.run(name, Scheme::Srp);
        let grp = suite.run(name, Scheme::GrpVar);
        let cols = [
            stride.coverage_vs(&base),
            stride.accuracy(),
            srp.coverage_vs(&base),
            srp.accuracy(),
            grp.coverage_vs(&base),
            grp.accuracy(),
        ];
        for (s, c) in sums.iter_mut().zip(cols) {
            *s += c;
        }
        t.row(vec![
            name.to_string(),
            pct(base.l2.miss_ratio()),
            pct(cols[0]),
            pct(cols[1]),
            pct(cols[2]),
            pct(cols[3]),
            pct(cols[4]),
            pct(cols[5]),
            format!(
                "{}/{}/{}/{}",
                base.traffic.total_blocks(),
                stride.traffic.total_blocks(),
                srp.traffic.total_blocks(),
                grp.traffic.total_blocks()
            ),
        ]);
    }
    // The paper's "average" row: arithmetic means, like Table 5's.
    let n = names.len() as f64;
    t.row(vec![
        "average".to_string(),
        "-".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        pct(sums[2] / n),
        pct(sums[3] / n),
        pct(sums[4] / n),
        pct(sums[5] / n),
        "-".to_string(),
    ]);
    format!(
        "Table 5: prefetching accuracy, coverage and memory traffic\n{}",
        t.render()
    )
}

/// Table 6: benchmarks left >15% from perfect L2 under GRP, with the
/// designed miss cause and the share of misses on the hottest site.
pub fn table6(suite: &mut Suite) -> String {
    let causes: &[(&str, &str)] = &[
        ("swim", "transposed array access (set conflicts)"),
        ("art", "bandwidth bound + transposed heap array"),
        ("mcf", "tree traversal"),
        ("ammp", "linked list traversal"),
        ("bzip2", "indirect array reference"),
        ("twolf", "linked lists and random pointers"),
        ("sphinx", "hash table lookup"),
    ];
    let mut t = Table::new(vec![
        "bench", "GRP gap %", "designed miss cause", "top-site share %",
    ]);
    for (name, cause) in causes {
        let grp = suite.run(name, Scheme::GrpVar);
        let perfect = suite.run(name, Scheme::PerfectL2);
        let total: u64 = grp.attribution.counts().iter().sum();
        let top = grp.attribution.top(1);
        let share = if total > 0 && !top.is_empty() {
            100.0 * top[0].1 as f64 / total as f64
        } else {
            0.0
        };
        t.row(vec![
            name.to_string(),
            format!("{:.1}", grp.gap_vs_perfect(&perfect)),
            cause.to_string(),
            format!("{share:.1}"),
        ]);
    }
    format!("Table 6: level-2 miss characteristics under GRP\n{}", t.render())
}

/// §5.4: compiler spatial-policy sensitivity (default vs aggressive vs
/// conservative), geometric means over the perf set.
pub fn sensitivity(suite: &mut Suite) -> String {
    let names = suite.perf_names();
    let mut t = Table::new(vec!["policy", "speedup", "traffic"]);
    for (label, scheme) in [
        ("conservative", Scheme::GrpConservative),
        ("default", Scheme::GrpVar),
        ("aggressive", Scheme::GrpAggressive),
    ] {
        let mut sp = Vec::new();
        let mut tr = Vec::new();
        for name in &names {
            let base = suite.run(name, Scheme::NoPrefetch);
            let r = suite.run(name, scheme);
            sp.push(r.speedup_vs(&base));
            tr.push(r.traffic_vs(&base).max(1e-9));
        }
        t.row(vec![label.to_string(), f2(geomean(&sp)), f2(geomean(&tr))]);
    }
    format!("Section 5.4: compiler spatial-policy sensitivity\n{}", t.render())
}

/// §5.5's bandwidth observation: "art is bandwidth bound … larger caches
/// and wider channels improve art appreciably." Sweeps DRAM channel
/// count for the benchmarks the paper calls memory-bound.
pub fn bandwidth_study(scale: crate::suite::SuiteScale) -> String {
    use grp_core::SimConfig;
    let mut t = Table::new(vec!["bench", "2 channels", "4 channels", "8 channels"]);
    for name in ["art", "swim", "mcf"] {
        let built = grp_workloads::by_name(name)
            .expect("registered")
            .build(scale.workload_scale());
        let mut cells = vec![name.to_string()];
        for channels in [2usize, 4, 8] {
            let mut cfg = SimConfig::paper();
            cfg.dram.channels = channels;
            let r = built.run(Scheme::GrpVar, &cfg);
            cells.push(format!("{:.2}", r.ipc()));
        }
        t.row(cells);
    }
    format!(
        "Section 5.5 bandwidth study: GRP/Var IPC vs DRAM channel count\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite::SuiteScale;

    #[test]
    fn table2_is_static_and_complete() {
        let s = table2();
        for hint in ["spatial", "size", "indirect", "pointer", "recursive"] {
            assert!(s.contains(hint), "missing {hint}");
        }
    }

    #[test]
    fn table1_runs_at_test_scale() {
        let mut suite = Suite::new(SuiteScale::Test);
        let (rows, text) = table1(&mut suite);
        assert_eq!(rows.len(), 5);
        assert!(text.contains("GRP/Var"));
        // The no-prefetch row is the identity.
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        assert!((rows[0].traffic - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bandwidth_study_shows_channel_scaling() {
        let s = bandwidth_study(SuiteScale::Test);
        assert!(s.contains("art"));
        assert!(s.contains("8 channels"));
    }

    #[test]
    fn table4_reports_three_benchmarks() {
        let mut suite = Suite::new(SuiteScale::Test);
        let s = table4(&mut suite);
        for n in ["mesa", "bzip2", "sphinx"] {
            assert!(s.contains(n));
        }
    }
}

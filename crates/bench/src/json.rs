//! A minimal JSON emitter *and reader* for machine-readable experiment
//! results.
//!
//! Deliberately hand-rolled: the sanctioned dependency set has no JSON
//! serializer, and the grammar needed here is tiny (objects, arrays,
//! strings, numbers, booleans). [`Json::parse`] is the reader
//! counterpart of [`Json::render`]: it accepts everything the writer
//! emits (round-trip safe) plus ordinary whitespace, and it is what the
//! perf harness and `scripts/verify.sh` use to validate
//! `BENCH_perf.json`.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a fraction).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (non-finite values become `null`).
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Ordered object (insertion order preserved).
    Object(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// An empty object builder.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Parses a JSON document. Accepts the full output grammar of
    /// [`Json::render`]; integers without fraction/exponent parse as
    /// [`Json::Int`]/[`Json::UInt`], everything else numeric as
    /// [`Json::Float`]. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Field lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` on other variants.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents; `None` on other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`; `None` on non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::UInt(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer value; `None` on non-integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Boolean value; `None` on other variants.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The key/value fields of an object, in document order; `None` on
    /// other variants. The serve protocol walks this to reject
    /// requests carrying unknown keys instead of silently ignoring a
    /// typo'd field.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Adds a field to an object; panics on non-objects.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("set() on a non-object"),
        }
        self
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale (UTF-8 passes through).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates never appear in the writer's output
                            // (it emits \u only for control chars); reject.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            s.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| ParseError {
                message: "invalid number".to_string(),
                offset: start,
            })
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

/// Serializes one [`grp_core::RunResult`] (plus its baseline-relative
/// metrics when `base` is given).
pub fn run_result_json(r: &grp_core::RunResult, base: Option<&grp_core::RunResult>) -> Json {
    let mut j = Json::object()
        .set("scheme", r.scheme.label())
        .set("cycles", r.cycles)
        .set("instructions", r.instructions)
        .set("ipc", r.ipc())
        .set("l2_demand_accesses", r.l2.demand_accesses)
        .set("l2_demand_misses", r.l2.demand_misses)
        .set("prefetches_issued", r.prefetches_issued)
        .set("useful_prefetches", r.l2.useful_prefetches)
        .set("late_prefetch_merges", r.late_prefetch_merges)
        .set("accuracy", r.accuracy())
        .set(
            "traffic_blocks",
            Json::object()
                .set("demand", r.traffic.demand_blocks)
                .set("prefetch", r.traffic.prefetch_blocks)
                .set("writeback", r.traffic.writeback_blocks)
                .set("total", r.traffic.total_blocks()),
        );
    if let Some(b) = base {
        j = j
            .set("speedup", r.speedup_vs(b))
            .set("coverage", r.coverage_vs(b))
            .set("traffic_normalized", r.traffic_vs(b));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render_in_order() {
        let j = Json::object()
            .set("name", "swim")
            .set("values", Json::Array(vec![Json::Int(1), Json::Int(2)]))
            .set("inner", Json::object().set("x", 1.25));
        assert_eq!(
            j.render(),
            r#"{"name":"swim","values":[1,2],"inner":{"x":1.25}}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Array(vec![]).set("k", 1i64);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
    }

    #[test]
    fn parse_strings_unescape() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd""#).unwrap(),
            Json::Str("a\"b\\c\nd".into())
        );
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn parse_nested_and_whitespace() {
        let j = Json::parse(r#" { "a" : [ 1 , 2.5 , null ] , "b" : { } } "#).unwrap();
        assert_eq!(j.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(j.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(j.get("b"), Some(&Json::object()));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1,}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
        assert!(Json::parse("\"unterminated").is_err());
        let e = Json::parse("[1, x]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn render_parse_roundtrip() {
        let doc = Json::object()
            .set("name", "swim \"quoted\"\n")
            .set("count", 123u64)
            .set("neg", -5i64)
            .set("ratio", 1.25)
            .set("flag", true)
            .set("none", Json::Null)
            .set(
                "runs",
                Json::Array(vec![Json::object().set("x", 1u64), Json::object().set("x", 2u64)]),
            );
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn accessors_on_wrong_variants_are_none() {
        assert_eq!(Json::Null.get("k"), None);
        assert_eq!(Json::Bool(true).as_f64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
        assert_eq!(Json::UInt(9).as_f64(), Some(9.0));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::UInt(1).as_bool(), None);
        assert_eq!(Json::Array(vec![]).entries(), None);
    }

    #[test]
    fn object_entries_walk_in_document_order() {
        let j = Json::parse(r#"{"b":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = j.entries().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
    }
}

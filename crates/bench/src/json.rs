//! A minimal JSON emitter for machine-readable experiment results.
//!
//! Deliberately hand-rolled: the sanctioned dependency set has no JSON
//! serializer, and the output grammar needed here is tiny (objects,
//! arrays, strings, numbers, booleans).

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a fraction).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float (non-finite values become `null`).
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Array(Vec<Json>),
    /// Ordered object (insertion order preserved).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object; panics on non-objects.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not [`Json::Object`].
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("set() on a non-object"),
        }
        self
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Array(v)
    }
}

/// Serializes one [`grp_core::RunResult`] (plus its baseline-relative
/// metrics when `base` is given).
pub fn run_result_json(r: &grp_core::RunResult, base: Option<&grp_core::RunResult>) -> Json {
    let mut j = Json::object()
        .set("scheme", r.scheme.label())
        .set("cycles", r.cycles)
        .set("instructions", r.instructions)
        .set("ipc", r.ipc())
        .set("l2_demand_accesses", r.l2.demand_accesses)
        .set("l2_demand_misses", r.l2.demand_misses)
        .set("prefetches_issued", r.prefetches_issued)
        .set("useful_prefetches", r.l2.useful_prefetches)
        .set("late_prefetch_merges", r.late_prefetch_merges)
        .set("accuracy", r.accuracy())
        .set(
            "traffic_blocks",
            Json::object()
                .set("demand", r.traffic.demand_blocks)
                .set("prefetch", r.traffic.prefetch_blocks)
                .set("writeback", r.traffic.writeback_blocks)
                .set("total", r.traffic.total_blocks()),
        );
    if let Some(b) = base {
        j = j
            .set("speedup", r.speedup_vs(b))
            .set("coverage", r.coverage_vs(b))
            .set("traffic_normalized", r.traffic_vs(b));
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::UInt(7).render(), "7");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd".into()).render(),
            r#""a\"b\\c\nd""#
        );
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn nested_structures_render_in_order() {
        let j = Json::object()
            .set("name", "swim")
            .set("values", Json::Array(vec![Json::Int(1), Json::Int(2)]))
            .set("inner", Json::object().set("x", 1.25));
        assert_eq!(
            j.render(),
            r#"{"name":"swim","values":[1,2],"inner":{"x":1.25}}"#
        );
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_array_panics() {
        let _ = Json::Array(vec![]).set("k", 1i64);
    }
}

//! Seeded trace fuzzing for the `check` binary.
//!
//! A [`FuzzPlan`] is a small, fully declarative description of a
//! synthetic workload: a list of [`Segment`]s, each one memory-access
//! idiom the prefetchers care about (dense spatial streams, planted
//! pointer chains walked through dependent loads, index-driven indirect
//! gathers, aliasing re-reference windows, store bursts). Plans are
//! generated from a seed via the testkit's [`Arbitrary`] and
//! materialized deterministically into a concrete trace + functional
//! memory + heap range by [`materialize`] — the same plan always yields
//! the same case, so a failing seed is a complete reproducer, and the
//! testkit's greedy shrinker can minimize the plan itself.

use grp_cpu::{HintSet, RefId, Trace};
use grp_mem::{Addr, HeapRange, Memory};
use grp_testkit::proptest::Arbitrary;
use grp_testkit::Rng;

/// Address-space slice reserved for each segment (1 MiB).
const SEGMENT_SPAN: u64 = 1 << 20;
/// First heap byte; everything a plan touches lives above this.
const HEAP_BASE: u64 = 0x10_0000;

/// One access idiom within a fuzz plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A dense forward stream: `count` loads with a fixed word stride,
    /// optionally carrying the spatial hint (exercises SRP/GRP region
    /// allocation and, when hinted, variable-size regions).
    Spatial {
        /// Number of loads.
        count: u16,
        /// Stride between consecutive loads, in 8-byte words.
        stride_words: u8,
        /// Attach the spatial hint (GRP prefetches; SRP ignores hints).
        hinted: bool,
        /// Emit a `SetLoopBound` pseudo-instruction before the stream.
        loop_bound: bool,
    },
    /// A linked-list walk over `nodes` planted in memory, each load
    /// data-dependent on the previous one (exercises pointer scans and
    /// the MSHR pointer-depth plumbing).
    Pointer {
        /// Chain length.
        nodes: u16,
        /// Distance between consecutive nodes, in 64-byte blocks.
        node_stride_blocks: u8,
        /// Attach the pointer hint.
        hinted: bool,
    },
    /// An index-array-driven gather: loads of `idx[i]` then
    /// `data[idx[i]]`, preceded by explicit indirect-prefetch
    /// pseudo-instructions (§3.3.3).
    Indirect {
        /// Gather length.
        elems: u16,
        /// Cluster indices in runs of 8 (row-friendly) instead of
        /// scattering them pseudo-randomly.
        clustered: bool,
    },
    /// Repeated re-references within a small block window from two
    /// interleaved walks — heavy on hits, merges, and MSHR aliasing.
    Alias {
        /// Number of accesses.
        count: u16,
        /// Window size in blocks.
        window_blocks: u8,
    },
    /// A burst of stores with a fixed stride (exercises dirty lines,
    /// writebacks, and store handling in the replay window).
    Stores {
        /// Number of stores.
        count: u16,
        /// Stride between consecutive stores, in 8-byte words.
        stride_words: u8,
    },
}

impl Segment {
    fn clamp(self) -> Segment {
        // Keep generated cases small enough that a full 12-scheme sweep
        // per case stays fast, and keep every field inside the bounds
        // the materializer's address layout assumes. `fold` is the
        // identity on in-range values so clamping is idempotent —
        // materializing an already-clamped plan must not shift it.
        fn fold16(v: u16, max: u16) -> u16 {
            v.wrapping_sub(1) % max + 1
        }
        fn fold8(v: u8, max: u8) -> u8 {
            v.wrapping_sub(1) % max + 1
        }
        match self {
            Segment::Spatial {
                count,
                stride_words,
                hinted,
                loop_bound,
            } => Segment::Spatial {
                count: fold16(count, 320),
                stride_words: fold8(stride_words, 16),
                hinted,
                loop_bound,
            },
            Segment::Pointer {
                nodes,
                node_stride_blocks,
                hinted,
            } => Segment::Pointer {
                nodes: fold16(nodes, 160),
                node_stride_blocks: fold8(node_stride_blocks, 8),
                hinted,
            },
            Segment::Indirect { elems, clustered } => Segment::Indirect {
                elems: fold16(elems, 160),
                clustered,
            },
            Segment::Alias {
                count,
                window_blocks,
            } => Segment::Alias {
                count: fold16(count, 320),
                window_blocks: fold8(window_blocks, 32),
            },
            Segment::Stores {
                count,
                stride_words,
            } => Segment::Stores {
                count: fold16(count, 320),
                stride_words: fold8(stride_words, 16),
            },
        }
    }
}

impl Arbitrary for Segment {
    fn arbitrary(rng: &mut Rng) -> Segment {
        let seg = match rng.gen_range(0..5u32) {
            0 => Segment::Spatial {
                count: rng.gen(),
                stride_words: rng.gen(),
                hinted: rng.gen(),
                loop_bound: rng.gen(),
            },
            1 => Segment::Pointer {
                nodes: rng.gen(),
                node_stride_blocks: rng.gen(),
                hinted: rng.gen(),
            },
            2 => Segment::Indirect {
                elems: rng.gen(),
                clustered: rng.gen(),
            },
            3 => Segment::Alias {
                count: rng.gen(),
                window_blocks: rng.gen(),
            },
            _ => Segment::Stores {
                count: rng.gen(),
                stride_words: rng.gen(),
            },
        };
        seg.clamp()
    }

    fn shrink_value(&self) -> Vec<Segment> {
        // Halve the dominant size field toward 1 and drop boolean
        // embellishments; every candidate is already clamp-legal.
        let mut out = Vec::new();
        match *self {
            Segment::Spatial {
                count,
                stride_words,
                hinted,
                loop_bound,
            } => {
                if count > 1 {
                    out.push(Segment::Spatial {
                        count: count / 2,
                        stride_words,
                        hinted,
                        loop_bound,
                    });
                }
                if hinted || loop_bound {
                    out.push(Segment::Spatial {
                        count,
                        stride_words,
                        hinted: false,
                        loop_bound: false,
                    });
                }
                if stride_words > 1 {
                    out.push(Segment::Spatial {
                        count,
                        stride_words: 1,
                        hinted,
                        loop_bound,
                    });
                }
            }
            Segment::Pointer {
                nodes,
                node_stride_blocks,
                hinted,
            } => {
                if nodes > 1 {
                    out.push(Segment::Pointer {
                        nodes: nodes / 2,
                        node_stride_blocks,
                        hinted,
                    });
                }
                if hinted {
                    out.push(Segment::Pointer {
                        nodes,
                        node_stride_blocks,
                        hinted: false,
                    });
                }
            }
            Segment::Indirect { elems, clustered } => {
                if elems > 1 {
                    out.push(Segment::Indirect {
                        elems: elems / 2,
                        clustered,
                    });
                }
                if clustered {
                    out.push(Segment::Indirect {
                        elems,
                        clustered: false,
                    });
                }
            }
            Segment::Alias {
                count,
                window_blocks,
            } => {
                if count > 1 {
                    out.push(Segment::Alias {
                        count: count / 2,
                        window_blocks,
                    });
                }
                if window_blocks > 1 {
                    out.push(Segment::Alias {
                        count,
                        window_blocks: window_blocks / 2,
                    });
                }
            }
            Segment::Stores {
                count,
                stride_words,
            } => {
                if count > 1 {
                    out.push(Segment::Stores {
                        count: count / 2,
                        stride_words,
                    });
                }
            }
        }
        out
    }
}

/// A complete randomized workload description. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzPlan {
    /// The access idioms, materialized in order into disjoint 1 MiB
    /// address slices.
    pub segments: Vec<Segment>,
    /// Compute instructions inserted between consecutive accesses
    /// (varies memory-level parallelism).
    pub compute_gap: u8,
    /// Seed for the materializer's internal layout choices (indirect
    /// index permutations); part of the plan so cases reproduce.
    pub layout_seed: u64,
}

impl Arbitrary for FuzzPlan {
    fn arbitrary(rng: &mut Rng) -> FuzzPlan {
        let n = rng.gen_range(1..=4usize);
        FuzzPlan {
            segments: (0..n).map(|_| Segment::arbitrary(rng)).collect(),
            compute_gap: rng.gen_range(0..24u32) as u8,
            layout_seed: rng.gen(),
        }
    }

    fn shrink_value(&self) -> Vec<FuzzPlan> {
        let mut out = Vec::new();
        // Structural shrinks first: fewer segments is the biggest win.
        if self.segments.len() > 1 {
            out.push(FuzzPlan {
                segments: self.segments[..1].to_vec(),
                ..self.clone()
            });
            for i in 0..self.segments.len() {
                let mut c = self.clone();
                c.segments.remove(i);
                out.push(c);
            }
        }
        // Then per-segment field shrinks.
        for i in 0..self.segments.len() {
            for cand in self.segments[i].shrink_value() {
                let mut c = self.clone();
                c.segments[i] = cand;
                out.push(c);
            }
        }
        if self.compute_gap > 0 {
            out.push(FuzzPlan {
                compute_gap: 0,
                ..self.clone()
            });
        }
        out
    }
}

/// A materialized fuzz case, ready for the timing simulator.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The access trace (already `finish()`ed).
    pub trace: Trace,
    /// Functional memory with pointer chains and index arrays planted.
    pub mem: Memory,
    /// Heap range covering every planted structure.
    pub heap: HeapRange,
}

/// Deterministically turns a plan into a runnable case. The same plan
/// always produces the identical trace, memory image, and heap range.
pub fn materialize(plan: &FuzzPlan) -> FuzzCase {
    let mut trace = Trace::new();
    let mut mem = Memory::new();
    let mut layout = Rng::seed_from_u64(plan.layout_seed);
    let gap = plan.compute_gap as u32;

    for (si, seg) in plan.segments.iter().enumerate() {
        let base = HEAP_BASE + si as u64 * SEGMENT_SPAN;
        let ref_id = RefId(si as u32 * 4);
        match seg.clone().clamp() {
            Segment::Spatial {
                count,
                stride_words,
                hinted,
                loop_bound,
            } => {
                let hints = if hinted {
                    HintSet::none().with_spatial()
                } else {
                    HintSet::none()
                };
                if loop_bound {
                    trace.push_set_loop_bound(count as u32);
                }
                for i in 0..count as u64 {
                    trace.push_load(
                        Addr(base + i * stride_words as u64 * 8),
                        8,
                        ref_id,
                        hints,
                        None,
                    );
                    trace.push_compute(gap);
                }
            }
            Segment::Pointer {
                nodes,
                node_stride_blocks,
                hinted,
            } => {
                // Plant the chain: each node's first word points at the
                // next node, the last at null.
                let stride = node_stride_blocks as u64 * 64;
                for i in 0..nodes as u64 {
                    let node = base + i * stride;
                    let next = if i + 1 < nodes as u64 {
                        base + (i + 1) * stride
                    } else {
                        0
                    };
                    mem.write_u64(Addr(node), next);
                }
                let hints = if hinted {
                    HintSet::none().with_pointer()
                } else {
                    HintSet::none()
                };
                let mut dep = None;
                for i in 0..nodes as u64 {
                    let seq =
                        trace.push_load(Addr(base + i * stride), 8, ref_id, hints, dep);
                    dep = Some(seq);
                    trace.push_compute(gap);
                }
            }
            Segment::Indirect { elems, clustered } => {
                // idx[] at `base` (u32 each); data[] half a span above.
                let data_base = base + SEGMENT_SPAN / 2;
                for i in 0..elems as u64 {
                    let idx = if clustered {
                        (i / 8) * 8 + (i % 8)
                    } else {
                        layout.gen_range(0..elems as u64)
                    } as u32;
                    mem.write_u32(Addr(base + i * 4), idx);
                }
                let idx_ref = RefId(si as u32 * 4 + 1);
                for i in 0..elems as u64 {
                    let index_addr = Addr(base + i * 4);
                    trace.push_indirect_prefetch(Addr(data_base), 8, index_addr, ref_id);
                    let seq = trace.push_load(
                        index_addr,
                        4,
                        idx_ref,
                        HintSet::none().with_spatial(),
                        None,
                    );
                    let idx = mem.read_u32(index_addr) as u64;
                    trace.push_load(
                        Addr(data_base + idx * 8),
                        8,
                        ref_id,
                        HintSet::none(),
                        Some(seq),
                    );
                    trace.push_compute(gap);
                }
            }
            Segment::Alias {
                count,
                window_blocks,
            } => {
                // Two interleaved strided walks folded into one small
                // window; every third access is a store.
                let window_words = window_blocks as u64 * 8;
                for i in 0..count as u64 {
                    let off = (i * 7 + (i % 2) * 3) % window_words;
                    let addr = Addr(base + off * 8);
                    if i % 3 == 2 {
                        trace.push_store(addr, 8, ref_id, HintSet::none());
                    } else {
                        trace.push_load(addr, 8, ref_id, HintSet::none(), None);
                    }
                    trace.push_compute(gap);
                }
            }
            Segment::Stores {
                count,
                stride_words,
            } => {
                for i in 0..count as u64 {
                    trace.push_store(
                        Addr(base + i * stride_words as u64 * 8),
                        8,
                        ref_id,
                        HintSet::none(),
                    );
                    trace.push_compute(gap);
                }
            }
        }
    }
    trace.finish();
    let heap = HeapRange {
        start: Addr(HEAP_BASE),
        end: Addr(HEAP_BASE + plan.segments.len().max(1) as u64 * SEGMENT_SPAN),
    };
    FuzzCase { trace, mem, heap }
}

/// A fixed case the random segment generator cannot produce: thousands
/// of sparse misses, one per 4 KiB region, piling entries onto the
/// engines' region queue far faster than DRAM can drain them. Run with
/// invariants attached it deterministically exposes an unbounded-queue
/// fault, so the `check` gate's injection teeth never depend on which
/// random plans a seed happens to draw.
pub fn region_pressure_case() -> FuzzCase {
    let mut trace = Trace::new();
    let span = 4_000u64;
    for i in 0..span {
        trace.push_load(
            Addr(HEAP_BASE + i * 4096),
            8,
            RefId(0),
            HintSet::none(),
            None,
        );
        trace.push_compute(64);
    }
    trace.finish();
    let heap = HeapRange {
        start: Addr(HEAP_BASE),
        end: Addr(HEAP_BASE + span * 4096),
    };
    FuzzCase {
        trace,
        mem: Memory::new(),
        heap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grp_testkit::proptest::prelude::*;

    #[test]
    fn materialization_is_deterministic() {
        let mut rng = Rng::seed_from_u64(0x5eed_f422);
        for _ in 0..20 {
            let plan = FuzzPlan::arbitrary(&mut rng);
            let a = materialize(&plan);
            let b = materialize(&plan);
            assert_eq!(a.trace.events(), b.trace.events());
            assert_eq!(a.heap, b.heap);
        }
    }

    #[test]
    fn plans_cover_every_idiom() {
        let mut rng = Rng::seed_from_u64(0x5eed_c073);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let plan = FuzzPlan::arbitrary(&mut rng);
            for seg in &plan.segments {
                let i = match seg {
                    Segment::Spatial { .. } => 0,
                    Segment::Pointer { .. } => 1,
                    Segment::Indirect { .. } => 2,
                    Segment::Alias { .. } => 3,
                    Segment::Stores { .. } => 4,
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "idiom coverage: {seen:?}");
    }

    #[test]
    fn shrinking_reaches_a_single_small_segment() {
        // A plan "fails" whenever it contains a Pointer segment; the
        // shrinker must reduce to one minimal pointer chain.
        let strat = any::<FuzzPlan>();
        let mut rng = Rng::seed_from_u64(0x5eed_0001);
        let plan = loop {
            let p = FuzzPlan::arbitrary(&mut rng);
            if p.segments
                .iter()
                .any(|s| matches!(s, Segment::Pointer { .. }))
            {
                break p;
            }
        };
        let fails = |p: &FuzzPlan| -> Result<(), String> {
            if p.segments
                .iter()
                .any(|s| matches!(s, Segment::Pointer { .. }))
            {
                Err("has pointer segment".into())
            } else {
                Ok(())
            }
        };
        let (min, _msg, _tested) = greedy_shrink(&strat, plan, "seed".into(), 2048, fails);
        assert_eq!(min.segments.len(), 1, "minimal plan: {min:?}");
        match &min.segments[0] {
            Segment::Pointer { nodes, hinted, .. } => {
                assert_eq!(*nodes, 1, "chain shrinks to one node");
                assert!(!hinted, "boolean embellishments dropped");
            }
            other => panic!("unexpected survivor {other:?}"),
        }
    }

    #[test]
    fn pointer_chains_are_planted_correctly() {
        let plan = FuzzPlan {
            segments: vec![Segment::Pointer {
                nodes: 4,
                node_stride_blocks: 2,
                hinted: true,
            }],
            compute_gap: 0,
            layout_seed: 1,
        };
        let case = materialize(&plan);
        let stride = 2 * 64;
        for i in 0..3u64 {
            assert_eq!(
                case.mem.read_u64(Addr(HEAP_BASE + i * stride)),
                HEAP_BASE + (i + 1) * stride
            );
        }
        assert_eq!(case.mem.read_u64(Addr(HEAP_BASE + 3 * stride)), 0);
        assert!(case.heap.contains(Addr(HEAP_BASE + 3 * stride)));
    }
}

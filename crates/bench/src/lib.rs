//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Section 5).
//!
//! The [`suite::Suite`] runner memoizes `(benchmark, scheme)` simulation
//! results so the tables share work; each `experiments::*` function
//! returns structured rows, and [`report`] renders them in the paper's
//! layout. The `src/bin/` binaries print one table or figure each
//! (`cargo run -p grp-bench --bin table1 -- --scale small`), and
//! `--bin all` reproduces the whole evaluation into `EXPERIMENTS`-style
//! output.

#![deny(missing_docs)]

pub mod args;
pub mod artifact;
pub mod chaos;
pub mod experiments;
pub mod fuzz;
pub mod iofault;
pub mod json;
pub mod obs_export;
pub mod report;
pub mod sched;
pub mod serve;
pub mod suite;
pub mod telemetry;
pub mod tracecache;
pub mod traj;

pub use suite::{Suite, SuiteScale};

//! Harness-wide telemetry: metrics registry, phase profiler, and the
//! structured logger.
//!
//! Three cooperating pieces (each documented in its own module):
//!
//! * [`registry`] — named counters / gauges / histograms recorded into
//!   lock-free per-worker [`registry::Shard`]s and merged exactly at
//!   scrape time into a [`registry::Snapshot`].
//! * [`profiler`] — phase-scoped hierarchical wall-clock spans
//!   (`build → interpret → pack → replay → export`), RAII guards,
//!   deterministic report ordering; off by default and perf-neutral
//!   when off.
//! * [`log`] — leveled NDJSON diagnostics on stderr with process-wide
//!   ids for request/span correlation.
//!
//! Rendering a snapshot as Prometheus-style text or JSON lives in
//! [`exposition`], together with the re-parsing validator that
//! `check --metrics` uses.
//!
//! Production code records through the process-global accessors below
//! ([`registry()`], [`process_shard()`], [`profiler()`]); tests build
//! fresh [`registry::Registry`] / [`profiler::Profiler`] instances so
//! assertions never see another test's counts. Timestamps appear only
//! in log lines and in the explicitly-marked `scraped_at_unix_micros`
//! snapshot field — every other output is deterministic.

pub mod exposition;
pub mod log;
pub mod profiler;
pub mod registry;

use std::sync::{Arc, OnceLock};

use grp_core::{FaultAction, Observer};
use grp_mem::BlockAddr;

pub use profiler::Profiler;
pub use registry::{Counter, Gauge, Hist, Registry, Shard, Snapshot};

/// The process-global metrics registry (bins and global subsystems
/// like the trace cache; tests use [`Registry::new`] instead).
pub fn registry() -> &'static Arc<Registry> {
    static REGISTRY: OnceLock<Arc<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Arc::new(Registry::new()))
}

/// A shard of the global registry for the calling context. One shared
/// shard (not per-thread): callers that fan out register their own
/// per-worker shards via [`Registry::shard`].
pub fn process_shard() -> &'static Arc<Shard> {
    static SHARD: OnceLock<Arc<Shard>> = OnceLock::new();
    SHARD.get_or_init(|| registry().shard())
}

/// The process-global phase profiler (disabled until
/// `perf --profile` or a test enables it).
pub fn profiler() -> &'static Profiler {
    static PROFILER: OnceLock<Profiler> = OnceLock::new();
    PROFILER.get_or_init(Profiler::new)
}

/// An [`Observer`] that counts fault-injection events into a metrics
/// shard: applied fault actions by kind (`grp_fault_events_total`)
/// plus the two fill-perturbation legs
/// (`grp_fault_fills_dropped_total`, `grp_fault_fills_delayed_total`).
/// Pair it with a functional observer via [`grp_core::ObserverPair`]
/// when a run needs both.
#[derive(Debug)]
pub struct TelemetryObserver {
    stall: Counter,
    mshr: Counter,
    queue: Counter,
    dropped: Counter,
    delayed: Counter,
}

impl TelemetryObserver {
    /// Counts into `shard` under the `grp_fault_*` families.
    pub fn new(shard: &Shard) -> Self {
        let action = |kind: &str| shard.counter("grp_fault_events_total", &[("action", kind)]);
        TelemetryObserver {
            stall: action("stall_channel"),
            mshr: action("mshr_squeeze"),
            queue: action("queue_pressure"),
            dropped: shard.counter("grp_fault_fills_dropped_total", &[]),
            delayed: shard.counter("grp_fault_fills_delayed_total", &[]),
        }
    }
}

impl Observer for TelemetryObserver {
    fn fault_injected(&mut self, action: &FaultAction, _now: u64) {
        match action {
            FaultAction::StallChannel { .. } => self.stall.inc(),
            FaultAction::SetMshrSqueeze(_) => self.mshr.inc(),
            FaultAction::SetQueuePressure(_) => self.queue.inc(),
        }
    }

    fn prefetch_fill_dropped(&mut self, _block: BlockAddr, _now: u64) {
        self.dropped.inc();
    }

    fn prefetch_fill_delayed(&mut self, _block: BlockAddr, _extra: u64, _now: u64) {
        self.delayed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_are_stable_and_shared() {
        let a = registry() as *const _;
        let b = registry() as *const _;
        assert_eq!(a, b);
        let s1 = process_shard();
        let s2 = process_shard();
        assert!(Arc::ptr_eq(s1, s2));
        assert!(!profiler().enabled());
    }

    #[test]
    fn telemetry_observer_counts_fault_events() {
        let reg = Registry::new();
        let shard = reg.shard();
        let mut obs = TelemetryObserver::new(&shard);
        obs.fault_injected(
            &FaultAction::StallChannel { channel: 0, until: 10, demands_too: false },
            1,
        );
        obs.fault_injected(&FaultAction::SetMshrSqueeze(2), 2);
        obs.fault_injected(&FaultAction::SetMshrSqueeze(4), 3);
        obs.fault_injected(&FaultAction::SetQueuePressure(1), 4);
        obs.prefetch_fill_dropped(BlockAddr(0x40), 5);
        obs.prefetch_fill_delayed(BlockAddr(0x80), 60, 6);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("grp_fault_events_total{action=\"stall_channel\"}"), 1);
        assert_eq!(snap.counter("grp_fault_events_total{action=\"mshr_squeeze\"}"), 2);
        assert_eq!(snap.counter("grp_fault_events_total{action=\"queue_pressure\"}"), 1);
        assert_eq!(snap.family_total("grp_fault_events_total"), 4);
        assert_eq!(snap.counter("grp_fault_fills_dropped_total"), 1);
        assert_eq!(snap.counter("grp_fault_fills_delayed_total"), 1);
    }
}

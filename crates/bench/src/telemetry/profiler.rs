//! Phase-scoped hierarchical wall-clock profiler.
//!
//! Spans are RAII guards ([`Profiler::span`] /
//! [`Profiler::span_cell`]): opening pushes the phase name onto a
//! thread-local stack (so nested spans record under a `parent/child`
//! path) and dropping accumulates the elapsed wall time under
//! `(path, kernel, scheme)`. The profiler is process-global and
//! **disabled by default**: a disabled span is one relaxed atomic load
//! and no clock read, so instrumented production paths (the
//! `sched::run_cell` body wraps its build / interpret / pack / replay
//! phases) stay perf-neutral unless `perf --profile` turns it on —
//! spans sit around whole phases, never inside per-event loops.
//!
//! Reports ([`Profiler::report`]) are deterministically ordered: the
//! canonical harness phase order (`build`, `interpret`, `pack`,
//! `cache_load`, `cache_store`, `replay`, `export`) first, then
//! alphabetical, with kernel/scheme ties broken lexicographically —
//! the same profile always prints and serializes identically.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// The canonical harness phases, in report order.
pub const PHASES: [&str; 7] =
    ["build", "interpret", "pack", "cache_load", "cache_store", "replay", "export"];

fn phase_rank(path: &str) -> usize {
    let root = path.split('/').next().unwrap_or(path);
    PHASES.iter().position(|p| *p == root).unwrap_or(PHASES.len())
}

/// One attribution key: the span path plus optional cell attribution.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanKey {
    /// `/`-joined phase path (`"replay"`, `"replay/cache_load"`, …).
    pub path: String,
    /// Kernel attribution (empty when not cell-scoped).
    pub kernel: String,
    /// Scheme label attribution (empty when not cell-scoped).
    pub scheme: String,
}

/// Accumulated cost for one [`SpanKey`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Total wall seconds across all spans with this key.
    pub seconds: f64,
    /// Number of spans.
    pub count: u64,
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The profiler: a global span accumulator (see module docs).
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: AtomicBool,
    stats: Mutex<HashMap<SpanKey, SpanStat>>,
}

impl Profiler {
    /// A fresh, disabled profiler (tests; production shares
    /// [`crate::telemetry::profiler`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns span recording on or off (off = spans cost one atomic
    /// load).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans currently record.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Opens an unattributed span for `phase`. The guard records on
    /// drop; scope guards strictly (RAII) so the thread-local path
    /// stack stays consistent.
    pub fn span(&self, phase: &'static str) -> Span<'_> {
        self.open(phase, "", "")
    }

    /// Opens a span attributed to one `(kernel, scheme)` cell.
    pub fn span_cell(&self, phase: &'static str, kernel: &str, scheme: &str) -> Span<'_> {
        self.open(phase, kernel, scheme)
    }

    fn open(&self, phase: &'static str, kernel: &str, scheme: &str) -> Span<'_> {
        if !self.enabled() {
            return Span { profiler: self, key: None, start: None };
        }
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(phase);
            s.join("/")
        });
        Span {
            profiler: self,
            key: Some(SpanKey { path, kernel: kernel.to_string(), scheme: scheme.to_string() }),
            start: Some(Instant::now()),
        }
    }

    fn close(&self, key: SpanKey, seconds: f64) {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut stats = self.stats.lock().expect("profiler stats");
        let st = stats.entry(key).or_default();
        st.seconds += seconds;
        st.count += 1;
    }

    /// A deterministic report of everything recorded so far.
    pub fn report(&self) -> ProfileReport {
        let stats = self.stats.lock().expect("profiler stats");
        let mut rows: Vec<(SpanKey, SpanStat)> =
            stats.iter().map(|(k, v)| (k.clone(), *v)).collect();
        rows.sort_by(|a, b| {
            (phase_rank(&a.0.path), &a.0).cmp(&(phase_rank(&b.0.path), &b.0))
        });
        ProfileReport { rows }
    }

    /// Clears all recorded spans (tests and repeated harness runs).
    pub fn reset(&self) {
        self.stats.lock().expect("profiler stats").clear();
    }
}

/// RAII span guard: records its elapsed wall time on drop.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct Span<'a> {
    profiler: &'a Profiler,
    key: Option<SpanKey>,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let (Some(key), Some(start)) = (self.key.take(), self.start) {
            self.profiler.close(key, start.elapsed().as_secs_f64());
        }
    }
}

/// A deterministic, phase-ordered profile report.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// `(key, stat)` rows in canonical order.
    pub rows: Vec<(SpanKey, SpanStat)>,
}

impl ProfileReport {
    /// Seconds attributed to top-level spans (path without `/`) —
    /// children are inside their parents' wall time, so this is the
    /// coverage numerator against a measured wall clock.
    pub fn covered_seconds(&self) -> f64 {
        self.rows
            .iter()
            .filter(|(k, _)| !k.path.contains('/'))
            .map(|(_, s)| s.seconds)
            .sum()
    }

    /// Total seconds per root phase, summed over kernels/schemes, in
    /// canonical phase order.
    pub fn phase_totals(&self) -> Vec<(String, SpanStat)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: HashMap<String, SpanStat> = HashMap::new();
        for (k, s) in &self.rows {
            if k.path.contains('/') {
                continue;
            }
            let t = totals.entry(k.path.clone()).or_insert_with(|| {
                order.push(k.path.clone());
                SpanStat::default()
            });
            t.seconds += s.seconds;
            t.count += s.count;
        }
        order.into_iter().map(|p| (p.clone(), totals[&p])).collect()
    }

    /// The full report as JSON: phase totals plus the per-cell
    /// attribution table, in canonical order.
    pub fn to_json(&self, wall_seconds: f64) -> Json {
        let covered = self.covered_seconds();
        let phases: Vec<Json> = self
            .phase_totals()
            .into_iter()
            .map(|(p, s)| {
                Json::object()
                    .set("phase", p.as_str())
                    .set("seconds", s.seconds)
                    .set("spans", s.count)
            })
            .collect();
        let cells: Vec<Json> = self
            .rows
            .iter()
            .filter(|(k, _)| !k.kernel.is_empty())
            .map(|(k, s)| {
                Json::object()
                    .set("phase", k.path.as_str())
                    .set("bench", k.kernel.as_str())
                    .set("scheme", k.scheme.as_str())
                    .set("seconds", s.seconds)
                    .set("spans", s.count)
            })
            .collect();
        Json::object()
            .set("wall_seconds", wall_seconds)
            .set("covered_seconds", covered)
            .set("coverage", covered / wall_seconds.max(1e-9))
            .set("phases", Json::Array(phases))
            .set("cells", Json::Array(cells))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let p = Profiler::new();
        {
            let _s = p.span("build");
        }
        assert!(p.report().rows.is_empty());
        assert_eq!(p.report().covered_seconds(), 0.0);
    }

    #[test]
    fn spans_accumulate_and_nest() {
        let p = Profiler::new();
        p.set_enabled(true);
        {
            let _outer = p.span("replay");
            let _inner = p.span("cache_load");
        }
        {
            let _again = p.span_cell("replay", "gzip", "SRP");
        }
        let report = p.report();
        let paths: Vec<&str> = report.rows.iter().map(|(k, _)| k.path.as_str()).collect();
        assert_eq!(paths, ["replay", "replay", "replay/cache_load"]);
        // Nested spans are excluded from coverage (inside the parent).
        let covered = report.covered_seconds();
        let top: f64 = report
            .rows
            .iter()
            .filter(|(k, _)| k.path == "replay")
            .map(|(_, s)| s.seconds)
            .sum();
        assert!((covered - top).abs() < 1e-12);
        let (key, stat) = &report.rows[1];
        assert_eq!(key.kernel, "gzip");
        assert_eq!(key.scheme, "SRP");
        assert_eq!(stat.count, 1);
        p.reset();
        assert!(p.report().rows.is_empty());
    }

    #[test]
    fn report_order_is_canonical_and_deterministic() {
        let p = Profiler::new();
        p.set_enabled(true);
        for (phase, kernel) in
            [("export", ""), ("build", "mcf"), ("build", "gzip"), ("replay", "gzip")]
        {
            let _s = p.span_cell(phase, kernel, "none");
            drop(_s);
        }
        let a: Vec<(String, String)> = p
            .report()
            .rows
            .iter()
            .map(|(k, _)| (k.path.clone(), k.kernel.clone()))
            .collect();
        assert_eq!(
            a,
            [
                ("build".into(), "gzip".into()),
                ("build".into(), "mcf".into()),
                ("replay".into(), "gzip".into()),
                ("export".into(), "".into()),
            ]
        );
        // phase_totals aggregates per root phase in the same order.
        let totals = p.report().phase_totals();
        let names: Vec<&str> = totals.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(names, ["build", "replay", "export"]);
        assert_eq!(totals[0].1.count, 2);
    }

    #[test]
    fn json_shape_carries_coverage_and_cells() {
        let p = Profiler::new();
        p.set_enabled(true);
        {
            let _s = p.span_cell("replay", "gzip", "SRP");
        }
        let doc = p.report().to_json(1.0);
        assert!(doc.get("coverage").and_then(|v| v.as_f64()).is_some());
        let cells = doc.get("cells").and_then(|c| c.as_array()).expect("cells");
        let first = cells.first().expect("one cell");
        assert_eq!(first.get("bench").and_then(|v| v.as_str()), Some("gzip"));
        assert_eq!(first.get("phase").and_then(|v| v.as_str()), Some("replay"));
    }
}
